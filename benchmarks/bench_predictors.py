"""Extension — predictor accuracy/overhead trade-off (§IV-A's open question).

Sweeps the pluggable predictors (lookback-1/2/4/8, adaptive, oracle,
uniform) on representative members and reports spec-1 accuracy plus the
end-to-end RR kernel time under each.  Expected shapes: accuracy is
monotone in the lookback window; the oracle bounds everything; the paper's
lookback-2 sits at a sweet spot (longer windows barely help on these FSMs
but cost more prediction work).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.schemes import RRScheme
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import true_start_states
from repro.speculation.predictors import (
    AdaptiveLookbackPredictor,
    LookbackPredictor,
    OraclePredictor,
    UniformPredictor,
)

INPUT = 32_768
PREDICTORS = [
    ("uniform", UniformPredictor),
    ("lookback-1", lambda: LookbackPredictor(1)),
    ("lookback-2", lambda: LookbackPredictor(2)),
    ("lookback-4", lambda: LookbackPredictor(4)),
    ("lookback-8", lambda: LookbackPredictor(8)),
    ("adaptive", lambda: AdaptiveLookbackPredictor(target_candidates=4, max_window=16)),
    ("oracle", OraclePredictor),
]


def measure(member, factory):
    predictor = factory()
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    # Offline accuracy on the training slice.
    p = partition_input(training, 32)
    pred = predictor.predict(member.dfa, p, member.dfa.start)
    truth = true_start_states(member.dfa, p)
    acc = pred.accuracy_against(truth, k=1)
    # End-to-end cost under RR.
    scheme = RRScheme.for_dfa(
        member.dfa, n_threads=128, training_input=training, predictor=factory()
    )
    result = scheme.run(data)
    assert result.end_state == member.dfa.run(data)
    return acc, result.cycles


def test_predictor_tradeoff(benchmark, members):
    def experiment():
        picks = [members["snort"][2], members["snort"][7]]  # sre + rr regimes
        out = {}
        rows = []
        for member in picks:
            per = {}
            for name, factory in PREDICTORS:
                per[name] = measure(member, factory)
            out[member.name] = per
            for name, (acc, cycles) in per.items():
                rows.append([member.name, name, acc, cycles])
        table = render_table(
            ["fsm", "predictor", "spec-1 accuracy", "RR cycles"],
            rows,
            precision=3,
            title="Predictor accuracy/overhead trade-off",
        )
        emit("predictors", table)
        return out

    out = benchmark.pedantic(experiment, rounds=1, iterations=1)

    for member_name, per in out.items():
        # Accuracy monotone in window length (within tolerance).
        accs = [per[f"lookback-{w}"][0] for w in (1, 2, 4, 8)]
        assert all(b >= a - 0.05 for a, b in zip(accs, accs[1:])), member_name
        # Oracle dominates everything end-to-end.
        oracle_cycles = per["oracle"][1]
        assert all(
            oracle_cycles <= cycles * 1.01 for _, cycles in per.values()
        ), member_name
        # Uniform is never more accurate than lookback-2.
        assert per["uniform"][0] <= per["lookback-2"][0] + 1e-9, member_name
