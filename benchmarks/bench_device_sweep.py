"""Extension — device-robustness sweep.

Re-runs the scheme race on four GPU models (Turing/Volta/Ampere consumer and
datacenter parts, plus a small embedded chip).  The paper's conclusions
should be architecture-robust: the per-FSM *winner* must not flip with the
device, even though absolute cycle counts and the shared-memory hot fraction
do move (A100's 164 KB shared memory caches twice the table the 2080 Ti
can).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.gpu.presets import A100, DEVICE_PRESETS, EMBEDDED, RTX2080TI, RTX3090, V100
from repro.schemes import NFScheme, PMScheme, SREScheme

INPUT = 32_768
DEVICES = (RTX2080TI, V100, RTX3090, A100, EMBEDDED)


def race(member, device):
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    out = {}
    for cls in (PMScheme, SREScheme, NFScheme):
        scheme = cls.for_dfa(
            member.dfa, n_threads=128, training_input=training, device=device
        )
        result = scheme.run(data)
        out[cls.__name__.replace("Scheme", "").lower()] = result
    return out


def test_device_sweep(benchmark, members):
    def experiment():
        picks = {
            "pm-regime": members["snort"][0],
            "sre-regime": members["snort"][2],
            "rr-regime": members["snort"][7],
        }
        rows = []
        winners = {}
        for label, member in picks.items():
            winners[label] = {}
            for device in DEVICES:
                results = race(member, device)
                best = min(results, key=lambda k: results[k].cycles)
                winners[label][device.name] = best
                hot = results["nf"].stats.hot_access_fraction
                rows.append(
                    [label, device.name, best]
                    + [results[k].time_ms for k in ("pm", "sre", "nf")]
                    + [f"{hot:.0%}"]
                )
        table = render_table(
            ["workload", "device", "winner", "pm ms", "sre ms", "nf ms", "shared hits"],
            rows,
            precision=3,
            title="Device sweep — per-FSM winners across GPU models",
        )
        emit("device_sweep", table)
        return winners

    winners = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The winning scheme per workload class is device-invariant.
    for label, by_device in winners.items():
        assert len(set(by_device.values())) == 1, (label, by_device)
    # And it is the regime's expected winner.
    assert set(winners["pm-regime"].values()) == {"pm"}
    assert set(winners["sre-regime"].values()) == {"sre"}
    assert set(winners["rr-regime"].values()) == {"nf"}
