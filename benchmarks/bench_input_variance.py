"""§V-A methodology — consistency across inputs.

The paper reports five repetitions with ~1% variance and twenty inputs per
FSM.  The simulator is deterministic per input, so the analogous question
is *input-to-input* stability: does the scheme ranking hold across
independently drawn traces from the same member's distribution?
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.framework import GSpecPal, GSpecPalConfig

INPUT = 32_768
N_INPUTS = 5


def test_input_variance(benchmark, members):
    def experiment():
        member = members["snort"][2]  # snort3, sre regime
        training = member.training_input(8_192)
        pal = GSpecPal(
            member.dfa, GSpecPalConfig(n_threads=128), training_input=training
        )
        per_scheme = {name: [] for name in ("pm", "sre", "rr", "nf")}
        for i in range(N_INPUTS):
            data = member.generate_input(INPUT, seed=100 + i)
            results = pal.compare_schemes(data)
            for name, res in results.items():
                per_scheme[name].append(res.cycles)
        rows = []
        stats = {}
        for name, cycles in per_scheme.items():
            arr = np.asarray(cycles, dtype=np.float64)
            cv = float(arr.std() / arr.mean())
            stats[name] = (arr.mean(), cv)
            rows.append([name, arr.mean(), arr.min(), arr.max(), f"{cv:.1%}"])
        table = render_table(
            ["scheme", "mean cycles", "min", "max", "coeff. of variation"],
            rows,
            precision=0,
            title=f"Input-to-input stability ({member.name}, {N_INPUTS} traces)",
        )
        emit("input_variance", table)
        return stats, per_scheme

    stats, per_scheme = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The winner is the same on every input drawn from the distribution.
    winners = set()
    for i in range(N_INPUTS):
        winner = min(per_scheme, key=lambda name: per_scheme[name][i])
        winners.add(winner)
    assert len(winners) == 1
    # And variation stays modest (the member's dials, not trace luck,
    # determine cost).
    for name, (_, cv) in stats.items():
        assert cv < 0.35, name
