"""Fig. 6 / §V-C — Scheme-selector quality.

The paper's coarse decision tree picks the per-FSM best scheme for 29/36
FSMs (80.6%) and, where it mispicks, loses only ~3% on average versus the
ideal selection; overall the selected schemes average 7.2× over PM.  We
report the same three quantities, counting a pick as correct when it is the
true winner or within 5% of it (near-ties between RR and NF are common and
physically meaningless to split).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table

TIE_TOLERANCE = 0.95


def test_selector_accuracy(benchmark, sweep):
    def experiment():
        rows = []
        correct = 0
        losses = []
        for name, run in sweep.items():
            best = run.best_scheme
            best_cycles = run.results[best].cycles
            sel_cycles = run.results[run.selected].cycles
            ratio = best_cycles / sel_cycles  # 1.0 = perfect, <1 = regret
            is_correct = run.selected == best or ratio >= TIE_TOLERANCE
            correct += is_correct
            losses.append(1.0 - ratio)
            rows.append(
                [name, run.member.regime, run.selected, best, ratio, is_correct]
            )

        n = len(rows)
        mean_loss = float(np.mean(losses))
        table = render_table(
            ["fsm", "regime", "selected", "best", "best/selected", "ok"],
            rows,
            title="Selector accuracy — decision tree (Fig. 6) vs ideal choice",
        )
        summary = (
            f"\ncorrect picks (within {1-TIE_TOLERANCE:.0%} of ideal): "
            f"{correct}/{n} = {correct/n:.1%}"
            f"\nmean performance loss vs ideal: {mean_loss:.1%}"
            f"\n(paper: 29/36 = 80.6% exact picks, ~3% mean loss)"
        )
        emit("selector_accuracy", table + summary)
        return correct, n, mean_loss

    correct, n, mean_loss = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Paper-shape targets, with slack for the synthetic suites.
    assert correct / n >= 0.6
    assert mean_loss <= 0.15
