"""Table III — Runtime speculation accuracy and average #active threads
during recovery, Snort members × {PM, SRE, RR, NF}.

Paper shapes: PM's accuracy is bimodal (≈100% on the easy members, ≈0% on
the hard ones); SRE only shines on the converging members; RR/NF reach
≳90% almost everywhere because the number of threads activated during
recovery is 1–2 orders of magnitude above PM/SRE's.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table

SCHEMES = ("pm", "sre", "rr", "nf")


def test_table3_snort_accuracy_and_threads(benchmark, sweep, members):
    def experiment():
        rows = []
        data = {}
        for member in members["snort"]:
            run = sweep[member.name]
            accs = [run.results[s].stats.runtime_speculation_accuracy for s in SCHEMES]
            active = [run.results[s].stats.avg_active_threads for s in SCHEMES]
            data[member.index] = (member.regime, accs, active)
            rows.append(
                [member.index, member.regime]
                + [f"{a:.1%}" for a in accs]
                + [f"{t:.1f}" for t in active]
            )
        table = render_table(
            ["snort", "regime"]
            + [f"acc({s})" for s in SCHEMES]
            + [f"#act({s})" for s in SCHEMES],
            rows,
            title="Table III analogue — runtime speculation accuracy and average "
            "#active threads during recovery (Snort suite)",
        )
        emit("table3_accuracy_threads", table)
        return data

    data = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Shape 1: PM accuracy near-perfect on the easy members (snort1-2)...
    for idx in (1, 2):
        _, accs, _ = data[idx]
        assert accs[0] > 0.9, f"snort{idx} PM accuracy"
    # ...and poor on the hard rr-regime members.
    hard = [i for i, (regime, _, _) in data.items() if regime == "rr"]
    assert all(data[i][1][0] < 0.6 for i in hard)

    # Shape 2: RR/NF accuracy far above SRE's on the hard members (either a
    # large absolute jump or a multiplicative one on low-accuracy members).
    for i in hard:
        _, accs, _ = data[i]
        assert accs[2] > accs[1] + 0.2 or accs[2] > 2 * accs[1], \
            f"snort{i} RR vs SRE accuracy"
        assert accs[3] > accs[1] + 0.2 or accs[3] > 2 * accs[1], \
            f"snort{i} NF vs SRE accuracy"

    # Shape 3: thread activation — PM always 1 thread; RR/NF at least an
    # order of magnitude above it on the hard members.
    for i, (_, _, active) in data.items():
        assert active[0] <= 1.0, f"snort{i} PM active threads"
    for i in hard:
        _, _, active = data[i]
        assert active[2] >= 10 * max(active[0], 1.0), f"snort{i} RR activation"
        assert active[3] >= 10 * max(active[0], 1.0), f"snort{i} NF activation"
