"""Fig. 8 — Overall comparison: speedups of SRE, RR, NF and the selected
scheme over the PM (spec-4) baseline, per FSM and averaged.

Paper's result: RR 6.25× / NF 6.76× average, selector 7.2× average, range
0.11×–20×; PM best on *1-2 members, SRE best on the converging members,
the heuristics best broadly elsewhere.  Expected reproduction: identical
ordering/crossovers; compressed magnitudes (see EXPERIMENTS.md — the ratio
grows with the thread count N, and we evaluate at N=256 vs. the paper's
thousands).
"""

import pytest

from benchmarks.conftest import INPUT_LENGTH, N_THREADS, emit
from repro.analysis.experiments import run_member
from repro.analysis.tables import geometric_mean, render_table
from repro.workloads.suites import SUITES


def test_fig8_overall_speedups(benchmark, sweep):
    def experiment():
        rows = []
        per_scheme = {"sre": [], "rr": [], "nf": [], "selected": []}
        for name, run in sweep.items():
            speedups = run.speedup_over("pm")
            selected_speedup = speedups[run.selected] if run.selected != "pm" else 1.0
            rows.append(
                [
                    name,
                    run.member.regime,
                    run.selected,
                    run.best_scheme,
                    speedups["sre"],
                    speedups["rr"],
                    speedups["nf"],
                    selected_speedup,
                ]
            )
            per_scheme["sre"].append(speedups["sre"])
            per_scheme["rr"].append(speedups["rr"])
            per_scheme["nf"].append(speedups["nf"])
            per_scheme["selected"].append(selected_speedup)

        table = render_table(
            ["fsm", "regime", "selected", "best", "sre", "rr", "nf", "sel-speedup"],
            rows,
            title=f"Fig. 8 analogue — speedup over PM(spec-4), N={N_THREADS}, "
            f"input={INPUT_LENGTH}",
        )
        means = {
            k: (sum(v) / len(v), geometric_mean(v)) for k, v in per_scheme.items()
        }
        summary = "\n".join(
            f"{k:9s}: arithmetic mean {a:.2f}x, geometric mean {g:.2f}x"
            for k, (a, g) in means.items()
        )
        emit("fig8_overall", table + "\n\n" + summary)
        return means

    means = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Shape assertions (the paper's qualitative claims):
    # 1. PM wins on the *1 members (easy, spec-k-covered).
    for suite in SUITES:
        run = sweep[f"{suite}1"]
        assert run.best_scheme == "pm", f"{suite}1 should be PM-won"
    # 2. The aggressive heuristics win broadly: their mean speedup over PM
    #    across all 36 FSMs is solidly > 1.
    assert means["nf"][0] > 1.5
    # 3. The selector tracks the winners: mean selected speedup at least
    #    matches the best single static heuristic.
    best_static = max(means["sre"][0], means["rr"][0], means["nf"][0])
    assert means["selected"][0] >= 0.9 * best_static


def test_fig8_pm_baseline_kernel(benchmark, members):
    """pytest-benchmark wall-clock of the PM baseline on one hard member."""
    member = members["snort"][7]  # snort8: rr regime
    benchmark.pedantic(
        lambda: run_member(
            member,
            schemes=("pm",),
            input_length=16_384,
            training_length=4_096,
            n_threads=128,
        ),
        rounds=1,
        iterations=1,
    )
