"""Fig. 7 — Sensitivity to the number of registers used for VR_i^others.

The paper sweeps the register budget for foreign recovery records while
running RR and finds a U-shape: too few registers lose recovery results
(coverage drops, more must-be-done recoveries), too many inflate the
per-round load/store/check cost.  Best setting 16 for Snort/ClamAV; 18 for
PowerEN with <1% difference from 16.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_THREADS, emit
from repro.analysis.tables import render_table
from repro.schemes import RRScheme

REGISTERS = (4, 8, 12, 16, 20, 24)
INPUT = 32_768


def rr_cycles(member, others_capacity: int) -> float:
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    scheme = RRScheme.for_dfa(
        member.dfa,
        n_threads=N_THREADS,
        training_input=training,
        own_capacity=16,
        others_capacity=others_capacity,
    )
    return scheme.run(data).cycles


def test_fig7_register_sweep(benchmark, members):
    def experiment():
        picks = {
            "snort": members["snort"][8],     # snort9 (rr regime)
            "clamav": members["clamav"][10],  # clamav11 (rr regime)
            "poweren": members["poweren"][10],  # poweren11 (rr regime)
        }
        rows = []
        normalized = {}
        for suite, member in picks.items():
            cycles = np.array([rr_cycles(member, r) for r in REGISTERS])
            norm = cycles / cycles.min()
            normalized[suite] = norm
            rows.append([member.name] + list(norm))
        table = render_table(
            ["fsm"] + [f"r={r}" for r in REGISTERS],
            rows,
            title="Fig. 7 analogue — RR kernel time vs #registers for VR^others "
            "(normalized to each FSM's best)",
            precision=3,
        )
        emit("fig7_register_sweep", table)
        return normalized

    normalized = benchmark.pedantic(experiment, rounds=1, iterations=1)

    idx16 = REGISTERS.index(16)
    for suite, norm in normalized.items():
        best_idx = int(np.argmin(norm))
        # The left arm is the expensive side: scarce registers drop recovery
        # coverage and force extra must-be-done rounds.
        assert norm[0] > norm[best_idx] * 1.05, suite
        # The optimum sits in the interior, and 16 registers is always within
        # a few percent of it — the paper's universal default (it reports 16
        # best for Snort/ClamAV, 18 for PowerEN with <1% delta to 16).
        assert REGISTERS[best_idx] >= 8, suite
        assert norm[idx16] <= norm[best_idx] * 1.05, suite
        # Large budgets cost at most a few percent extra (shallow right arm).
        assert norm[-1] <= norm[best_idx] * 1.10, suite
