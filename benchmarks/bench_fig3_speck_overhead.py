"""Fig. 3 — Overhead of spec-k enumerative speculation.

The paper plots the parallel speculative-execution time of spec-4/6/8
normalized to spec-1, with verification and recovery excluded, and observes
growing overhead with k (redundant transition paths).  We measure exactly
that: the ``speculative_execution`` phase cycles of PM at each k.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_THREADS, emit
from repro.analysis.tables import render_table
from repro.schemes import PMScheme

KS = (1, 4, 6, 8)
INPUT = 32_768


def spec_phase_cycles(member, k: int) -> float:
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    scheme = PMScheme.for_dfa(
        member.dfa, n_threads=N_THREADS, training_input=training, k=k
    )
    result = scheme.run(data)
    return result.stats.phase_cycles["speculative_execution"]


def test_fig3_speck_overhead(benchmark, members):
    def experiment():
        picks = [members["snort"][7], members["clamav"][10], members["poweren"][9]]
        rows = []
        normalized_all = {k: [] for k in KS}
        for member in picks:
            cycles = {k: spec_phase_cycles(member, k) for k in KS}
            base = cycles[1]
            rows.append([member.name] + [cycles[k] / base for k in KS])
            for k in KS:
                normalized_all[k].append(cycles[k] / base)

        means = [float(np.mean(normalized_all[k])) for k in KS]
        table = render_table(
            ["fsm"] + [f"spec-{k}" for k in KS],
            rows + [["mean"] + means],
            title="Fig. 3 analogue — spec-k parallel execution time normalized "
            "to spec-1 (no verification/recovery)",
        )
        emit("fig3_speck_overhead", table)
        return means

    means = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Shape: overhead grows monotonically with k and is substantial by k=8.
    assert means[0] == pytest.approx(1.0)
    assert means[1] > 1.5          # spec-4 clearly costs more than spec-1
    assert means[1] < means[2] < means[3]  # monotone in k


def test_fig3_spec4_kernel(benchmark, members):
    member = members["poweren"][9]
    benchmark.pedantic(
        lambda: spec_phase_cycles(member, 4), rounds=1, iterations=1
    )
