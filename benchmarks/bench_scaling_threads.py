"""Extension — speedup vs. thread count N (reconciling magnitudes).

The paper evaluates at GPU scale (thousands of chunks).  PM's sequential
must-be-done recoveries grow linearly with N on hard FSMs, while the
aggressive heuristics' expensive frontier rounds grow sublinearly (each
mismatch round enumerates more chunks as the frontier advances).  The
speedup of RR/NF over PM therefore *grows with N* — this bench documents
that trend, explaining why our N=256 magnitudes sit below the paper's 6-9×
averages measured on an RTX 3090.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.schemes import NFScheme, PMScheme

NS = (64, 128, 256, 512)
SYMBOLS_PER_CHUNK = 128


def speedup_at(member, n_threads: int) -> float:
    training = member.training_input(8_192)
    data = member.generate_input(SYMBOLS_PER_CHUNK * n_threads, seed=0)
    pm = PMScheme.for_dfa(
        member.dfa, n_threads=n_threads, training_input=training
    ).run(data)
    nf = NFScheme.for_dfa(
        member.dfa, n_threads=n_threads, training_input=training
    ).run(data)
    assert pm.end_state == nf.end_state
    return pm.cycles / nf.cycles


def test_speedup_grows_with_thread_count(benchmark, members):
    def experiment():
        member = members["snort"][7]  # snort8, rr regime (hard)
        speedups = [speedup_at(member, n) for n in NS]
        table = render_table(
            ["N (threads=chunks)"] + [str(n) for n in NS],
            [[f"NF speedup over PM on {member.name}"] + speedups],
            title="Speedup scaling with thread count (fixed chunk length "
            f"{SYMBOLS_PER_CHUNK})",
        )
        emit("scaling_threads", table)
        return speedups

    speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The headline trend: more chunks, bigger win for speculative recovery.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5
