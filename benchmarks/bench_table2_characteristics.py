"""Table II — Benchmark characteristics.

For each suite: state-count range/mean, spec-1 and spec-4 accuracy
range/mean, the number of FSMs with highly input-sensitive speculation, the
``#uniqStates(10 trans.)`` convergence range/mean, and the offline profiling
time.  Paper values for reference: Snort [423, 42k]/10k states, accuracies
~16-39% mean with full [0,100%] ranges, 3/5/6 input-sensitive members, and
convergence ~10-12 mean; profiling 0.6 s.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.workloads.suites import REGIME_LAYOUT, SUITES


def test_table2_characteristics(benchmark, sweep, members):
    stats_by_suite = benchmark.pedantic(
        lambda: _collect(sweep, members), rounds=1, iterations=1
    )

    for suite in SUITES:
        states, s1, s4, conv, sensitive = stats_by_suite[suite]
        # Wide accuracy spread across members (easy and hard regimes).
        assert s4.max() > 0.8 and s4.min() < 0.5, suite
        # spec-4 dominates spec-1 on average (enumeration helps).
        assert s4.mean() >= s1.mean(), suite
        # Input-sensitive counts follow Table II's 3/5/6 by construction.
        assert sensitive >= REGIME_LAYOUT[suite].count("nf") - 2, suite
        # Convergence statistic spans converging and non-converging FSMs.
        assert conv.min() < 5 < conv.max(), suite


def _collect(sweep, members):
    rows = []
    stats_by_suite = {}
    for suite in SUITES:
        feats = [sweep[m.name].features for m in members[suite]]
        states = np.array([f.n_states for f in feats])
        s1 = np.array([f.spec1_accuracy for f in feats])
        s4 = np.array([f.spec4_accuracy for f in feats])
        conv = np.array([f.convergence_states for f in feats])
        sensitive = sum(1 for f in feats if f.input_sensitive)
        prof = np.array([f.profiling_seconds for f in feats])
        stats_by_suite[suite] = (states, s1, s4, conv, sensitive)
        rows.append(
            [
                suite,
                f"[{states.min()}, {states.max()}]",
                int(states.mean()),
                f"[{s1.min():.0%}, {s1.max():.0%}]",
                f"{s1.mean():.0%}",
                f"[{s4.min():.0%}, {s4.max():.0%}]",
                f"{s4.mean():.0%}",
                sensitive,
                f"[{conv.min():.1f}, {conv.max():.1f}]",
                f"{conv.mean():.1f}",
                f"{prof.mean():.2f}",
            ]
        )
    table = render_table(
        [
            "source", "#states range", "mean", "acc(spec-1)", "mean",
            "acc(spec-4)", "mean", "#input-sens.", "#uniq(10)", "mean",
            "profile s",
        ],
        rows,
        title="Table II analogue — suite characteristics",
    )
    emit("table2_characteristics", table)
    return stats_by_suite
