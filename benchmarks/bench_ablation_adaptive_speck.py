"""Extension ablation — adaptive per-chunk spec-k.

§II-C motivates this directly: "the value of k is determined statically and
does not change across all divided chunks.  As such, a thread may waste
compute resources when k is set to be too large on an easy-to-predict chunk,
or may need recovery later when k is too small…".  The adaptive PM variant
sizes each chunk's path count from its speculation queue's weight mass.
Expected: on easy (concentrated-queue) members it approaches spec-1's cost
with spec-4's accuracy; on hard (uniform-queue) members it keeps the full k.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.schemes import PMScheme

INPUT = 32_768
#: sre-regime members have sync-dense traces: many chunk boundaries collapse
#: to tiny candidate sets, which is where per-chunk k sizing pays off.  One
#: pm- and one rr-regime member are included as controls (their queues need
#: the full k, so adaptive must neither save nor regress there).
PICKS = [("snort", 3), ("snort", 4), ("clamav", 4), ("clamav", 5),
         ("poweren", 3), ("snort", 1), ("snort", 9)]


def run_pm(member, adaptive: bool):
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    scheme = PMScheme.for_dfa(
        member.dfa, n_threads=128, training_input=training, k=4, adaptive=adaptive
    )
    return scheme.run(data)


def test_adaptive_speck_ablation(benchmark, members):
    def experiment():
        by_suite = {s: {m.index: m for m in ms} for s, ms in members.items()}
        rows = []
        stats = []
        for suite, idx in PICKS:
            member = by_suite[suite][idx]
            static = run_pm(member, adaptive=False)
            adaptive = run_pm(member, adaptive=True)
            assert static.end_state == adaptive.end_state
            saving = 1.0 - adaptive.cycles / static.cycles
            acc_delta = (
                adaptive.stats.runtime_speculation_accuracy
                - static.stats.runtime_speculation_accuracy
            )
            stats.append((member.regime, saving, acc_delta))
            rows.append(
                [
                    member.name,
                    member.regime,
                    static.cycles,
                    adaptive.cycles,
                    f"{saving:.1%}",
                    f"{acc_delta:+.1%}",
                ]
            )
        table = render_table(
            ["fsm", "regime", "static spec-4", "adaptive", "saving", "Δaccuracy"],
            rows,
            precision=0,
            title="Adaptive spec-k extension — per-chunk path counts from "
            "queue weight mass",
        )
        emit("ablation_adaptive_speck", table)
        return stats

    stats = benchmark.pedantic(experiment, rounds=1, iterations=1)

    converging = [s for s in stats if s[0] == "sre"]
    # On sync-dense members many boundaries have collapsed queues.  Savings
    # are *warp-granular* on the simulated SIMT device (a pass is skipped
    # only when all 32 lanes of a warp collapsed), so require a majority of
    # the converging members to save, and none to lose accuracy.
    assert sum(saving > 0.0 for _, saving, _ in converging) * 2 >= len(converging)
    assert all(acc >= -0.02 for _, _, acc in converging)
    # And it must never regress anywhere.
    assert all(saving >= -0.01 for _, saving, _ in stats)
