"""Shared infrastructure for the benchmark harness.

The expensive artifact — running all four schemes over every one of the 36
suite FSMs — is computed once per session by the ``sweep`` fixture and shared
by the Fig. 8 / Table III / selector benches.  Reports are printed *and*
written to ``benchmarks/results/`` so ``--benchmark-only`` runs leave a
reviewable record.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.analysis.experiments import MemberRun, run_member
from repro.workloads.suites import SUITES, build_suite

RESULTS_DIR = Path(__file__).parent / "results"
TRACES_DIR = RESULTS_DIR / "traces"

#: Evaluation-scale knobs (overridable via environment for quick runs).
INPUT_LENGTH = int(os.environ.get("REPRO_BENCH_INPUT", 65_536))
N_THREADS = int(os.environ.get("REPRO_BENCH_THREADS", 256))
TRAINING_LENGTH = int(os.environ.get("REPRO_BENCH_TRAINING", 8_192))
#: Set REPRO_BENCH_TRACE=1 to record a span trace per member and dump them
#: to benchmarks/results/traces/<member>.jsonl at session end.
TRACE_ENABLED = os.environ.get("REPRO_BENCH_TRACE", "") not in ("", "0")

#: member name -> Tracer, filled by the sweep when tracing is enabled.
_TRACERS: Dict[str, object] = {}


def _tracer_for(name: str):
    """A fresh Tracer for one member, or None when tracing is off."""
    if not TRACE_ENABLED:
        return None
    from repro.observability import Tracer

    tracer = Tracer()
    _TRACERS[name] = tracer
    return tracer


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====\n{text}\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Assemble benchmarks/results/REPORT.md from whatever ran."""
    try:
        if _TRACERS:
            TRACES_DIR.mkdir(parents=True, exist_ok=True)
            for name, tracer in _TRACERS.items():
                (TRACES_DIR / f"{name}.jsonl").write_text(tracer.to_jsonl())
    except Exception:
        pass  # trace artifacts must never fail the harness
    try:
        from repro.analysis.report import build_report

        if RESULTS_DIR.exists():
            (RESULTS_DIR / "REPORT.md").write_text(build_report(RESULTS_DIR))
    except Exception:
        pass  # reporting must never fail the harness


@pytest.fixture(scope="session")
def members():
    """All 36 suite FSMs (compiled scanners are disk-cached)."""
    return {suite: build_suite(suite) for suite in SUITES}


@pytest.fixture(scope="session")
def sweep(members) -> Dict[str, MemberRun]:
    """Run {pm, sre, rr, nf} over every member once; keyed by member name."""
    runs: Dict[str, MemberRun] = {}
    for suite in SUITES:
        for member in members[suite]:
            runs[member.name] = run_member(
                member,
                input_length=INPUT_LENGTH,
                training_length=TRAINING_LENGTH,
                n_threads=N_THREADS,
                tracer=_tracer_for(member.name),
            )
    return runs
