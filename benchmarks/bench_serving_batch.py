"""Serving-tier gang scheduling: fused batch vs per-stream feeds.

N concurrent streams sharing one CompiledPlan are fed identical traffic two
ways — one ``pool.feed`` per stream per segment (the PR-4/5 serving path)
and one gang-scheduled ``pool.feed_many`` per round (ISSUE 6's fused
``(streams × lanes)`` dispatch) — on the answer-only ``fast`` backend, with
the end states cross-checked for bit-identity before any timing is trusted.

Two artifacts come out of a run:

* a speedup **guard** — fused must beat per-stream by ≥3× at 32 streams
  (the spirit of the fast-vs-sim ≥5× gate in ``bench_kernels.py``); and
* the first measured point of the serving perf **trajectory**:
  ``benchmarks/results/BENCH_serving.json`` accumulates one JSON record
  per run (streams, segment length, wall times, speedup, throughput) so
  later PRs regress against a number instead of a feeling.

Env knobs: ``REPRO_BENCH_STREAMS`` (default 32), ``REPRO_BENCH_SEGMENT``
(default 512 bytes), ``REPRO_BENCH_ROUNDS`` (default 8).
"""

import json
import os
import time
from datetime import date
from pathlib import Path

import numpy as np

from repro.framework import GSpecPalConfig
from repro.serving import MatcherPool, PlanCache
from repro.workloads import classic

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_serving.json"

N_STREAMS = int(os.environ.get("REPRO_BENCH_STREAMS", 32))
SEGMENT_LEN = int(os.environ.get("REPRO_BENCH_SEGMENT", 512))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 8))
MIN_SPEEDUP = 3.0


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` calls (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _build_pool(fused: bool) -> MatcherPool:
    config = GSpecPalConfig(n_threads=8, backend="fast")
    return MatcherPool(
        PlanCache(capacity=2, config=config),
        config=config,
        backend="fast",
        fused=fused,
        max_streams=N_STREAMS,
    )


def _traffic(rng) -> list:
    """ROUNDS rounds × N_STREAMS segments of identical shared-plan traffic."""
    return [
        [
            bytes(
                rng.integers(97, 123, size=SEGMENT_LEN).astype(np.uint8)
            )
            for _ in range(N_STREAMS)
        ]
        for _ in range(ROUNDS)
    ]


def _serve_per_stream(pool, dfa, training, traffic) -> list:
    sids = [pool.open(dfa, training_input=training) for _ in range(N_STREAMS)]
    for segments in traffic:
        for sid, segment in zip(sids, segments):
            pool.feed(sid, segment)
    return [pool.close(sid).end_state for sid in sids]


def _serve_fused(pool, dfa, training, traffic) -> list:
    sids = [pool.open(dfa, training_input=training) for _ in range(N_STREAMS)]
    for segments in traffic:
        outcomes = pool.feed_many(list(zip(sids, segments)))
        assert all(o.ok for o in outcomes)
    return [pool.close(sid).end_state for sid in sids]


def _record_trajectory(entry: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def test_fused_serving_speedup_guard():
    rng = np.random.default_rng(20260808)
    dfa = classic.keyword_scanner(b"gangsched")
    training = bytes(rng.integers(97, 123, size=2048).astype(np.uint8))
    traffic = _traffic(rng)

    # Correctness before speed: both paths, and the oracle, must agree on
    # every stream before any timing is recorded.
    per_stream_ends = _serve_per_stream(
        _build_pool(fused=False), dfa, training, traffic
    )
    fused_ends = _serve_fused(_build_pool(fused=True), dfa, training, traffic)
    oracle_ends = [
        dfa.run(b"".join(traffic[r][i] for r in range(ROUNDS)))
        for i in range(N_STREAMS)
    ]
    assert fused_ends == per_stream_ends == oracle_ends

    # Warm pools (plan compiled, matcher + fused engine built) so the
    # timing isolates the steady-state feed path, not the cold compile.
    seq_pool = _build_pool(fused=False)
    fused_pool = _build_pool(fused=True)
    t_seq = _best_of(
        lambda: _serve_per_stream(seq_pool, dfa, training, traffic)
    )
    t_fused = _best_of(
        lambda: _serve_fused(fused_pool, dfa, training, traffic)
    )

    total_symbols = N_STREAMS * SEGMENT_LEN * ROUNDS
    speedup = t_seq / t_fused
    entry = {
        "date": date.today().isoformat(),
        "bench": "serving_batch",
        "backend": "fast",
        "streams": N_STREAMS,
        "segment_len": SEGMENT_LEN,
        "rounds": ROUNDS,
        "per_stream_s": round(t_seq, 6),
        "fused_s": round(t_fused, 6),
        "speedup": round(speedup, 2),
        "fused_msymbols_per_s": round(total_symbols / t_fused / 1e6, 3),
        "per_stream_msymbols_per_s": round(total_symbols / t_seq / 1e6, 3),
    }
    _record_trajectory(entry)
    print(
        f"\nfused-vs-per-stream serving ({N_STREAMS} streams x "
        f"{ROUNDS} x {SEGMENT_LEN}B): {speedup:.1f}x "
        f"({t_seq * 1e3:.1f} ms -> {t_fused * 1e3:.1f} ms, "
        f"{entry['fused_msymbols_per_s']:.2f} Msym/s fused)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fused serving only {speedup:.2f}x faster than per-stream at "
        f"{N_STREAMS} streams (guard: >= {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_fused_serving_speedup_guard()
