"""SFA vs the speculative family on a speculation-hopeless FSM.

The affine permutation automaton (``state' = (5·state + sym) mod 128``)
defeats the lookback-2 predictor by construction — accuracy degrades to
``k / n`` — so every speculative scheme pays near-sequential recovery.
SFA sidesteps prediction entirely: each chunk builds its full state→state
mapping and the mappings compose left-to-right, misprediction-free.

Two artifacts come out of a run:

* a speedup **guard** — on the simulated device SFA must beat the *best*
  of {pm, sre, rr, nf} by ≥5× in modeled cycles, the selector must route
  the FSM to SFA through the ``speculation_floor`` node, and every scheme
  must agree with the sequential oracle before any number is trusted; and
* the first measured point of the SFA perf **trajectory**:
  ``benchmarks/results/BENCH_sfa.json`` accumulates one JSON record per
  run (per-scheme cycles, speedup, mapping dedupe counters) so later PRs
  regress against a number instead of a feeling.

Env knobs: ``REPRO_BENCH_SFA_STATES`` (default 128),
``REPRO_BENCH_SFA_INPUT`` (default 16384), ``REPRO_BENCH_SFA_THREADS``
(default 64 — small profiles under-sample spec-16 accuracy).
"""

import json
import os
from datetime import date
from pathlib import Path

import numpy as np

from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.workloads import classic

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_sfa.json"

N_STATES = int(os.environ.get("REPRO_BENCH_SFA_STATES", 128))
INPUT_LEN = int(os.environ.get("REPRO_BENCH_SFA_INPUT", 16_384))
N_THREADS = int(os.environ.get("REPRO_BENCH_SFA_THREADS", 64))
RIVALS = ("pm", "sre", "rr", "nf")
MIN_SPEEDUP = 5.0


def _record_trajectory(entry: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def test_sfa_speedup_guard():
    rng = np.random.default_rng(20260808)
    dfa = classic.affine_permutation(N_STATES)
    n_symbols = dfa.table.shape[1]
    training = bytes(rng.integers(0, n_symbols, size=4096).astype(np.uint8))
    data = bytes(rng.integers(0, n_symbols, size=INPUT_LEN).astype(np.uint8))

    metrics = MetricsRegistry()
    pal = GSpecPal(
        dfa,
        GSpecPalConfig(n_threads=N_THREADS, backend="sim"),
        training_input=training,
        metrics=metrics,
    )

    # The selector must route the hopeless FSM to SFA on its own.
    selected = pal.select_scheme()
    assert selected == "sfa", selected

    # Correctness before speed: every scheme, same oracle answer.
    oracle = dfa.run(data)
    cycles = {}
    for scheme in ("sfa",) + RIVALS:
        result = pal.run(data, scheme=scheme)
        assert result.end_state == oracle, scheme
        cycles[scheme] = float(result.stats.cycles)
    best_rival = min(RIVALS, key=cycles.get)
    speedup = cycles[best_rival] / cycles["sfa"]

    snap = metrics.as_dict()
    entry = {
        "date": date.today().isoformat(),
        "bench": "sfa",
        "backend": "sim",
        "fsm": dfa.name,
        "n_states": N_STATES,
        "input_len": INPUT_LEN,
        "n_threads": N_THREADS,
        "sfa_cycles": cycles["sfa"],
        "rival_cycles": {name: cycles[name] for name in RIVALS},
        "best_rival": best_rival,
        "speedup_vs_best_rival": round(speedup, 2),
        "mappings_built": snap.get("sfa.mappings_built", 0),
        "mappings_deduped": snap.get("sfa.mappings_deduped", 0),
    }
    _record_trajectory(entry)
    rivals = ", ".join(f"{name}={cycles[name]:.0f}" for name in RIVALS)
    print(
        f"\nSFA on {dfa.name} ({INPUT_LEN}B x {N_THREADS} threads): "
        f"{cycles['sfa']:.0f} cycles vs best rival {best_rival} "
        f"({rivals}) -> {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"SFA speedup {speedup:.2f}x vs {best_rival} below the "
        f"{MIN_SPEEDUP}x guard"
    )
