"""§I/II-B context — latency vs. throughput orientation, quantified.

The paper's framing: prior GPU automata engines optimize *aggregate
throughput* (stream-level or NFA state-level parallelism) and "ignore the
peak performance (i.e., the response time) of running over a single input
stream".  This bench races three designs on the same rule set and device:

* the stream-parallel batch engine (one lane per stream),
* the state-parallel NFA engine (one lane per NFA state),
* GSpecPal's chunk-parallel DFA execution.

Expected shape: the batch engine wins aggregate symbols/cycle, the NFA
engine stays memory-lean, and GSpecPal answers a single stream one to two
orders of magnitude sooner.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.automata.regex import compile_disjunction, regex_to_nfa
from repro.automata.nfa import union_nfas
from repro.framework.throughput import ThroughputEngine
from repro.schemes import NFScheme
from repro.schemes.nfa_engine import NFAEngine
from repro.workloads.patterns import snort_patterns
from repro.workloads.traces import TraceSpec, network_weights

STREAM_LENGTH = 16_384
N_STREAMS = 64


def test_latency_vs_throughput(benchmark):
    from repro.engine import resolve_backend_name

    if resolve_backend_name(None) != "sim":
        # Cycle figures are NaN on answer-only backends; comparing them
        # across engines would be comparing nothing.
        pytest.skip("cycle comparison needs the cycle-accounting 'sim' backend")

    def experiment():
        patterns = snort_patterns(6, seed=3)
        dfa = compile_disjunction(patterns, name="rules")
        nfas = [regex_to_nfa(p, 256) for p in patterns]
        nfa = union_nfas(nfas)
        for sym in range(256):
            nfa.add_transition(nfa.start, sym, nfa.start)
        nfa.make_accepting_sticky()

        spec = TraceSpec(weights=network_weights(), name="traffic")
        streams = [spec.generate(STREAM_LENGTH, seed=i) for i in range(N_STREAMS)]
        training = spec.generate(4_096, seed=999)

        # 1. Stream-parallel batch engine.
        batch = ThroughputEngine(dfa, training_input=training).run_batch(streams)
        # 2. State-parallel NFA engine, one stream.
        nfa_engine = NFAEngine(nfa)
        nfa_single = nfa_engine.run(streams[0])
        # 3. GSpecPal chunk-parallel DFA, one stream.
        pal_scheme = NFScheme.for_dfa(dfa, n_threads=256, training_input=training)
        pal_single = pal_scheme.run(streams[0])
        assert pal_single.accepts == dfa.accepts(streams[0])
        assert nfa_single.accepts == dfa.accepts(streams[0])

        batch_latency = batch.latency_cycles
        rows = [
            [
                "stream-parallel batch (64 streams)",
                batch_latency,
                batch_latency,  # a single stream waits for the whole batch
                batch.total_symbols / batch_latency,
                dfa.table.nbytes,
            ],
            [
                "state-parallel NFA engine",
                nfa_single.cycles,
                nfa_single.cycles,
                STREAM_LENGTH / nfa_single.cycles,
                nfa_engine.memory_footprint_bytes,
            ],
            [
                "GSpecPal chunk-parallel DFA",
                pal_single.cycles,
                pal_single.cycles,
                STREAM_LENGTH / pal_single.cycles,
                dfa.table.nbytes,
            ],
        ]
        table = render_table(
            ["engine", "kernel cycles", "1-stream latency", "sym/cycle", "table bytes"],
            rows,
            precision=3,
            title="Latency vs throughput orientation (same rule set, same device)",
        )
        emit("latency_vs_throughput", table)
        return batch, nfa_single, pal_single, nfa_engine, dfa

    batch, nfa_single, pal_single, nfa_engine, dfa = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    # Shapes: GSpecPal's single-stream response is far ahead of both.
    assert pal_single.cycles < nfa_single.cycles / 5
    assert pal_single.cycles < batch.latency_cycles
    # The batch engine's aggregate rate beats its own single-stream rate by
    # construction (that's the throughput orientation).
    assert batch.total_symbols / batch.latency_cycles > STREAM_LENGTH / batch.latency_cycles
    # The NFA's compactness: masks need less memory than the DFA table.
    assert nfa_engine.memory_footprint_bytes < dfa.table.nbytes
