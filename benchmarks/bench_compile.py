"""Compile-pipeline hot path: vectorized vs reference DFA minimization.

The ISSUE-7 staged compiler canonicalizes every submitted automaton
(minimize + BFS renumber), so minimization sits on the serving tier's
cold-start path and must be fast on large union-of-patterns FSMs.  This
bench builds one such FSM — the disjunction of NIDS-style bounded-gap
patterns (``snort_patterns``), subset-constructed but *not* minimized,
tens of thousands of states — and times the vectorized incremental
``minimize_dfa`` against the retained Hopcroft worklist
``_minimize_reference`` on identical input.

Two artifacts come out of a run:

* a speedup **guard** — the vectorized pass must beat the reference by
  ≥3× (mirroring the fused-serving gate in ``bench_serving_batch.py``);
  both outputs are cross-checked for equal state counts and language
  equivalence before any timing is trusted; and
* one point of the compile perf **trajectory**:
  ``benchmarks/results/BENCH_compile.json`` accumulates a JSON record
  per run (input/output states, wall times, speedup) so later PRs
  regress against a number instead of a feeling.

Env knobs: ``REPRO_BENCH_PATTERNS`` (default 8 — enough for a ~40k-state
subset construction), ``REPRO_BENCH_MIN_REPEATS`` (default 3).
"""

import json
import os
import time
from datetime import date
from pathlib import Path

from repro.automata import compile_disjunction
from repro.automata.minimize import _minimize_reference, minimize_dfa
from repro.automata.properties import are_equivalent
from repro.workloads.patterns import snort_patterns

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_compile.json"

N_PATTERNS = int(os.environ.get("REPRO_BENCH_PATTERNS", 8))
REPEATS = int(os.environ.get("REPRO_BENCH_MIN_REPEATS", 3))
MIN_SPEEDUP = 3.0


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Minimum wall-clock of ``repeats`` calls (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record_trajectory(entry: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def test_vectorized_minimization_speedup_guard():
    # The paper's FSMs are "generated from a disjunction of multiple
    # randomly selected regular expressions"; the snort family's bounded
    # gaps make the raw subset construction genuinely large.
    dfa = compile_disjunction(
        snort_patterns(N_PATTERNS, seed=0),
        n_symbols=256,
        minimize=False,
        name="bench-union",
    )

    # Correctness before speed: identical state counts and languages.
    fast = minimize_dfa(dfa)
    ref = _minimize_reference(dfa)
    assert fast.n_states == ref.n_states
    assert are_equivalent(fast, ref)
    assert are_equivalent(fast, dfa)

    t_fast = _best_of(lambda: minimize_dfa(dfa))
    t_ref = _best_of(lambda: _minimize_reference(dfa))

    speedup = t_ref / t_fast
    entry = {
        "date": date.today().isoformat(),
        "bench": "compile_minimize",
        "patterns": N_PATTERNS,
        "input_states": dfa.n_states,
        "minimized_states": fast.n_states,
        "n_symbols": dfa.n_symbols,
        "reference_s": round(t_ref, 6),
        "vectorized_s": round(t_fast, 6),
        "speedup": round(speedup, 2),
    }
    _record_trajectory(entry)
    print(
        f"\nvectorized-vs-reference minimization "
        f"({dfa.n_states} -> {fast.n_states} states, "
        f"{dfa.n_symbols} symbols): {speedup:.1f}x "
        f"({t_ref * 1e3:.1f} ms -> {t_fast * 1e3:.1f} ms)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized minimization only {speedup:.2f}x faster than the "
        f"reference worklist on {dfa.n_states} states "
        f"(guard: >= {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_vectorized_minimization_speedup_guard()
