"""Extension — chunk-granularity trade-off for a fixed input.

For a fixed stream, the thread count N trades three terms: the speculative
execution phase shrinks as input/N, the frontier loop's fixed per-round
overhead grows as N, and recovery work depends on coverage dynamics.  The
total is U-shaped in N — the granularity choice behind the paper's
latency-sensitive design.  (Distinct from `bench_scaling_threads.py`, which
grows the *input* with N to isolate the PM-ratio trend.)
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.schemes import NFScheme

INPUT = 65_536
NS = (32, 64, 128, 256, 512, 1024)


def test_chunk_granularity(benchmark, members):
    def experiment():
        member = members["snort"][2]  # snort3: converging, recovery-light
        training = member.training_input(8_192)
        data = member.generate_input(INPUT, seed=0)
        truth = member.dfa.run(data)
        rows = []
        cycles = []
        for n in NS:
            scheme = NFScheme.for_dfa(
                member.dfa, n_threads=n, training_input=training
            )
            result = scheme.run(data)
            assert result.end_state == truth
            cycles.append(result.cycles)
            rows.append(
                [
                    n,
                    INPUT // n,
                    result.cycles,
                    result.stats.recovery_rounds,
                    result.stats.phase_cycles.get("speculative_execution", 0.0),
                ]
            )
        table = render_table(
            ["N", "chunk len", "total cycles", "recovery rounds", "spec-exec cycles"],
            rows,
            precision=0,
            title=f"Chunk-granularity trade-off (NF on {member.name}, "
            f"input {INPUT})",
        )
        emit("chunk_granularity", table)
        return np.asarray(cycles, dtype=np.float64)

    cycles = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # U-shape: both extremes cost more than the best interior point.
    best = int(np.argmin(cycles))
    assert 0 < best < len(NS) - 1, f"optimum at boundary: N={NS[best]}"
    assert cycles[0] > cycles[best]
    assert cycles[-1] > cycles[best]
