"""§IV-B / §V-C ablation — the frequency-based DFA transformation.

The paper states the transformation brings ~15% average improvement (it
replaces PM's hash-guarded hot table — one extra shared access plus a hash
per transition — with a plain ``state < H`` rank check).  We run RR with the
transformation on vs. off (hash layout) across representative members.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.framework import GSpecPal, GSpecPalConfig

INPUT = 32_768
PICKS = [("snort", 3), ("snort", 9), ("clamav", 2), ("clamav", 11),
         ("poweren", 3), ("poweren", 11)]


def run_with_layout(member, use_transformation: bool) -> float:
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    cfg = GSpecPalConfig(n_threads=128, use_transformation=use_transformation)
    pal = GSpecPal(member.dfa, cfg, training_input=training)
    return pal.run(data, scheme="rr").cycles


def test_transformation_ablation(benchmark, members):
    def experiment():
        by_suite = {s: {m.index: m for m in ms} for s, ms in members.items()}
        rows = []
        improvements = []
        for suite, idx in PICKS:
            member = by_suite[suite][idx]
            with_t = run_with_layout(member, True)
            without = run_with_layout(member, False)
            improvement = 1.0 - with_t / without
            improvements.append(improvement)
            rows.append([member.name, without, with_t, f"{improvement:.1%}"])
        mean_imp = float(np.mean(improvements))
        table = render_table(
            ["fsm", "hash-layout cycles", "transformed cycles", "improvement"],
            rows + [["mean", "", "", f"{mean_imp:.1%}"]],
            precision=0,
            title="DFA-transformation ablation (RR scheme) — paper reports ~15% "
            "average improvement",
        )
        emit("ablation_transform", table)
        return improvements, mean_imp

    improvements, mean_imp = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The transformation must help on every member and land in the same
    # ballpark as the paper's 15% average.
    assert all(i > 0 for i in improvements)
    assert 0.05 <= mean_imp <= 0.40
