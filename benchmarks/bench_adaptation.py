"""Online adaptation vs a pinned stale plan on two-phase drifting traffic.

The drifting-phase workload trains calm (the selector rightly picks PM),
then the live distribution flips hot and PM's speculation collapses to
near-sequential recovery.  A drift-enabled pool must detect the collapse,
revise in the background (one single-flight ``revise_plan``, no recompile)
and hot-swap to SFA at a segment boundary; a pinned pool keeps serving the
stale PM plan.  On the post-swap segments the adapted pool must win by
≥2× in modeled cycles — and both pools must stay bit-identical to the
sequential oracle, or no number is trusted.

Artifacts per run: the guard above, plus one JSON record appended to
``benchmarks/results/BENCH_adaptation.json`` (per-phase cycles, swap
segment, revise provenance) so later PRs regress against a number.

Env knobs: ``REPRO_BENCH_ADAPT_STATES`` (default 128),
``REPRO_BENCH_ADAPT_SEGMENT`` (segment bytes, default 4096),
``REPRO_BENCH_ADAPT_THREADS`` (default 32).
"""

import json
import os
from datetime import date
from pathlib import Path

from repro.framework import GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.serving import DriftConfig, MatcherPool, PlanCache
from repro.workloads import classic

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_adaptation.json"

N_STATES = int(os.environ.get("REPRO_BENCH_ADAPT_STATES", 128))
SEGMENT_LEN = int(os.environ.get("REPRO_BENCH_ADAPT_SEGMENT", 4096))
N_THREADS = int(os.environ.get("REPRO_BENCH_ADAPT_THREADS", 32))
CALM_SEGMENTS = 4
HOT_SEGMENTS = 12
MIN_SPEEDUP = 2.0


def _record_trajectory(entry: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _segments():
    calm = [
        classic.drifting_phase_input(SEGMENT_LEN, drift_at=1.0, seed=100 + i)
        for i in range(CALM_SEGMENTS)
    ]
    hot = [
        classic.drifting_phase_input(SEGMENT_LEN, drift_at=0.0, seed=200 + i)
        for i in range(HOT_SEGMENTS)
    ]
    return calm + hot


def _serve(drift_config):
    """Feed the two-phase schedule through one pool; per-segment cycles."""
    config = GSpecPalConfig(n_threads=N_THREADS, backend="sim")
    metrics = MetricsRegistry()
    cache = PlanCache(capacity=2, config=config, metrics=metrics)
    pool = MatcherPool(
        cache,
        config=config,
        backend="sim",
        metrics=metrics,
        drift=drift_config,
    )
    dfa = classic.drifting_phase(N_STATES)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    compiled = cache.get_or_compile(dfa, training, config)
    assert compiled.scheme == "pm", compiled.scheme  # calm training -> PM

    sid = pool.open(dfa, training_input=training)
    fed = bytearray()
    cycles, revised_at = [], None
    for i, segment in enumerate(_segments()):
        result = pool.feed(sid, segment)
        fed += segment
        cycles.append(float(result.stats.cycles))
        if revised_at is None and metrics.as_dict().get("drift.revises", 0):
            revised_at = i  # synchronous: the swap serves from i + 1 on
    stats = pool.close(sid)

    # Correctness before speed: bit-identical to the sequential oracle.
    oracle = int(dfa.run(bytes(fed)))
    assert stats.end_state == oracle
    assert stats.accepts == (oracle in dfa.accepting)
    return stats, cycles, revised_at, metrics.as_dict(), cache, dfa, training, config


def test_hot_swap_beats_pinned_stale_plan():
    pinned_stats, pinned_cycles, _, pinned_metrics, *_ = _serve(None)
    assert pinned_stats.scheme_switches == 0
    assert pinned_metrics.get("drift.revises", 0) == 0

    (
        stats,
        cycles,
        revised_at,
        exported,
        cache,
        dfa,
        training,
        config,
    ) = _serve(
        DriftConfig(
            threshold=0.3,
            min_samples=60,
            ewma_alpha=0.5,
            hysteresis=2,
            synchronous=True,
        )
    )

    # Exactly one background revise + segment-boundary hot-swap.
    assert exported["drift.triggers"] == 1
    assert exported["drift.revises"] == 1
    assert exported["drift.swaps"] == 1
    assert exported.get("drift.revise_errors", 0) == 0
    assert stats.scheme_switches == 1
    assert stats.scheme == "sfa"
    assert stats.decision_path == ("speculation_floor",)
    assert revised_at is not None and revised_at >= CALM_SEGMENTS

    revised = cache.get_or_compile(dfa, training, config)
    assert revised.revision == 1

    # Post-swap segments: the adapted pool serves SFA, the pinned pool
    # keeps paying PM's recovery storm on the same bytes.
    post = slice(revised_at + 1, None)
    adapted_cycles = sum(cycles[post])
    stale_cycles = sum(pinned_cycles[post])
    speedup = stale_cycles / adapted_cycles

    entry = {
        "date": date.today().isoformat(),
        "bench": "adaptation",
        "backend": "sim",
        "fsm": dfa.name,
        "n_states": N_STATES,
        "segment_len": SEGMENT_LEN,
        "n_threads": N_THREADS,
        "calm_segments": CALM_SEGMENTS,
        "hot_segments": HOT_SEGMENTS,
        "revised_at_segment": revised_at,
        "post_swap_segments": len(cycles[post]),
        "pinned_post_swap_cycles": stale_cycles,
        "adapted_post_swap_cycles": adapted_cycles,
        "speedup_post_swap": round(speedup, 2),
        "revise_provenance": revised.live_provenance,
    }
    _record_trajectory(entry)
    print(
        f"\nadaptation on {dfa.name} ({SEGMENT_LEN}B x {N_THREADS} threads): "
        f"swap after segment {revised_at}; post-swap "
        f"{adapted_cycles:.0f} cycles adapted vs {stale_cycles:.0f} pinned "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"adapted speedup {speedup:.2f}x below the {MIN_SPEEDUP}x guard"
    )
