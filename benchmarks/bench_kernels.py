"""Micro-benchmarks (pytest-benchmark wall clock) of the core kernels.

These track the *simulator's* own performance — the lockstep executor's
throughput, the predictor, partitioning, and the frequency transformation —
so regressions in the vectorized hot paths show up in CI.
"""

import time

import numpy as np
import pytest

from repro.automata.dfa import run_lockstep
from repro.automata.transform import frequency_transform
from repro.engine import FastBackend, SimBackend
from repro.gpu.device import RTX3090
from repro.gpu.executor import LockstepExecutor, distinct_chunks_per_warp
from repro.gpu.memory import MemoryModel
from repro.gpu.stats import KernelStats
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import predict_start_states
from repro.workloads import classic


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` calls (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def dfa():
    return classic.divisibility(64, base=10)


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    return rng.integers(48, 58, size=262_144).astype(np.uint8)


def test_bench_run_lockstep(benchmark, dfa, stream):
    chunks = stream.reshape(256, -1)
    starts = np.zeros(256, dtype=np.int64)
    ends = benchmark(lambda: run_lockstep(dfa.table, chunks, starts))
    assert ends.shape == (256,)


def test_bench_executor_with_accounting(benchmark, dfa, stream):
    mm = MemoryModel.for_dfa(RTX3090, dfa.n_states, dfa.n_symbols)
    ex = LockstepExecutor(dfa.table, mm, RTX3090)
    chunks = stream.reshape(256, -1)
    starts = np.zeros(256, dtype=np.int64)

    def run():
        stats = KernelStats(device=RTX3090, n_threads=256)
        return ex.run(chunks, starts, stats=stats, phase="p")

    ends = benchmark(run)
    assert ends.shape == (256,)


def test_bench_partition(benchmark, stream):
    p = benchmark(lambda: partition_input(stream, 256))
    assert p.n_chunks == 256


def test_bench_predictor(benchmark, dfa, stream):
    partition = partition_input(stream, 256)
    pred = benchmark(lambda: predict_start_states(dfa, partition))
    assert pred.n_chunks == 256


def test_bench_frequency_transform(benchmark, dfa, stream):
    t = benchmark(
        lambda: frequency_transform(
            dfa,
            training_input=stream[:16_384],
            shared_memory_entries=RTX3090.shared_table_entries,
        )
    )
    assert t.dfa.n_states == dfa.n_states


def test_bench_sequential_reference(benchmark, dfa, stream):
    short = stream[:16_384]
    end = benchmark(lambda: dfa.run(short))
    assert 0 <= end < dfa.n_states


def test_bench_fast_backend(benchmark, dfa, stream):
    """Wall clock of the answer-only backend on the N=256 lockstep batch."""
    fast = FastBackend(dfa.table)
    chunks = stream.reshape(256, -1)
    starts = np.zeros(256, dtype=np.int64)
    ends = benchmark(lambda: fast.run_batch(chunks, starts))
    assert ends.shape == (256,)


def test_fast_backend_speedup_guard(dfa, stream):
    """Acceptance bar: FastBackend beats SimBackend by ≥5× wall clock on
    the N=256 lockstep microbenchmark (identical end states required)."""
    mm = MemoryModel.for_dfa(RTX3090, dfa.n_states, dfa.n_symbols)
    sim = SimBackend(LockstepExecutor(dfa.table, mm, RTX3090))
    fast = FastBackend(dfa.table)
    chunks = stream.reshape(256, -1)
    starts = np.zeros(256, dtype=np.int64)

    def run_sim():
        stats = KernelStats(device=RTX3090, n_threads=256)
        return sim.run_batch(chunks, starts, stats=stats, phase="p")

    np.testing.assert_array_equal(run_sim(), fast.run_batch(chunks, starts))
    t_sim = _best_of(run_sim, repeats=3)
    t_fast = _best_of(lambda: fast.run_batch(chunks, starts), repeats=3)
    speedup = t_sim / t_fast
    print(f"\nfast-vs-sim lockstep (N=256): {speedup:.1f}x "
          f"({t_sim * 1e3:.2f} ms -> {t_fast * 1e3:.2f} ms)")
    assert speedup >= 5.0, f"fast backend only {speedup:.2f}x faster than sim"


def _naive_distinct_chunks(lane_chunk, n_warps, ws):
    """The pre-vectorization per-warp np.unique loop, kept as reference."""
    out = np.zeros(n_warps, dtype=np.int64)
    for w in range(n_warps):
        lanes = lane_chunk[w * ws : (w + 1) * ws]
        out[w] = np.unique(lanes[lanes >= 0]).size
    return out


def test_fetch_coalescing_vectorization_guard():
    """The segmented fetch-coalescing pass must match the per-warp loop and
    beat it on a wide launch (N = 16384 threads ≥ the 512-thread bar)."""
    rng = np.random.default_rng(42)
    ws = RTX3090.warp_size
    n_threads = 16_384
    n_warps = n_threads // ws
    lane_chunk = rng.integers(-1, n_threads, size=n_warps * ws)

    np.testing.assert_array_equal(
        distinct_chunks_per_warp(lane_chunk, n_warps, ws),
        _naive_distinct_chunks(lane_chunk, n_warps, ws),
    )
    t_naive = _best_of(lambda: _naive_distinct_chunks(lane_chunk, n_warps, ws))
    t_vec = _best_of(lambda: distinct_chunks_per_warp(lane_chunk, n_warps, ws))
    speedup = t_naive / t_vec
    print(f"\nfetch-coalescing setup ({n_warps} warps): {speedup:.1f}x "
          f"({t_naive * 1e3:.2f} ms -> {t_vec * 1e3:.2f} ms)")
    assert speedup >= 3.0, f"vectorized pass barely beats the loop ({speedup:.2f}x)"
