"""Micro-benchmarks (pytest-benchmark wall clock) of the core kernels.

These track the *simulator's* own performance — the lockstep executor's
throughput, the predictor, partitioning, and the frequency transformation —
so regressions in the vectorized hot paths show up in CI.
"""

import numpy as np
import pytest

from repro.automata.dfa import run_lockstep
from repro.automata.transform import frequency_transform
from repro.gpu.device import RTX3090
from repro.gpu.executor import LockstepExecutor
from repro.gpu.memory import MemoryModel
from repro.gpu.stats import KernelStats
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import predict_start_states
from repro.workloads import classic


@pytest.fixture(scope="module")
def dfa():
    return classic.divisibility(64, base=10)


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    return rng.integers(48, 58, size=262_144).astype(np.uint8)


def test_bench_run_lockstep(benchmark, dfa, stream):
    chunks = stream.reshape(256, -1)
    starts = np.zeros(256, dtype=np.int64)
    ends = benchmark(lambda: run_lockstep(dfa.table, chunks, starts))
    assert ends.shape == (256,)


def test_bench_executor_with_accounting(benchmark, dfa, stream):
    mm = MemoryModel.for_dfa(RTX3090, dfa.n_states, dfa.n_symbols)
    ex = LockstepExecutor(dfa.table, mm, RTX3090)
    chunks = stream.reshape(256, -1)
    starts = np.zeros(256, dtype=np.int64)

    def run():
        stats = KernelStats(device=RTX3090, n_threads=256)
        return ex.run(chunks, starts, stats=stats, phase="p")

    ends = benchmark(run)
    assert ends.shape == (256,)


def test_bench_partition(benchmark, stream):
    p = benchmark(lambda: partition_input(stream, 256))
    assert p.n_chunks == 256


def test_bench_predictor(benchmark, dfa, stream):
    partition = partition_input(stream, 256)
    pred = benchmark(lambda: predict_start_states(dfa, partition))
    assert pred.n_chunks == 256


def test_bench_frequency_transform(benchmark, dfa, stream):
    t = benchmark(
        lambda: frequency_transform(
            dfa,
            training_input=stream[:16_384],
            shared_memory_entries=RTX3090.shared_table_entries,
        )
    )
    assert t.dfa.n_states == dfa.n_states


def test_bench_sequential_reference(benchmark, dfa, stream):
    short = stream[:16_384]
    end = benchmark(lambda: dfa.run(short))
    assert 0 <= end < dfa.n_states
