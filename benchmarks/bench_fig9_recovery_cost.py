"""Fig. 9 — Effect of higher thread utilization on per-chunk recovery cost.

The paper reports recovery execution time *per chunk recovered*, normalized
to SRE, for 12 randomly selected DFAs: RR and NF pay more per chunk than SRE
(resource contention — full warps vs. single lanes), but NF is cheaper than
RR because threads stacked on the same chunk coalesce their input stream and
diverge less.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_THREADS, emit
from repro.analysis.tables import render_table
from repro.schemes import NFScheme, RRScheme, SREScheme

INPUT = 32_768

#: 12 DFAs "randomly selected from the 3 groups" (fixed for determinism) —
#: recovery-heavy members so every scheme actually recovers.
PICKS = [
    ("snort", 5), ("snort", 7), ("snort", 9), ("snort", 11),
    ("clamav", 7), ("clamav", 9), ("clamav", 11), ("clamav", 12),
    ("poweren", 5), ("poweren", 8), ("poweren", 11), ("poweren", 12),
]


def recovery_cost_per_chunk(member, cls) -> float:
    """Recovery execution cycles per frontier round: the latency each
    recovered chunk adds to the critical path.  SRE's sparse rounds run a
    few lanes per warp; RR/NF's full warps pay divergent-transaction
    serialization and extra stream fetches — the paper's "resource
    contention"."""
    training = member.training_input(8_192)
    data = member.generate_input(INPUT, seed=0)
    scheme = cls.for_dfa(member.dfa, n_threads=N_THREADS, training_input=training)
    stats = scheme.run(data).stats
    return stats.recovery_cycles_per_round


def test_fig9_recovery_cost(benchmark, members):
    def experiment():
        by_suite = {s: {m.index: m for m in ms} for s, ms in members.items()}
        rows = []
        ratios_rr, ratios_nf = [], []
        for suite, idx in PICKS:
            member = by_suite[suite][idx]
            sre = recovery_cost_per_chunk(member, SREScheme)
            rr = recovery_cost_per_chunk(member, RRScheme)
            nf = recovery_cost_per_chunk(member, NFScheme)
            if sre == 0:
                continue  # nothing to normalize against on this member
            rows.append([member.name, rr / sre, nf / sre])
            ratios_rr.append(rr / sre)
            ratios_nf.append(nf / sre)

        table = render_table(
            ["fsm", "rr/sre", "nf/sre"],
            rows + [["mean", float(np.mean(ratios_rr)), float(np.mean(ratios_nf))]],
            title="Fig. 9 analogue — recovery time per recovered chunk, "
            "normalized to SRE",
        )
        emit("fig9_recovery_cost", table)
        return rows, ratios_rr, ratios_nf

    rows, ratios_rr, ratios_nf = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    assert len(rows) >= 8, "most picks must actually recover"
    # Shape 1: aggressive schemes pay more per chunk than SRE on average
    # (contention of fully-active warps vs. SRE's sparse lanes).
    assert np.mean(ratios_rr) > 1.0
    # Shape 2: NF is cheaper than RR (locality/coalescing of stacked threads).
    assert np.mean(ratios_nf) < np.mean(ratios_rr)
