#!/usr/bin/env python
"""Quickstart: run the paper's Fig. 1 FSM (div7) through GSpecPal.

Walks the whole pipeline on a small example:

1. build a DFA (binary divisibility-by-7, the paper's running example);
2. hand it to the GSpecPal framework;
3. let the selector profile it and pick a parallelization scheme;
4. process a stream and compare every scheme's simulated kernel time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GSpecPal, GSpecPalConfig
from repro.workloads import classic


def main() -> None:
    rng = np.random.default_rng(42)

    # --- 1. the FSM --------------------------------------------------------
    dfa = classic.div7()
    print(f"FSM: {dfa}")
    print(dfa.format_table(symbols=[ord("0"), ord("1")]))  # Fig. 1(b)

    # A binary numeral, 64 KiB of random bits.
    stream = rng.integers(ord("0"), ord("1") + 1, size=65_536).astype(np.uint8)

    # --- 2-3. framework: profile, select, run ------------------------------
    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=256))
    features = pal.profile(stream)
    print(
        f"profiled: spec-1 {features.spec1_accuracy:.0%}, "
        f"spec-4 {features.spec4_accuracy:.0%}, "
        f"convergence #uniqStates(10) = {features.convergence_states:.1f}"
    )
    print(f"selector says: {pal.select_scheme()}")
    print(pal.selector.explain(features))

    result = pal.run(stream)
    value_mod_7 = "divisible" if result.accepts else "not divisible"
    print(
        f"\nran scheme {result.scheme!r}: the numeral is {value_mod_7} by 7 "
        f"(end state {result.end_state})"
    )
    assert result.end_state == dfa.run(stream), "must match sequential run"

    # --- 4. compare all schemes --------------------------------------------
    print("\nscheme comparison (simulated RTX 3090 kernel time):")
    results = pal.compare_schemes(stream, schemes=("pm", "sre", "rr", "nf"))
    seq = pal.run(stream, scheme="seq")
    print(f"  {'sequential':12s} {seq.time_ms:8.3f} ms   (1 thread)")
    for name, res in sorted(results.items(), key=lambda kv: kv[1].cycles):
        print(
            f"  {name:12s} {res.time_ms:8.3f} ms   "
            f"({seq.time_ms / res.time_ms:5.1f}x over sequential, "
            f"{res.stats.recovery_rounds} recovery rounds)"
        )


if __name__ == "__main__":
    main()
