#!/usr/bin/env python
"""Virus-signature scanning over binary images (the ClamAV motivation).

Byte-level signatures (hex strings with bounded skips) are compiled to one
scanner DFA; a synthetic "executable image" stream is scanned with GSpecPal
and the frequency-based DFA transformation's effect is shown directly —
this is the §IV-B optimization in action on a binary-flavoured workload.

Run:  python examples/virus_scanning.py
"""

import numpy as np

from repro import GSpecPal, GSpecPalConfig, compile_disjunction
from repro.workloads.traces import TraceSpec, binary_weights

SIGNATURES = [
    r"\x4d\x5a\x90\x00.{0,6}\x50\x45",     # MZ..PE-ish header chain
    r"\xde\xad\xbe\xef",                    # marker dword
    r"\xe8.{0,4}\x5d\xc3",                  # call/pop/ret gadget
    r"\x90{6,}",                            # NOP sled
]


def main() -> None:
    print("compiling signature database...")
    dfa = compile_disjunction(SIGNATURES, name="clam-sigs")
    print(f"  {len(SIGNATURES)} signatures -> {dfa}")

    spec = TraceSpec(weights=binary_weights(), name="binary-image")
    image = spec.generate(131_072, seed=11)
    # Implant a NOP sled halfway through.
    image[60_000:60_010] = 0x90

    for use_transform, label in ((True, "rank layout (transformed)"),
                                 (False, "hash layout (PM-style)")):
        cfg = GSpecPalConfig(n_threads=256, use_transformation=use_transform)
        pal = GSpecPal(dfa, cfg)
        result = pal.run(image, scheme="rr")
        verdict = "INFECTED" if result.accepts else "clean"
        print(
            f"{label:28s}: {verdict:8s} kernel={result.time_ms:7.3f} ms "
            f"(shared-memory hit rate {result.stats.hot_access_fraction:.1%})"
        )
        assert result.accepts == dfa.accepts(image)

    clean = spec.generate(131_072, seed=12)
    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=256))
    result = pal.run(clean)
    print(f"{'clean image':28s}: {'clean' if not result.accepts else 'INFECTED'}")


if __name__ == "__main__":
    main()
