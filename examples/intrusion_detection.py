#!/usr/bin/env python
"""Network-intrusion-detection scenario (the paper's Snort motivation).

Compiles a small rule set of attack signatures into one scanning DFA,
streams a synthetic network trace through GSpecPal, and reports both the
detection outcome and how the latency-sensitive parallelization performed —
the paper's target use case: a *single* stream that must be answered fast,
not a throughput batch.

Run:  python examples/intrusion_detection.py
"""

import numpy as np

from repro import GSpecPal, GSpecPalConfig, compile_disjunction
from repro.workloads.traces import TraceSpec, network_weights

RULES = [
    # classic web-attack signatures, PCRE-style
    r"GET /cgi-bin/.{0,4}\.sh",
    r"cmd\.exe",
    r"/etc/passwd",
    r"UNION.{0,4}SELECT",
    r"<script>",
]


def build_trace(length: int, inject_attack: bool, seed: int) -> np.ndarray:
    spec = TraceSpec(
        weights=network_weights(),
        keywords=(b"GET /index.html", b"Host: example.com", b"User-Agent: curl"),
        keyword_density=0.002,
        name="http-trace",
    )
    trace = spec.generate(length, seed=seed)
    if inject_attack:
        payload = b"GET /cgi-bin/x.sh HTTP/1.1"
        pos = length // 2
        trace[pos : pos + len(payload)] = np.frombuffer(payload, dtype=np.uint8)
    return trace


def main() -> None:
    print("compiling rule set...")
    dfa = compile_disjunction(RULES, name="nids-rules")
    print(f"  {len(RULES)} rules -> {dfa}")

    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=256))

    for label, inject in (("benign traffic", False), ("attack traffic", True)):
        trace = build_trace(131_072, inject_attack=inject, seed=7)
        result = pal.run(trace)
        verdict = "ALERT" if result.accepts else "clean"
        print(
            f"{label:16s}: {verdict:6s}  "
            f"scheme={result.scheme:8s} "
            f"kernel={result.time_ms:7.3f} ms  "
            f"accuracy={result.stats.runtime_speculation_accuracy:.1%}"
        )
        # Cross-check against the sequential scan.
        assert result.accepts == dfa.accepts(trace)

    # Latency story: single-stream response time vs the sequential scan.
    trace = build_trace(131_072, inject_attack=True, seed=8)
    seq = pal.run(trace, scheme="seq")
    par = pal.run(trace)
    print(
        f"\nresponse-time: sequential {seq.time_ms:.3f} ms vs "
        f"{par.scheme} {par.time_ms:.3f} ms "
        f"({seq.time_ms / par.time_ms:.1f}x faster)"
    )


if __name__ == "__main__":
    main()
