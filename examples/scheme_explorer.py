#!/usr/bin/env python
"""Scheme explorer: how FSM properties decide which parallelization wins.

Builds three FSMs with opposite personalities — the regimes §III-C's
analysis distinguishes — and races all four schemes on each:

* an *easy* FSM (keyword scanner): speculation is nearly always right;
* a *converging* FSM (sync-reset counter): forwarded end states are right;
* a *hard* FSM (permutation counter): only aggressive enumeration helps.

The printed table is a miniature of the paper's Fig. 8 narrative, and the
decision tree's pick is shown for each.

Run:  python examples/scheme_explorer.py
"""

import numpy as np

from repro import GSpecPal, GSpecPalConfig
from repro.automata.dfa import DFA
from repro.workloads import classic
from repro.workloads.components import counter_component
from repro.workloads.traces import TraceSpec

N_THREADS = 256
LENGTH = 65_536


def easy_fsm():
    dfa = classic.keyword_scanner(b"malware-sig")
    spec = TraceSpec(weights=np.ones(256), name="random-bytes")
    return "easy (scanner)", dfa, spec


def converging_fsm():
    comp = counter_component(12, sync_symbols=(10,), seed=1)
    dfa = DFA(table=comp.table, start=0, accepting=frozenset({0}), name="sync-counter")
    spec = TraceSpec(
        weights=np.ones(256), sync_symbols=(10,), sync_density=0.3, name="syncy"
    )
    return "converging (sync counter)", dfa, spec


def hard_fsm():
    comp = counter_component(14, seed=2)
    dfa = DFA(table=comp.table, start=0, accepting=frozenset({0}), name="perm-counter")
    spec = TraceSpec(weights=np.ones(256), name="random-bytes")
    return "hard (permutation counter)", dfa, spec


def main() -> None:
    header = f"{'FSM':28s} {'selector':9s}" + "".join(
        f"{s:>10s}" for s in ("pm", "sre", "rr", "nf")
    )
    print(header)
    print("-" * len(header))
    for label, dfa, spec in (easy_fsm(), converging_fsm(), hard_fsm()):
        stream = spec.generate(LENGTH, seed=3)
        training = spec.generate(8_192, seed=4)
        pal = GSpecPal(dfa, GSpecPalConfig(n_threads=N_THREADS), training_input=training)
        selected = pal.select_scheme()
        results = pal.compare_schemes(stream)
        truth = dfa.run(stream)
        assert all(r.end_state == truth for r in results.values())
        base = results["pm"].cycles
        cells = "".join(f"{base / results[s].cycles:9.2f}x" for s in ("pm", "sre", "rr", "nf"))
        print(f"{label:28s} {selected:9s}{cells}")
    print("\n(speedup over PM(spec-4); higher is better — note how the winner")
    print(" moves with speculation accuracy and state convergence)")


if __name__ == "__main__":
    main()
