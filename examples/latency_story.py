#!/usr/bin/env python
"""The latency story: why speculation-centric parallelization exists.

Races three GPU designs on the same rule set and the same stream:

1. the classic *throughput* engine — 64 streams batch-scanned, one thread
   each (great aggregate rate, each stream waits for a full sequential
   scan);
2. the *state-parallel NFA engine* (iNFAnt lineage) — compact tables,
   per-symbol parallelism, but symbols remain strictly sequential;
3. *GSpecPal* — chunk-parallel speculative DFA execution.

This is §I/II-B of the paper turned into a runnable script.

Run:  python examples/latency_story.py
"""

import numpy as np

from repro.automata.nfa import union_nfas
from repro.automata.regex import compile_disjunction, regex_to_nfa
from repro.framework import GSpecPal, GSpecPalConfig, ThroughputEngine
from repro.schemes.nfa_engine import NFAEngine
from repro.workloads.patterns import snort_patterns
from repro.workloads.traces import TraceSpec, network_weights


def main() -> None:
    patterns = snort_patterns(6, seed=3)
    print("rule set:")
    for p in patterns:
        print(f"  {p}")

    dfa = compile_disjunction(patterns, name="rules")
    nfa = union_nfas([regex_to_nfa(p, 256) for p in patterns])
    for sym in range(256):
        nfa.add_transition(nfa.start, sym, nfa.start)
    nfa.make_accepting_sticky()

    spec = TraceSpec(weights=network_weights(), name="traffic")
    streams = [spec.generate(16_384, seed=i) for i in range(64)]
    training = spec.generate(4_096, seed=999)
    probe = streams[0]

    # 1. throughput engine
    batch = ThroughputEngine(dfa, training_input=training).run_batch(streams)
    # 2. NFA engine
    nfa_result = NFAEngine(nfa).run(probe)
    # 3. GSpecPal
    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=256), training_input=training)
    pal_result = pal.run(probe)
    assert pal_result.accepts == dfa.accepts(probe) == nfa_result.accepts

    ms = lambda cycles: f"{cycles / 1.395e6:8.3f} ms"
    print("\nhow long until stream #0's verdict is known?")
    print(f"  throughput batch engine : {ms(batch.latency_cycles)}  "
          f"(but {batch.total_symbols:,} total symbols scanned)")
    print(f"  state-parallel NFA      : {ms(nfa_result.cycles)}")
    print(f"  GSpecPal ({pal_result.scheme:8s})    : {ms(pal_result.cycles)}")
    print(
        f"\nGSpecPal answers {batch.latency_cycles / pal_result.cycles:.0f}x sooner "
        f"than the batch engine and {nfa_result.cycles / pal_result.cycles:.0f}x sooner "
        "than the NFA engine on this stream."
    )


if __name__ == "__main__":
    main()
