"""Setup shim: enables legacy editable installs (`pip install -e .`) in
environments without the `wheel` package (no network for build isolation)."""

from setuptools import setup

setup()
