"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``run``      — execute one scheme (or the auto-selected one) on a suite
               member and print the cost breakdown; ``--plan`` serves from
               a precompiled artifact (zero profiling), ``--plan-cache``
               keeps compiled plans in a directory across invocations.
``compare``  — race all four schemes on one member (same plan flags).
``compile``  — run the offline phase once and write the immutable plan
               artifact (``repro compile snort 8 -o plan.npz``).
``profile``  — print a member's feature vector and the selector's reasoning.
``suite``    — list a suite's members and their regimes.
``trace``    — run a member with tracing on and print the per-phase span
               timeline plus executor/memory metrics; ``--jsonl`` exports
               the spans for external tooling.
``fuzz``     — differential fuzzing: random DFAs × schemes × backends ×
               streaming cross-checked against the sequential oracle with
               runtime invariant audits on; failures are shrunk and saved
               as JSON repros (``--replay`` re-runs one).
``stress``   — multithreaded serving soak: M worker threads of interleaved
               open/feed/close over K automata through one shared
               PlanCache/MatcherPool, audited against the sequential
               oracle (exactly one compile per fingerprint, no lost or
               incorrect stream states).

Examples
--------
::

    python -m repro.cli suite snort
    python -m repro.cli profile snort 8
    python -m repro.cli compile snort 8 -o snort8.npz
    python -m repro.cli run snort 8 --plan snort8.npz
    python -m repro.cli run snort 8 --scheme nf --input-length 65536
    python -m repro.cli compare poweren 4 --threads 256
    python -m repro.cli trace snort 1 --input-length 4096 --threads 32
    python -m repro.cli fuzz --iterations 200 --seed 42 --out fuzz-repros
    python -m repro.cli stress --threads 8 --fingerprints 4 --ops 400
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import render_table
from repro.framework import GSpecPal, GSpecPalConfig
from repro.selector import profile_features
from repro.selector.decision_tree import DecisionTreeSelector
from repro.workloads.suites import REGIME_LAYOUT, SUITES, build_member


def _add_member_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("suite", choices=SUITES)
    p.add_argument("index", type=int, help="member index 1..12")
    p.add_argument("--input-length", type=int, default=65_536)
    p.add_argument("--training-length", type=int, default=8_192)
    p.add_argument("--threads", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        choices=("sim", "fast"),
        default=None,
        help="execution backend: 'sim' = cycle-accurate simulation "
        "(default), 'fast' = answer-only serving path with no cycle "
        "ledger ($REPRO_BACKEND overrides the default)",
    )


def _add_plan_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--plan",
        default=None,
        metavar="PATH",
        help="serve from a precompiled plan artifact (see 'compile'); "
        "skips all profiling and uses the plan's compiled selection",
    )
    p.add_argument(
        "--plan-cache",
        default=None,
        metavar="DIR",
        dest="plan_cache",
        help="directory of cached plans keyed by FSM fingerprint; hit = "
        "zero profiling, miss = compile once and persist for next time",
    )


def _resolve_plan(args, member):
    """The plan to serve from per ``--plan``/``--plan-cache``, else None."""
    plan_path = getattr(args, "plan", None)
    cache_dir = getattr(args, "plan_cache", None)
    if plan_path is not None:
        from repro.plan import load_plan

        plan = load_plan(plan_path)
        # A plan only serves the automaton it was compiled for.
        plan.verify(member.dfa)
        return plan
    if cache_dir is not None:
        from repro.serving import PlanCache

        cache = PlanCache(directory=cache_dir)
        return cache.get_or_compile(
            member.dfa,
            member.training_input(args.training_length),
            GSpecPalConfig(n_threads=args.threads),
        )
    return None


def _build(args, tracer=None, metrics=None):
    member = build_member(args.suite, args.index)
    data = member.generate_input(args.input_length, seed=args.seed)
    plan = _resolve_plan(args, member)
    if plan is not None:
        pal = GSpecPal.from_plan(
            plan,
            backend=getattr(args, "backend", None),
            tracer=tracer,
            metrics=metrics,
        )
    else:
        pal = GSpecPal(
            member.dfa,
            GSpecPalConfig(
                n_threads=args.threads, backend=getattr(args, "backend", None)
            ),
            training_input=member.training_input(args.training_length),
            tracer=tracer,
            metrics=metrics,
        )
    return member, pal, data


def cmd_suite(args) -> int:
    rows = [
        [i + 1, regime] for i, regime in enumerate(REGIME_LAYOUT[args.suite])
    ]
    print(render_table(["index", "regime"], rows, title=f"suite {args.suite}"))
    return 0


def cmd_profile(args) -> int:
    member = build_member(args.suite, args.index)
    features = profile_features(
        member.dfa, member.training_input(args.training_length)
    )
    for key, value in features.as_dict().items():
        print(f"{key:22s} {value}")
    print()
    print(DecisionTreeSelector().explain(features))
    return 0


def _render_timeline(samples, max_rows: int = 16) -> str:
    """ASCII bar timeline of active threads per recovery round."""
    from repro.analysis.tables import render_bars

    if not samples:
        return "(no recovery rounds)"
    if len(samples) > max_rows:
        # Downsample evenly, keeping first and last rounds.
        import numpy as np

        idx = np.linspace(0, len(samples) - 1, max_rows).astype(int)
        labels = [f"round {i}" for i in idx]
        values = [float(samples[i]) for i in idx]
    else:
        labels = [f"round {i}" for i in range(len(samples))]
        values = [float(s) for s in samples]
    return render_bars(labels, values, width=30, unit=" threads")


def cmd_run(args) -> int:
    from repro.engine import resolve_backend_name

    member, pal, data = _build(args)
    backend = resolve_backend_name(args.backend)
    result = pal.run(data, scheme=args.scheme)
    print(f"member   : {member.name} ({member.dfa.n_states} states)")
    print(f"scheme   : {result.scheme}")
    print(f"backend  : {backend}"
          + ("  (answer-only: cycle figures exclude execution)" if backend != "sim" else ""))
    print(f"accepts  : {result.accepts}")
    print(f"kernel   : {result.time_ms:.3f} ms ({result.cycles:.0f} cycles)")
    stats = result.stats
    print(f"accuracy : {stats.runtime_speculation_accuracy:.1%}")
    print(f"recovery : {stats.recovery_rounds} rounds, "
          f"{stats.avg_active_threads:.1f} avg active threads")
    print(f"memory   : {stats.hot_access_fraction:.1%} shared-memory hits")
    print("phases   :")
    for phase, cycles in sorted(stats.phase_cycles.items(), key=lambda kv: -kv[1]):
        print(f"  {phase:24s} {cycles:14.0f} cycles")
    if args.timeline:
        print("recovery-round activity:")
        print(_render_timeline(stats.active_thread_samples))
    return 0


def cmd_trace(args) -> int:
    from repro.observability import (
        MetricsRegistry,
        Tracer,
        render_metrics,
        render_timeline,
    )

    tracer = Tracer()
    metrics = MetricsRegistry()
    member, pal, data = _build(args, tracer=tracer, metrics=metrics)
    result = pal.run(data, scheme=args.scheme)
    print(f"member   : {member.name} ({member.dfa.n_states} states)")
    print(f"scheme   : {result.scheme}")
    print(f"accepts  : {result.accepts}")
    print(f"kernel   : {result.time_ms:.3f} ms ({result.cycles:.0f} cycles)")
    print()
    print(render_timeline(tracer, title=f"{member.name}: phase timeline"))
    print()
    print(render_metrics(metrics))
    if args.jsonl:
        from pathlib import Path

        path = Path(args.jsonl)
        path.write_text(tracer.to_jsonl())
        print(f"\nwrote {len(tracer.to_dicts())} spans to {path}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import build_report

    report = build_report()
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def cmd_compile(args) -> int:
    from repro.plan import compile_plan, save_plan
    from repro.plan.compile import COMPILE_STAGES

    member = build_member(args.suite, args.index)
    training = member.training_input(args.training_length)
    plan = compile_plan(
        member.dfa, training, GSpecPalConfig(n_threads=args.threads)
    )
    path = save_plan(plan, args.output)
    print(plan.summary())
    if args.stats:
        total = sum(plan.stage_timings_ms.values())
        print("\ncompile stages:")
        for name in COMPILE_STAGES:
            ms = plan.stage_timings_ms.get(name, 0.0)
            share = (ms / total * 100.0) if total > 0 else 0.0
            print(f"  {name:12s} {ms:9.3f} ms  ({share:5.1f}%)")
        print(f"  {'total':12s} {total:9.3f} ms")
        print(f"content fingerprint  : {plan.fingerprint}")
        print(f"canonical fingerprint: {plan.canonical_fingerprint}")
    print(f"\nwrote {path}")
    return 0


def cmd_fuzz(args) -> int:
    from repro.errors import SelfCheckError
    from repro.selfcheck.fuzz import replay, run_fuzz

    if args.replay:
        message = replay(args.replay)
        if message is None:
            print(f"repro {args.replay}: no longer fails")
            return 0
        print(f"repro {args.replay}: still fails\n  {message}")
        return 1
    try:
        path = run_fuzz(
            iterations=args.iterations,
            seed=args.seed,
            out_dir=args.out,
            schemes=tuple(args.schemes.split(",")),
            backends=tuple(args.backends.split(",")),
            log=print,
            probes=not args.no_probes,
        )
    except SelfCheckError as exc:
        print(f"FAIL: {exc}")
        return 1
    if path is not None:
        print(f"FAIL: shrunk repro at {path}")
        return 1
    print("PASS")
    return 0


def cmd_stress(args) -> int:
    from repro.serving.stress import run_stress

    report = run_stress(
        threads=args.threads,
        fingerprints=args.fingerprints,
        operations=args.ops,
        seed=args.seed,
        backend=args.backend,
        selfcheck=True if args.selfcheck else None,
        capacity=args.capacity,
        max_streams=args.max_streams,
        fused=args.fused,
        equivalent_mix=args.equivalent_mix,
        drift=args.drift,
        variants=args.variants,
        spill_dir=args.spill_dir,
        log=print,
    )
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.framework.config import GSpecPalConfig
    from repro.gateway import GatewayServer
    from repro.observability import MetricsRegistry
    from repro.serving.cache import PlanCache
    from repro.serving.pool import MatcherPool

    registry = MetricsRegistry()
    config = GSpecPalConfig(n_threads=args.threads)
    pool = MatcherPool(
        PlanCache(capacity=args.capacity, config=config, metrics=registry),
        config=config,
        backend=args.backend,
        max_streams=args.max_streams,
        open_timeout=args.open_timeout,
        fused=args.fused,
        metrics=registry,
    )
    server = GatewayServer(
        pool,
        host=args.host,
        port=args.port,
        metrics=registry,
        drain_timeout=args.drain_timeout,
        log=print,
    )

    async def serve() -> int:
        await server.start()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            stragglers = await server.stop()
            if stragglers:
                print(f"WARNING: {stragglers} revise threads outlived drain")
                return 1
        return 0

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        return 0


def cmd_scenario(args) -> int:
    from repro.scenarios import (
        BUILTIN_SCENARIOS,
        builtin_scenario,
        load_scenario,
        run_scenario,
    )

    if args.list:
        for name, doc in BUILTIN_SCENARIOS.items():
            print(f"{name:12s} {doc.get('label', '')}")
        return 0
    if args.scenario is None:
        print("error: a scenario name or file is required (or --list)")
        return 2
    if args.scenario in BUILTIN_SCENARIOS:
        scenario = builtin_scenario(args.scenario)
    else:
        scenario = load_scenario(args.scenario)
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        scenario = scenario.replace(**overrides)
    report = run_scenario(
        scenario,
        host=args.host,
        port=args.port,
        out_path=args.out,
        log=print,
    )
    return 0 if report.ok else 1


def cmd_compare(args) -> int:
    member, pal, data = _build(args)
    results = pal.compare_schemes(data)
    selected = pal.select_scheme()
    base = results["pm"].cycles
    rows = [
        [
            name + (" *" if name == selected else ""),
            res.cycles,
            res.time_ms,
            base / res.cycles,
            res.stats.recovery_rounds,
            res.stats.avg_active_threads,
        ]
        for name, res in sorted(results.items(), key=lambda kv: kv[1].cycles)
    ]
    print(
        render_table(
            ["scheme", "cycles", "ms", "speedup/pm", "rounds", "active"],
            rows,
            title=f"{member.name}: scheme comparison (* = selector's pick)",
        )
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("suite", help="list a suite's members")
    p.add_argument("suite", choices=SUITES)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("profile", help="profile a member and explain selection")
    p.add_argument("suite", choices=SUITES)
    p.add_argument("index", type=int)
    p.add_argument("--training-length", type=int, default=8_192)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("run", help="run one scheme on a member")
    _add_member_args(p)
    p.add_argument(
        "--scheme",
        choices=("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq"),
        default=None,
        help="force a scheme (default: selector's pick)",
    )
    p.add_argument(
        "--timeline",
        action="store_true",
        help="show per-recovery-round thread activity",
    )
    _add_plan_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "compile",
        help="compile a member's offline phase into a reusable plan artifact",
    )
    p.add_argument("suite", choices=SUITES)
    p.add_argument("index", type=int, help="member index 1..12")
    p.add_argument("--training-length", type=int, default=8_192)
    p.add_argument("--threads", type=int, default=256)
    p.add_argument(
        "-o",
        "--output",
        required=True,
        metavar="PATH",
        help="where to write the plan (.npz)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage compile timings and both plan fingerprints",
    )
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "trace", help="run a member with tracing and print the span timeline"
    )
    _add_member_args(p)
    p.add_argument(
        "--scheme",
        choices=("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq"),
        default=None,
        help="force a scheme (default: selector's pick)",
    )
    p.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also export the spans as JSON lines",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("report", help="assemble the experiment report")
    p.add_argument("--output", default=None, help="write to a file")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("compare", help="race all schemes on a member")
    _add_member_args(p)
    _add_plan_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing against the sequential oracle",
    )
    p.add_argument("--iterations", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out",
        default="fuzz-repros",
        help="directory shrunk failure repros are written to",
    )
    p.add_argument(
        "--schemes",
        default="pm,sre,rr,nf,sfa,spec-seq",
        help="comma-separated scheme pool",
    )
    p.add_argument(
        "--backends", default="sim,fast", help="comma-separated backend pool"
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="re-run one saved repro instead of fuzzing",
    )
    p.add_argument(
        "--no-probes",
        action="store_true",
        help="skip the deterministic contract probes",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "stress",
        help="multithreaded serving soak audited against the oracle",
    )
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--fingerprints", type=int, default=4)
    p.add_argument(
        "--ops",
        type=int,
        default=400,
        help="total operations (open/feed/close) split across the threads",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        choices=("sim", "fast"),
        default=None,
        help="execution backend for every matcher ($REPRO_BACKEND default)",
    )
    p.add_argument(
        "--selfcheck",
        action="store_true",
        help="force the runtime invariant audits on for every segment",
    )
    p.add_argument(
        "--capacity", type=int, default=None, help="plan-cache capacity"
    )
    p.add_argument(
        "--max-streams", type=int, default=None, help="pool admission bound"
    )
    p.add_argument(
        "--fused",
        action="store_true",
        help="gang-schedule same-fingerprint feeds into fused batches",
    )
    p.add_argument(
        "--equivalent-mix",
        action="store_true",
        help="tenants submit language-equivalent DFA variants; audits one "
        "compile (and one spill file) per language class",
    )
    p.add_argument(
        "--drift",
        action="store_true",
        help="two-phase traffic that collapses live speculation accuracy "
        "mid-run; audits the background revise + hot-swap path",
    )
    p.add_argument(
        "--variants",
        type=int,
        default=3,
        help="language-equivalent variants per class (equivalent mix only)",
    )
    p.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="plan-cache spill directory (audited in the equivalent mix)",
    )
    p.set_defaults(func=cmd_stress)

    p = sub.add_parser(
        "serve",
        help="run the TCP gateway over a shared serving pool",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7770, help="0 picks a free port"
    )
    p.add_argument(
        "--backend",
        choices=("sim", "fast"),
        default=None,
        help="execution backend for every matcher ($REPRO_BACKEND default)",
    )
    p.add_argument("--threads", type=int, default=8, help="lanes per matcher")
    p.add_argument("--max-streams", type=int, default=64)
    p.add_argument(
        "--open-timeout",
        type=float,
        default=None,
        help="seconds an open waits for a slot before a capacity reject "
        "(default: reject immediately)",
    )
    p.add_argument("--capacity", type=int, default=16, help="plan-cache size")
    p.add_argument(
        "--fused",
        action="store_true",
        help="gang-schedule same-fingerprint feeds into fused batches",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="shared deadline for background revise threads at shutdown",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "scenario",
        help="drive a seeded traffic scenario through the gateway",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="builtin name (see --list) or a YAML/JSON scenario file",
    )
    p.add_argument(
        "--list", action="store_true", help="list builtin scenarios"
    )
    p.add_argument(
        "--host",
        default=None,
        help="target an already-running gateway instead of an embedded one",
    )
    p.add_argument("--port", type=int, default=None)
    p.add_argument(
        "--backend",
        choices=("sim", "fast"),
        default=None,
        help="override the scenario's execution backend",
    )
    p.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="JSONL",
        help="write one JSON line per request",
    )
    p.set_defaults(func=cmd_scenario)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
