"""GSpecPal reproduction: speculation-centric FSM parallelization on a
simulated GPU.

Public API tour
---------------
* :mod:`repro.automata` — DFAs/NFAs, a regex compiler, minimization and the
  frequency-based DFA transformation.
* :mod:`repro.gpu` — the simulated SIMT device (warps, shared/global memory
  cost model) and the vectorized lockstep executor.
* :mod:`repro.speculation` — input chunking, the all-state lookback-2
  predictor and verification-record storage.
* :mod:`repro.schemes` — the parallelization schemes: PM, SRE, RR, NF, plus
  sequential/enumerative baselines.
* :mod:`repro.selector` — offline feature profiling, the Eq. 1–4 cost model
  and the Fig. 6 decision tree.
* :mod:`repro.framework` — the :class:`~repro.framework.GSpecPal` front end
  tying everything together.
* :mod:`repro.workloads` — synthetic Snort/ClamAV/PowerEN-style suites and
  trace generators standing in for ANMLZoo/AutomataZoo.

Quickstart
----------
>>> from repro import GSpecPal
>>> from repro.workloads import classic
>>> dfa = classic.div7()
>>> pal = GSpecPal(dfa)
>>> result = pal.run(b"10101" * 200)
>>> result.end_state == dfa.run(b"10101" * 200)
True
"""

from repro.automata import (
    DFA,
    NFA,
    compile_disjunction,
    compile_regex,
    frequency_transform,
    minimize_dfa,
)
from repro.framework import GSpecPal, GSpecPalConfig
from repro.gpu import RTX3090, DeviceSpec, GpuSimulator, KernelStats
from repro.plan import CompiledPlan, compile_plan, load_plan, save_plan
from repro.schemes import (
    NFScheme,
    PMScheme,
    RRScheme,
    SchemeResult,
    SequentialScheme,
    SpecSequentialScheme,
    SREScheme,
    get_scheme,
)
from repro.selector import DecisionTreeSelector, FSMFeatures, profile_features
from repro.serving import MatcherPool, PlanCache

__version__ = "1.0.0"

__all__ = [
    "CompiledPlan",
    "DFA",
    "NFA",
    "DecisionTreeSelector",
    "DeviceSpec",
    "FSMFeatures",
    "GSpecPal",
    "GSpecPalConfig",
    "GpuSimulator",
    "KernelStats",
    "MatcherPool",
    "PlanCache",
    "NFScheme",
    "PMScheme",
    "RRScheme",
    "RTX3090",
    "SREScheme",
    "SchemeResult",
    "SequentialScheme",
    "SpecSequentialScheme",
    "compile_disjunction",
    "compile_plan",
    "compile_regex",
    "frequency_transform",
    "get_scheme",
    "load_plan",
    "minimize_dfa",
    "profile_features",
    "save_plan",
]
