"""Deterministic multithreaded stress harness for the serving tier.

Drives ``M`` worker threads over ``K`` fingerprints with interleaved
open/feed/close traffic through one shared :class:`~repro.serving.PlanCache`
+ :class:`~repro.serving.MatcherPool`, then audits the outcome against a
sequential oracle:

* every closed stream's ``end_state``/``accepts`` must equal
  ``dfa.run(...)`` over the exact segments that stream was fed (each
  worker's schedule is derived from its own seeded RNG, so the per-stream
  byte sequence — and therefore the oracle — is independent of thread
  interleaving);
* the cache must have compiled **exactly once per distinct fingerprint**
  the run touched, however many threads raced the cold cache (workers
  start behind a barrier so the single-flight path is genuinely exercised);
* no stream summary may be lost or duplicated, and no unexpected exception
  may escape a worker.

The harness layers on :mod:`repro.selfcheck` rather than re-implementing
it: pass ``selfcheck=True`` (the CI job sets ``REPRO_SELFCHECK=1``) and
every segment of every stream additionally runs the full runtime invariant
audits — end-state oracle, chunk-end chain, ledger tiling — inside the
scheme layer itself.

Entry points: :func:`run_stress` (used by the soak tests), the
``repro stress`` CLI command, and ``scripts/stress_serving.py``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import DFA
from repro.framework.config import GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.serving.cache import PlanCache
from repro.serving.drift import DriftConfig
from repro.serving.pool import MatcherPool
from repro.workloads import classic


@dataclass
class StressReport:
    """Outcome of one :func:`run_stress` invocation."""

    threads: int
    fingerprints: int
    operations: int
    backend: str
    seed: int
    fused: bool = False
    equivalent_mix: bool = False
    drift: bool = False
    variants: int = 1
    elapsed_s: float = 0.0
    streams_opened: int = 0
    streams_closed: int = 0
    segments_fed: int = 0
    fused_dispatches: int = 0
    fused_streams: int = 0
    compiles: int = 0
    fingerprints_used: int = 0
    compile_waits: int = 0
    alias_hits: int = 0
    dedupes: int = 0
    spill_files: int = 0
    drift_triggers: int = 0
    drift_revises: int = 0
    drift_swaps: int = 0
    drift_revise_errors: int = 0
    scheme_switches: int = 0
    oracle_failures: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    pool_stats: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every audit held: correct oracle states, exactly one
        compile per touched fingerprint (per *language class* in the
        equivalent mix), no lost summaries, no errors.  Drift mode adds:
        no revise errors, and the drifting traffic actually provoked at
        least one background revise (revises go through
        :func:`~repro.plan.revise_plan`, never the compiler, so the
        one-compile-per-class audit still holds verbatim)."""
        return (
            not self.errors
            and not self.oracle_failures
            and self.compiles == self.fingerprints_used
            and self.streams_opened == self.streams_closed
            and self.drift_revise_errors == 0
            and (not self.drift or self.drift_revises >= 1)
        )

    def summary(self) -> str:
        lines = [
            f"serving stress: {self.threads} threads x "
            f"{self.fingerprints} fingerprints x {self.operations} ops "
            f"(backend={self.backend}, seed={self.seed}"
            + (", fused" if self.fused else "")
            + (", drift" if self.drift else "")
            + ")",
            f"  elapsed    : {self.elapsed_s:.2f}s",
            f"  streams    : {self.streams_opened} opened / "
            f"{self.streams_closed} closed",
            f"  segments   : {self.segments_fed} fed",
        ]
        if self.fused:
            lines.append(
                f"  fused      : {self.fused_dispatches} dispatches / "
                f"{self.fused_streams} gang-fed streams"
            )
        lines += [
            f"  compiles   : {self.compiles} "
            f"({'classes' if self.equivalent_mix else 'fingerprints'} "
            f"touched: {self.fingerprints_used}, "
            f"waits: {self.compile_waits})",
        ]
        if self.equivalent_mix:
            lines.append(
                f"  aliasing   : {self.variants} variants/class, "
                f"{self.alias_hits} alias hits / {self.dedupes} dedupes, "
                f"{self.spill_files} spill files"
            )
        if self.drift:
            lines.append(
                f"  drift      : {self.drift_triggers} triggers / "
                f"{self.drift_revises} revises / {self.drift_swaps} swaps "
                f"({self.scheme_switches} in-stream scheme switches, "
                f"{self.drift_revise_errors} revise errors)"
            )
        lines += [
            f"  oracle     : {len(self.oracle_failures)} mismatches",
            f"  errors     : {len(self.errors)}",
        ]
        for failure in self.oracle_failures[:5]:
            lines.append(f"    oracle! {failure}")
        for error in self.errors[:5]:
            lines.append(f"    error!  {error}")
        lines.append("  verdict    : " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def build_fleet(fingerprints: int) -> Tuple:
    """``fingerprints`` structurally distinct DFAs for the stress mix.

    Alternates keyword scanners (sticky accepts, realistic serving shape)
    with divisibility counters (dense, never-converging) so both friendly
    and adversarial automata sit behind one cache.
    """
    primes = (3, 5, 7, 11, 13, 17, 19, 23)
    fleet = []
    for i in range(fingerprints):
        if i % 2 == 0:
            fleet.append(classic.keyword_scanner(b"kw%d" % i + b"end"))
        else:
            fleet.append(classic.divisibility(primes[(i // 2) % len(primes)]))
    return tuple(fleet)


def _inflated_duplicate(
    dfa: DFA, rng: np.random.Generator, name: str
) -> DFA:
    """A language-equivalent DFA with one duplicated (redundant) state.

    Picks a state ``s``, appends a copy of its row as a fresh state ``d``
    (accepting iff ``s`` is) and reroutes a random subset of the
    transitions into ``s`` to ``d`` instead.  ``s`` and ``d`` are
    behaviourally identical, so the language is unchanged while both the
    state count and the content fingerprint differ.
    """
    n, k = dfa.n_states, dfa.n_symbols
    s = int(rng.integers(0, n))
    table = np.vstack([np.asarray(dfa.table), dfa.table[s : s + 1]])
    body = table[:n]
    reroute = (body == s) & (rng.random((n, k)) < 0.5)
    body[reroute] = n
    accepting = set(dfa.accepting)
    if s in accepting:
        accepting.add(n)
    return DFA(
        table=table, start=dfa.start, accepting=frozenset(accepting), name=name
    )


def build_variant_fleet(
    fingerprints: int, variants: int, seed: int
) -> Tuple[Tuple, Tuple]:
    """``(base_fleet, grid)`` where ``grid[i]`` holds ``variants``
    language-equivalent DFAs for class ``i``.

    Variant 0 is the :func:`build_fleet` automaton itself; the others
    alternate between random state relabellings and duplicate-state
    inflations, so every class mixes distinct content fingerprints over
    one canonical fingerprint.
    """
    base = build_fleet(fingerprints)
    rng = np.random.default_rng(seed * 104_729 + 11)
    grid = []
    for dfa in base:
        row = [dfa]
        for v in range(1, variants):
            if v % 2 == 1:
                perm = rng.permutation(dfa.n_states)
                row.append(dfa.renumbered(perm, name=f"{dfa.name}~relabel{v}"))
            else:
                row.append(
                    _inflated_duplicate(dfa, rng, name=f"{dfa.name}~inflate{v}")
                )
        grid.append(tuple(row))
    return base, tuple(grid)


def build_drift_fleet(fingerprints: int) -> Tuple:
    """``fingerprints`` distinct two-phase automata for the drift mix.

    Every class is a :func:`~repro.workloads.classic.drifting_phase`
    variant — calm traffic collapses into a tiny predictable cycle (PM
    territory), hot traffic scatters across the whole state space — with
    a different state count and a stride multiplier kept coprime so the
    hot permutation stays a permutation.
    """
    fleet = []
    for i in range(fingerprints):
        n_states = 128 + 16 * i
        multiplier = next(
            m for m in (5, 3, 7, 11, 13) if math.gcd(m, n_states) == 1
        )
        fleet.append(
            classic.drifting_phase(n_states=n_states, multiplier=multiplier)
        )
    return tuple(fleet)


def _random_segment(rng: np.random.Generator, max_len: int = 160) -> bytes:
    length = int(rng.integers(16, max_len + 1))
    return bytes(rng.integers(97, 123, size=length).astype(np.uint8))


def _drift_segment(rng: np.random.Generator, drifted: bool) -> bytes:
    """One drift-mode segment: pure calm or pure drifted-hot traffic.

    Long enough (vs :func:`_random_segment`) that each run verifies a few
    chunk boundaries, so the monitors accumulate accuracy evidence at a
    useful rate.
    """
    length = int(rng.integers(96, 193))
    return classic.drifting_phase_input(
        length,
        drift_at=0.0 if drifted else 1.0,
        seed=int(rng.integers(0, 2**31)),
    )


def run_stress(
    *,
    threads: int = 8,
    fingerprints: int = 4,
    operations: int = 400,
    seed: int = 0,
    backend: Optional[str] = None,
    selfcheck: Optional[bool] = None,
    capacity: Optional[int] = None,
    max_streams: Optional[int] = None,
    n_threads: int = 8,
    fused: bool = False,
    equivalent_mix: bool = False,
    drift: bool = False,
    drift_config: Optional[DriftConfig] = None,
    variants: int = 3,
    spill_dir: Optional[str] = None,
    log=None,
) -> StressReport:
    """Run the stress schedule and audit every outcome.

    Parameters
    ----------
    threads / fingerprints / operations:
        Worker count, distinct automata, and *total* operations (an open,
        feed or close each count as one), split evenly across workers.
    seed:
        Seeds every worker's schedule; same seed ⇒ same per-stream byte
        sequences and the same oracle, whatever the interleaving.
    backend / selfcheck:
        Runtime knobs forwarded to the pool's matchers (``selfcheck=None``
        defers to ``REPRO_SELFCHECK``).
    capacity / max_streams:
        Cache capacity (default: all fingerprints resident) and pool
        admission bound (default: roomy enough that the schedule is never
        rejected — rejection paths have their own dedicated tests).
    n_threads:
        Simulated GPU threads per segment run (kept small: the harness
        stresses the serving tier, not the simulator).
    fused:
        Gang-scheduling mode: the pool is built with ``fused=True`` and
        each worker, instead of feeding one stream at a time, batches a
        fresh segment for *every* stream it has open into one
        :meth:`~repro.serving.MatcherPool.feed_many` call — so fused
        dispatches race other workers' gang dispatches, opens and closes
        on the same fingerprints.  The oracle audit is unchanged: fused or
        not, every closed stream must match ``dfa.run`` over exactly the
        bytes it was fed.
    equivalent_mix:
        Language-equivalence dedupe mode: every open submits a randomly
        chosen *variant* of its class (``variants`` per class — the base
        automaton plus relabelled and duplicate-state-inflated
        equivalents, see :func:`build_variant_fleet`).  The cache audit
        then requires exactly one compile per *language class* (not per
        content fingerprint), and — with ``spill_dir`` set — exactly one
        spill file per class, named by its canonical fingerprint.  The
        oracle audits ``accepts`` (exact across a class) plus the
        symbol/segment accounting; ``end_state`` is skipped because it is
        reported in the first submitter's state numbering.
    drift:
        Online-adaptation mode: the fleet becomes two-phase
        :func:`build_drift_fleet` automata trained (and initially fed) on
        calm traffic, and every worker switches to drifted-hot segments
        for the second half of its operation budget.  The pool runs with
        drift detection enabled, so the live accuracy collapse must
        trigger background revises and segment-boundary hot-swaps *while*
        other workers keep feeding, opening and closing streams of the
        same classes.  All in-flight revises are drained before the
        audits; the oracle audit is unchanged (swaps must be invisible in
        the answers), and the report additionally requires at least one
        revise and zero revise errors.
    drift_config:
        Override the drift-mode :class:`~repro.serving.DriftConfig`
        (default: thresholds sized for the harness's short segments).
    variants:
        Language-equivalent variants per class in the equivalent mix.
    spill_dir:
        Optional plan-cache spill directory (audited in the equivalent
        mix: one ``<canonical_fingerprint>.npz`` per touched class).
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if fingerprints < 1:
        raise ValueError(f"fingerprints must be >= 1, got {fingerprints}")
    if equivalent_mix and variants < 2:
        raise ValueError(f"equivalent_mix needs variants >= 2, got {variants}")
    if drift and equivalent_mix:
        raise ValueError("drift mode and equivalent_mix are mutually exclusive")
    if equivalent_mix:
        dfas, variant_grid = build_variant_fleet(fingerprints, variants, seed)
    elif drift:
        dfas, variant_grid = build_drift_fleet(fingerprints), None
    else:
        dfas, variant_grid = build_fleet(fingerprints), None
    config = GSpecPalConfig(n_threads=n_threads)
    if drift:
        # Train on pure calm traffic so the compiled plans anchor to the
        # pre-drift distribution — the whole point is that live hot
        # traffic then contradicts those anchors.
        trainings = tuple(
            classic.drifting_phase_input(
                2048, drift_at=1.0, seed=seed * 31 + i
            )
            for i in range(fingerprints)
        )
    else:
        trainings = tuple(
            bytes(
                np.random.default_rng(seed * 31 + i)
                .integers(97, 123, size=1024)
                .astype(np.uint8)
            )
            for i in range(fingerprints)
        )
    metrics = MetricsRegistry()
    cache = PlanCache(
        capacity=capacity if capacity is not None else max(fingerprints, 2),
        config=config,
        directory=spill_dir,
        metrics=metrics,
    )
    # Per-worker stream cap of 4 ⇒ a max_streams default that can never
    # reject this schedule.
    local_cap = 4
    if drift and drift_config is None:
        # Sized for ~100-190 byte segments at n_threads simulated lanes:
        # a heavier newest-sample weight so a handful of collapsed
        # segments drags the EWMA through the threshold, two consecutive
        # breaches to fire, and a warm-up that a few calm segments per
        # class already satisfy.
        drift_config = DriftConfig(
            threshold=0.3, min_samples=32, ewma_alpha=0.5, hysteresis=2
        )
    pool = MatcherPool(
        cache,
        config=config,
        backend=backend,
        selfcheck=selfcheck,
        max_streams=max_streams if max_streams is not None else threads * local_cap,
        fused=fused,
        metrics=metrics,
        drift=drift_config if drift else None,
    )

    per_worker = max(1, operations // threads)
    barrier = threading.Barrier(threads)
    guard = threading.Lock()
    #: (StreamStats, dfa index, joined fed bytes, number of segments)
    closed_records: List[Tuple[object, int, bytes, int]] = []
    errors: List[str] = []
    used_indices: set = set()

    def worker(widx: int) -> None:
        rng = np.random.default_rng(seed * 7919 + widx + 1)
        open_streams: List[List] = []  # [sid, dfa_idx, [segments]]

        def do_open(didx: int) -> None:
            if variant_grid is not None:
                # Equivalent mix: submit a random variant of the class —
                # same language, different content fingerprint.
                submitted = variant_grid[didx][
                    int(rng.integers(0, len(variant_grid[didx])))
                ]
            else:
                submitted = dfas[didx]
            sid = pool.open(submitted, training_input=trainings[didx])
            open_streams.append([sid, didx, []])
            with guard:
                used_indices.add(didx)

        def do_close(slot: int) -> None:
            sid, didx, segments = open_streams.pop(slot)
            stats = pool.close(sid)
            with guard:
                closed_records.append(
                    (stats, didx, b"".join(segments), len(segments))
                )

        try:
            barrier.wait(timeout=60)
            # First open is pinned to fingerprint widx % K, so with
            # threads >= fingerprints every automaton races its cold
            # compile from several workers at the barrier.
            do_open(widx % fingerprints)
            for op in range(1, per_worker):
                # Drift mode: calm traffic for the first half of the
                # budget, drifted-hot for the second — every worker flips
                # at the same op count, so the whole fleet's distribution
                # shifts mid-run.
                if drift:
                    drifted = op >= per_worker // 2
                    segment_of = lambda: _drift_segment(rng, drifted)  # noqa: E731
                else:
                    segment_of = lambda: _random_segment(rng)  # noqa: E731
                roll = float(rng.random())
                if not open_streams or (
                    roll < 0.2 and len(open_streams) < local_cap
                ):
                    do_open(int(rng.integers(0, fingerprints)))
                elif roll < 0.85:
                    if fused and roll < 0.6:
                        # Gang feed: one fresh segment for every open
                        # stream, coalesced into a single feed_many call
                        # (same-fingerprint streams fuse into one batch).
                        feeds = [
                            (entry[0], segment_of())
                            for entry in open_streams
                        ]
                        outcomes = pool.feed_many(feeds)
                        for entry, (_, segment), outcome in zip(
                            open_streams, feeds, outcomes
                        ):
                            if not outcome.ok:
                                raise outcome.error
                            entry[2].append(segment)
                    else:
                        slot = int(rng.integers(0, len(open_streams)))
                        sid, _, segments = open_streams[slot]
                        segment = segment_of()
                        pool.feed(sid, segment)
                        segments.append(segment)
                else:
                    do_close(int(rng.integers(0, len(open_streams))))
            while open_streams:
                do_close(len(open_streams) - 1)
        except Exception as exc:  # noqa: BLE001 - harness collects everything
            with guard:
                errors.append(f"worker {widx}: {type(exc).__name__}: {exc}")

    started = perf_counter()
    pool_threads = [
        threading.Thread(target=worker, args=(w,), name=f"stress-{w}")
        for w in range(threads)
    ]
    for t in pool_threads:
        t.start()
    for t in pool_threads:
        t.join()
    # Let in-flight background revises land before auditing — the swaps
    # themselves raced live traffic; only the bookkeeping waits here.
    stragglers = pool.drain_revisions(timeout=60.0)
    if stragglers:
        errors.append(
            f"{stragglers} revise threads still running after the drain"
        )
    elapsed = perf_counter() - started

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    oracle_failures: List[str] = []
    seen_ids: set = set()
    total_segments = 0
    for stats, didx, fed, n_segments in closed_records:
        total_segments += n_segments
        if stats.stream_id in seen_ids:
            oracle_failures.append(
                f"duplicate summary for stream {stats.stream_id}"
            )
            continue
        seen_ids.add(stats.stream_id)
        dfa = dfas[didx]
        expected = int(dfa.run(fed))
        if not equivalent_mix and int(stats.end_state) != expected:
            # The end_state audit only holds when every tenant submits the
            # same automaton; aliased tenants get states in the first
            # submitter's numbering, so the equivalent mix audits accepts.
            oracle_failures.append(
                f"stream {stats.stream_id} (fsm {didx}): end_state "
                f"{stats.end_state} != oracle {expected}"
            )
        if bool(stats.accepts) != (expected in dfa.accepting):
            oracle_failures.append(
                f"stream {stats.stream_id} (fsm {didx}): accepts "
                f"{stats.accepts} != oracle {expected in dfa.accepting}"
            )
        if stats.total_symbols != len(fed):
            oracle_failures.append(
                f"stream {stats.stream_id}: total_symbols "
                f"{stats.total_symbols} != {len(fed)} fed"
            )
        if stats.segments != n_segments:
            oracle_failures.append(
                f"stream {stats.stream_id}: segments "
                f"{stats.segments} != {n_segments} fed"
            )

    pool_stats = pool.stats()
    if pool_stats["active_streams"]:
        errors.append(
            f"{pool_stats['active_streams']} streams leaked past the drain"
        )
    cache_stats = cache.stats()

    if equivalent_mix and spill_dir is not None:
        # Exactly one spill file per touched language class, named by the
        # class's canonical fingerprint.
        expected_spills = {
            dfas[didx].canonical_fingerprint() for didx in used_indices
        }
        actual_spills = {p.stem for p in cache.directory.glob("*.npz")}
        if actual_spills != expected_spills:
            errors.append(
                f"spill audit: {len(actual_spills)} files for "
                f"{len(expected_spills)} language classes "
                f"(unexpected: {sorted(actual_spills - expected_spills)[:3]}, "
                f"missing: {sorted(expected_spills - actual_spills)[:3]})"
            )
    from repro.engine import resolve_backend_name

    exported = metrics.as_dict()
    report = StressReport(
        threads=threads,
        fingerprints=fingerprints,
        operations=per_worker * threads,
        backend=resolve_backend_name(backend),
        seed=seed,
        fused=fused,
        equivalent_mix=equivalent_mix,
        drift=drift,
        variants=variants if equivalent_mix else 1,
        elapsed_s=elapsed,
        streams_opened=int(pool_stats["opened"]),
        streams_closed=len(seen_ids),
        segments_fed=total_segments,
        fused_dispatches=int(exported.get("serving.pool.fused_dispatches", 0)),
        fused_streams=int(exported.get("serving.pool.fused_streams", 0)),
        compiles=int(cache_stats["compiles"]),
        fingerprints_used=len(used_indices),
        compile_waits=int(cache_stats["compile_waits"]),
        alias_hits=int(cache_stats["alias_hits"]),
        dedupes=int(cache_stats["dedupes"]),
        spill_files=(
            len(tuple(cache.directory.glob("*.npz")))
            if cache.directory is not None
            else 0
        ),
        drift_triggers=int(exported.get("drift.triggers", 0)),
        drift_revises=int(exported.get("drift.revises", 0)),
        drift_swaps=int(exported.get("drift.swaps", 0)),
        drift_revise_errors=int(exported.get("drift.revise_errors", 0)),
        scheme_switches=sum(
            int(getattr(stats, "scheme_switches", 0))
            for stats, _, _, _ in closed_records
        ),
        oracle_failures=oracle_failures,
        errors=errors,
        pool_stats=pool_stats,
        metrics=exported,
    )
    if log is not None:
        log(report.summary())
    return report
