"""Deterministic multithreaded stress harness for the serving tier.

Drives ``M`` worker threads over ``K`` fingerprints with interleaved
open/feed/close traffic through one shared :class:`~repro.serving.PlanCache`
+ :class:`~repro.serving.MatcherPool`, then audits the outcome against a
sequential oracle:

* every closed stream's ``end_state``/``accepts`` must equal
  ``dfa.run(...)`` over the exact segments that stream was fed (each
  worker's schedule is derived from its own seeded RNG, so the per-stream
  byte sequence — and therefore the oracle — is independent of thread
  interleaving);
* the cache must have compiled **exactly once per distinct fingerprint**
  the run touched, however many threads raced the cold cache (workers
  start behind a barrier so the single-flight path is genuinely exercised);
* no stream summary may be lost or duplicated, and no unexpected exception
  may escape a worker.

The harness layers on :mod:`repro.selfcheck` rather than re-implementing
it: pass ``selfcheck=True`` (the CI job sets ``REPRO_SELFCHECK=1``) and
every segment of every stream additionally runs the full runtime invariant
audits — end-state oracle, chunk-end chain, ledger tiling — inside the
scheme layer itself.

Entry points: :func:`run_stress` (used by the soak tests), the
``repro stress`` CLI command, and ``scripts/stress_serving.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import DFA
from repro.framework.config import GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.serving.cache import PlanCache
from repro.serving.pool import MatcherPool
from repro.workloads import classic


@dataclass
class StressReport:
    """Outcome of one :func:`run_stress` invocation."""

    threads: int
    fingerprints: int
    operations: int
    backend: str
    seed: int
    fused: bool = False
    equivalent_mix: bool = False
    variants: int = 1
    elapsed_s: float = 0.0
    streams_opened: int = 0
    streams_closed: int = 0
    segments_fed: int = 0
    fused_dispatches: int = 0
    fused_streams: int = 0
    compiles: int = 0
    fingerprints_used: int = 0
    compile_waits: int = 0
    alias_hits: int = 0
    dedupes: int = 0
    spill_files: int = 0
    oracle_failures: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    pool_stats: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every audit held: correct oracle states, exactly one
        compile per touched fingerprint (per *language class* in the
        equivalent mix), no lost summaries, no errors."""
        return (
            not self.errors
            and not self.oracle_failures
            and self.compiles == self.fingerprints_used
            and self.streams_opened == self.streams_closed
        )

    def summary(self) -> str:
        lines = [
            f"serving stress: {self.threads} threads x "
            f"{self.fingerprints} fingerprints x {self.operations} ops "
            f"(backend={self.backend}, seed={self.seed}"
            + (", fused" if self.fused else "")
            + ")",
            f"  elapsed    : {self.elapsed_s:.2f}s",
            f"  streams    : {self.streams_opened} opened / "
            f"{self.streams_closed} closed",
            f"  segments   : {self.segments_fed} fed",
        ]
        if self.fused:
            lines.append(
                f"  fused      : {self.fused_dispatches} dispatches / "
                f"{self.fused_streams} gang-fed streams"
            )
        lines += [
            f"  compiles   : {self.compiles} "
            f"({'classes' if self.equivalent_mix else 'fingerprints'} "
            f"touched: {self.fingerprints_used}, "
            f"waits: {self.compile_waits})",
        ]
        if self.equivalent_mix:
            lines.append(
                f"  aliasing   : {self.variants} variants/class, "
                f"{self.alias_hits} alias hits / {self.dedupes} dedupes, "
                f"{self.spill_files} spill files"
            )
        lines += [
            f"  oracle     : {len(self.oracle_failures)} mismatches",
            f"  errors     : {len(self.errors)}",
        ]
        for failure in self.oracle_failures[:5]:
            lines.append(f"    oracle! {failure}")
        for error in self.errors[:5]:
            lines.append(f"    error!  {error}")
        lines.append("  verdict    : " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def build_fleet(fingerprints: int) -> Tuple:
    """``fingerprints`` structurally distinct DFAs for the stress mix.

    Alternates keyword scanners (sticky accepts, realistic serving shape)
    with divisibility counters (dense, never-converging) so both friendly
    and adversarial automata sit behind one cache.
    """
    primes = (3, 5, 7, 11, 13, 17, 19, 23)
    fleet = []
    for i in range(fingerprints):
        if i % 2 == 0:
            fleet.append(classic.keyword_scanner(b"kw%d" % i + b"end"))
        else:
            fleet.append(classic.divisibility(primes[(i // 2) % len(primes)]))
    return tuple(fleet)


def _inflated_duplicate(
    dfa: DFA, rng: np.random.Generator, name: str
) -> DFA:
    """A language-equivalent DFA with one duplicated (redundant) state.

    Picks a state ``s``, appends a copy of its row as a fresh state ``d``
    (accepting iff ``s`` is) and reroutes a random subset of the
    transitions into ``s`` to ``d`` instead.  ``s`` and ``d`` are
    behaviourally identical, so the language is unchanged while both the
    state count and the content fingerprint differ.
    """
    n, k = dfa.n_states, dfa.n_symbols
    s = int(rng.integers(0, n))
    table = np.vstack([np.asarray(dfa.table), dfa.table[s : s + 1]])
    body = table[:n]
    reroute = (body == s) & (rng.random((n, k)) < 0.5)
    body[reroute] = n
    accepting = set(dfa.accepting)
    if s in accepting:
        accepting.add(n)
    return DFA(
        table=table, start=dfa.start, accepting=frozenset(accepting), name=name
    )


def build_variant_fleet(
    fingerprints: int, variants: int, seed: int
) -> Tuple[Tuple, Tuple]:
    """``(base_fleet, grid)`` where ``grid[i]`` holds ``variants``
    language-equivalent DFAs for class ``i``.

    Variant 0 is the :func:`build_fleet` automaton itself; the others
    alternate between random state relabellings and duplicate-state
    inflations, so every class mixes distinct content fingerprints over
    one canonical fingerprint.
    """
    base = build_fleet(fingerprints)
    rng = np.random.default_rng(seed * 104_729 + 11)
    grid = []
    for dfa in base:
        row = [dfa]
        for v in range(1, variants):
            if v % 2 == 1:
                perm = rng.permutation(dfa.n_states)
                row.append(dfa.renumbered(perm, name=f"{dfa.name}~relabel{v}"))
            else:
                row.append(
                    _inflated_duplicate(dfa, rng, name=f"{dfa.name}~inflate{v}")
                )
        grid.append(tuple(row))
    return base, tuple(grid)


def _random_segment(rng: np.random.Generator, max_len: int = 160) -> bytes:
    length = int(rng.integers(16, max_len + 1))
    return bytes(rng.integers(97, 123, size=length).astype(np.uint8))


def run_stress(
    *,
    threads: int = 8,
    fingerprints: int = 4,
    operations: int = 400,
    seed: int = 0,
    backend: Optional[str] = None,
    selfcheck: Optional[bool] = None,
    capacity: Optional[int] = None,
    max_streams: Optional[int] = None,
    n_threads: int = 8,
    fused: bool = False,
    equivalent_mix: bool = False,
    variants: int = 3,
    spill_dir: Optional[str] = None,
    log=None,
) -> StressReport:
    """Run the stress schedule and audit every outcome.

    Parameters
    ----------
    threads / fingerprints / operations:
        Worker count, distinct automata, and *total* operations (an open,
        feed or close each count as one), split evenly across workers.
    seed:
        Seeds every worker's schedule; same seed ⇒ same per-stream byte
        sequences and the same oracle, whatever the interleaving.
    backend / selfcheck:
        Runtime knobs forwarded to the pool's matchers (``selfcheck=None``
        defers to ``REPRO_SELFCHECK``).
    capacity / max_streams:
        Cache capacity (default: all fingerprints resident) and pool
        admission bound (default: roomy enough that the schedule is never
        rejected — rejection paths have their own dedicated tests).
    n_threads:
        Simulated GPU threads per segment run (kept small: the harness
        stresses the serving tier, not the simulator).
    fused:
        Gang-scheduling mode: the pool is built with ``fused=True`` and
        each worker, instead of feeding one stream at a time, batches a
        fresh segment for *every* stream it has open into one
        :meth:`~repro.serving.MatcherPool.feed_many` call — so fused
        dispatches race other workers' gang dispatches, opens and closes
        on the same fingerprints.  The oracle audit is unchanged: fused or
        not, every closed stream must match ``dfa.run`` over exactly the
        bytes it was fed.
    equivalent_mix:
        Language-equivalence dedupe mode: every open submits a randomly
        chosen *variant* of its class (``variants`` per class — the base
        automaton plus relabelled and duplicate-state-inflated
        equivalents, see :func:`build_variant_fleet`).  The cache audit
        then requires exactly one compile per *language class* (not per
        content fingerprint), and — with ``spill_dir`` set — exactly one
        spill file per class, named by its canonical fingerprint.  The
        oracle audits ``accepts`` (exact across a class) plus the
        symbol/segment accounting; ``end_state`` is skipped because it is
        reported in the first submitter's state numbering.
    variants:
        Language-equivalent variants per class in the equivalent mix.
    spill_dir:
        Optional plan-cache spill directory (audited in the equivalent
        mix: one ``<canonical_fingerprint>.npz`` per touched class).
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if fingerprints < 1:
        raise ValueError(f"fingerprints must be >= 1, got {fingerprints}")
    if equivalent_mix and variants < 2:
        raise ValueError(f"equivalent_mix needs variants >= 2, got {variants}")
    if equivalent_mix:
        dfas, variant_grid = build_variant_fleet(fingerprints, variants, seed)
    else:
        dfas, variant_grid = build_fleet(fingerprints), None
    config = GSpecPalConfig(n_threads=n_threads)
    trainings = tuple(
        bytes(
            np.random.default_rng(seed * 31 + i)
            .integers(97, 123, size=1024)
            .astype(np.uint8)
        )
        for i in range(fingerprints)
    )
    metrics = MetricsRegistry()
    cache = PlanCache(
        capacity=capacity if capacity is not None else max(fingerprints, 2),
        config=config,
        directory=spill_dir,
        metrics=metrics,
    )
    # Per-worker stream cap of 4 ⇒ a max_streams default that can never
    # reject this schedule.
    local_cap = 4
    pool = MatcherPool(
        cache,
        config=config,
        backend=backend,
        selfcheck=selfcheck,
        max_streams=max_streams if max_streams is not None else threads * local_cap,
        fused=fused,
        metrics=metrics,
    )

    per_worker = max(1, operations // threads)
    barrier = threading.Barrier(threads)
    guard = threading.Lock()
    #: (StreamStats, dfa index, joined fed bytes, number of segments)
    closed_records: List[Tuple[object, int, bytes, int]] = []
    errors: List[str] = []
    used_indices: set = set()

    def worker(widx: int) -> None:
        rng = np.random.default_rng(seed * 7919 + widx + 1)
        open_streams: List[List] = []  # [sid, dfa_idx, [segments]]

        def do_open(didx: int) -> None:
            if variant_grid is not None:
                # Equivalent mix: submit a random variant of the class —
                # same language, different content fingerprint.
                submitted = variant_grid[didx][
                    int(rng.integers(0, len(variant_grid[didx])))
                ]
            else:
                submitted = dfas[didx]
            sid = pool.open(submitted, training_input=trainings[didx])
            open_streams.append([sid, didx, []])
            with guard:
                used_indices.add(didx)

        def do_close(slot: int) -> None:
            sid, didx, segments = open_streams.pop(slot)
            stats = pool.close(sid)
            with guard:
                closed_records.append(
                    (stats, didx, b"".join(segments), len(segments))
                )

        try:
            barrier.wait(timeout=60)
            # First open is pinned to fingerprint widx % K, so with
            # threads >= fingerprints every automaton races its cold
            # compile from several workers at the barrier.
            do_open(widx % fingerprints)
            for _ in range(per_worker - 1):
                roll = float(rng.random())
                if not open_streams or (
                    roll < 0.2 and len(open_streams) < local_cap
                ):
                    do_open(int(rng.integers(0, fingerprints)))
                elif roll < 0.85:
                    if fused and roll < 0.6:
                        # Gang feed: one fresh segment for every open
                        # stream, coalesced into a single feed_many call
                        # (same-fingerprint streams fuse into one batch).
                        feeds = [
                            (entry[0], _random_segment(rng))
                            for entry in open_streams
                        ]
                        outcomes = pool.feed_many(feeds)
                        for entry, (_, segment), outcome in zip(
                            open_streams, feeds, outcomes
                        ):
                            if not outcome.ok:
                                raise outcome.error
                            entry[2].append(segment)
                    else:
                        slot = int(rng.integers(0, len(open_streams)))
                        sid, _, segments = open_streams[slot]
                        segment = _random_segment(rng)
                        pool.feed(sid, segment)
                        segments.append(segment)
                else:
                    do_close(int(rng.integers(0, len(open_streams))))
            while open_streams:
                do_close(len(open_streams) - 1)
        except Exception as exc:  # noqa: BLE001 - harness collects everything
            with guard:
                errors.append(f"worker {widx}: {type(exc).__name__}: {exc}")

    started = perf_counter()
    pool_threads = [
        threading.Thread(target=worker, args=(w,), name=f"stress-{w}")
        for w in range(threads)
    ]
    for t in pool_threads:
        t.start()
    for t in pool_threads:
        t.join()
    elapsed = perf_counter() - started

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    oracle_failures: List[str] = []
    seen_ids: set = set()
    total_segments = 0
    for stats, didx, fed, n_segments in closed_records:
        total_segments += n_segments
        if stats.stream_id in seen_ids:
            oracle_failures.append(
                f"duplicate summary for stream {stats.stream_id}"
            )
            continue
        seen_ids.add(stats.stream_id)
        dfa = dfas[didx]
        expected = int(dfa.run(fed))
        if not equivalent_mix and int(stats.end_state) != expected:
            # The end_state audit only holds when every tenant submits the
            # same automaton; aliased tenants get states in the first
            # submitter's numbering, so the equivalent mix audits accepts.
            oracle_failures.append(
                f"stream {stats.stream_id} (fsm {didx}): end_state "
                f"{stats.end_state} != oracle {expected}"
            )
        if bool(stats.accepts) != (expected in dfa.accepting):
            oracle_failures.append(
                f"stream {stats.stream_id} (fsm {didx}): accepts "
                f"{stats.accepts} != oracle {expected in dfa.accepting}"
            )
        if stats.total_symbols != len(fed):
            oracle_failures.append(
                f"stream {stats.stream_id}: total_symbols "
                f"{stats.total_symbols} != {len(fed)} fed"
            )
        if stats.segments != n_segments:
            oracle_failures.append(
                f"stream {stats.stream_id}: segments "
                f"{stats.segments} != {n_segments} fed"
            )

    pool_stats = pool.stats()
    if pool_stats["active_streams"]:
        errors.append(
            f"{pool_stats['active_streams']} streams leaked past the drain"
        )
    cache_stats = cache.stats()

    if equivalent_mix and spill_dir is not None:
        # Exactly one spill file per touched language class, named by the
        # class's canonical fingerprint.
        expected_spills = {
            dfas[didx].canonical_fingerprint() for didx in used_indices
        }
        actual_spills = {p.stem for p in cache.directory.glob("*.npz")}
        if actual_spills != expected_spills:
            errors.append(
                f"spill audit: {len(actual_spills)} files for "
                f"{len(expected_spills)} language classes "
                f"(unexpected: {sorted(actual_spills - expected_spills)[:3]}, "
                f"missing: {sorted(expected_spills - actual_spills)[:3]})"
            )
    from repro.engine import resolve_backend_name

    exported = metrics.as_dict()
    report = StressReport(
        threads=threads,
        fingerprints=fingerprints,
        operations=per_worker * threads,
        backend=resolve_backend_name(backend),
        seed=seed,
        fused=fused,
        equivalent_mix=equivalent_mix,
        variants=variants if equivalent_mix else 1,
        elapsed_s=elapsed,
        streams_opened=int(pool_stats["opened"]),
        streams_closed=len(seen_ids),
        segments_fed=total_segments,
        fused_dispatches=int(exported.get("serving.pool.fused_dispatches", 0)),
        fused_streams=int(exported.get("serving.pool.fused_streams", 0)),
        compiles=int(cache_stats["compiles"]),
        fingerprints_used=len(used_indices),
        compile_waits=int(cache_stats["compile_waits"]),
        alias_hits=int(cache_stats["alias_hits"]),
        dedupes=int(cache_stats["dedupes"]),
        spill_files=(
            len(tuple(cache.directory.glob("*.npz")))
            if cache.directory is not None
            else 0
        ),
        oracle_failures=oracle_failures,
        errors=errors,
        pool_stats=pool_stats,
        metrics=exported,
    )
    if log is not None:
        log(report.summary())
    return report
