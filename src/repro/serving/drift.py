"""Drift detection: live speculation accuracy vs the plan's profiled anchors.

A :class:`~repro.plan.CompiledPlan` bakes offline-profiled speculation
accuracy into an immutable selection, but accuracy is a property of the
*input distribution* — when production traffic drifts, a plan that chose
PM/SRE degrades toward its sequential worst case while the pinned plan
never notices.  :class:`DriftMonitor` watches the live evidence every
scheme run already produces (:class:`~repro.speculation.observations.
LiveObservations`) and fires when the live accuracy diverges from the
plan's anchor by more than a configurable margin.

Design points:

* **EWMA + hysteresis, so it can't flap.**  Per-segment accuracy is a
  noisy few-boundary sample; the monitor smooths it with an exponentially
  weighted moving average, refuses to judge before ``min_samples``
  verified boundaries have accumulated, and only fires after
  ``hysteresis`` *consecutive* breaching observations.  A borderline
  stream oscillating around the threshold resets the breach run and never
  fires.
* **Fires once.**  ``observe`` latches after the first trigger; the pool
  runs a single background revise and re-arms the monitor against the
  revised plan's anchors.  A monitor re-armed onto a misprediction-free
  scheme (sfa/seq) goes dormant — those runs carry no boundary samples,
  so there is no accuracy signal left to diverge.
* **Not thread-safe by itself.**  :class:`~repro.serving.MatcherPool`
  calls ``observe``/``snapshot``/``rearm`` under the pool lock, exactly
  like the rest of the serving metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ServingError
from repro.speculation.observations import LiveObservations


@dataclass(frozen=True)
class DriftConfig:
    """Tunables of the serving tier's drift detection.

    Attributes
    ----------
    threshold:
        Minimum divergence (anchor accuracy − live EWMA) that counts as a
        breach.
    min_samples:
        Verified chunk boundaries that must accumulate since the last
        (re-)arm before the monitor may judge at all.
    ewma_alpha:
        Weight of the newest per-observation accuracy sample in the EWMA.
    hysteresis:
        Consecutive breaching observations required to fire.
    synchronous:
        Run the revise inline inside the feeding thread instead of a
        background worker.  Deterministic — meant for tests and
        benchmarks; production pools keep the default background mode.
    """

    threshold: float = 0.3
    min_samples: int = 64
    ewma_alpha: float = 0.3
    hysteresis: int = 3
    synchronous: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.threshold <= 1.0):
            raise ServingError(
                f"drift threshold must be in (0, 1], got {self.threshold}",
                code="drift-config",
            )
        if self.min_samples < 1:
            raise ServingError(
                f"drift min_samples must be >= 1, got {self.min_samples}",
                code="drift-config",
            )
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ServingError(
                f"drift ewma_alpha must be in (0, 1], got {self.ewma_alpha}",
                code="drift-config",
            )
        if self.hysteresis < 1:
            raise ServingError(
                f"drift hysteresis must be >= 1, got {self.hysteresis}",
                code="drift-config",
            )


#: Schemes that verify no chunk boundaries — a monitor anchored to one of
#: these never receives accuracy evidence and stays dormant.
_SAMPLE_FREE_SCHEMES = ("sfa", "seq")


class DriftMonitor:
    """Per-language-class drift detector (one per pool matcher).

    The anchor is the plan's profiled accuracy at the depth live traffic
    actually verifies: spec-k for PM plans, spec-1 for the other
    speculative schemes.  ``observe`` folds one run's evidence in and
    returns ``True`` exactly once — when a sustained collapse crosses the
    configured threshold.
    """

    def __init__(self, plan, config: DriftConfig):
        self.config = config
        self.fired = False
        self._ewma: Optional[float] = None
        self._breaches = 0
        self._aggregate = LiveObservations()
        #: evidence gathered during the current consecutive-breach run —
        #: what the revise is computed from.  A lifetime aggregate would
        #: dilute the post-drift signal with pre-drift evidence (the calm
        #: phase's hits would drag the revised features back toward the
        #: stale anchors); the breach window holds only the traffic that
        #: made the monitor fire.
        self._window = LiveObservations()
        self._post_fire_segments = 0
        self._anchor_to(plan)

    # ------------------------------------------------------------------
    def _anchor_to(self, plan) -> None:
        self._scheme = plan.scheme
        if plan.scheme.startswith("pm"):
            k = int(plan.config.get("spec_k", 4))
        else:
            k = 1
        self._spec_k = k
        self._anchor = float(plan.features.anchor_accuracy(k))

    @property
    def anchor(self) -> float:
        """The profiled accuracy the live EWMA is compared against."""
        return self._anchor

    @property
    def dormant(self) -> bool:
        """True when the anchored scheme produces no accuracy evidence."""
        return self._scheme in _SAMPLE_FREE_SCHEMES

    @property
    def samples(self) -> int:
        """Verified boundaries accumulated since the last (re-)arm."""
        return self._aggregate.boundary_samples

    @property
    def divergence(self) -> float:
        """Current anchor − EWMA gap (0 before any accuracy evidence)."""
        if self._ewma is None:
            return 0.0
        return max(0.0, self._anchor - self._ewma)

    # ------------------------------------------------------------------
    def observe(self, observations: LiveObservations) -> bool:
        """Fold one run's evidence in; ``True`` when the revise should fire.

        Called under the pool lock.  Sample-free observations (fused
        stashes, sfa/seq runs) still aggregate into the traffic sketch but
        never move the EWMA or the breach counter.
        """
        if observations is None:
            return False
        self._aggregate.absorb(observations)
        if self.fired:
            self._post_fire_segments += observations.segments
            return False
        batch = observations.boundary_samples
        if batch == 0:
            return False
        accuracy = observations.spec_accuracy
        if self._ewma is None:
            self._ewma = accuracy
        else:
            a = self.config.ewma_alpha
            self._ewma = a * accuracy + (1.0 - a) * self._ewma
        if self.divergence > self.config.threshold:
            self._breaches += 1
            self._window.absorb(observations)
        else:
            self._breaches = 0
            self._window = LiveObservations()
        if self.samples < self.config.min_samples:
            return False
        if self._breaches >= self.config.hysteresis:
            self.fired = True
            return True
        return False

    def snapshot(self) -> LiveObservations:
        """The evidence to revise from: the current breach window.

        Falls back to the lifetime aggregate when the window is empty
        (only possible if a caller snapshots an unfired monitor).
        """
        if self._window.boundary_samples:
            return self._window.copy()
        return self._aggregate.copy()

    def rearm(self, plan) -> int:
        """Re-anchor against a freshly revised plan; reset all state.

        Returns the number of segments observed between the trigger and
        this re-arm — the observation lag the ``drift.observation_lag_segments``
        histogram records (0 under ``synchronous`` revises).
        """
        lag = self._post_fire_segments
        self.fired = False
        self._ewma = None
        self._breaches = 0
        self._aggregate = LiveObservations()
        self._window = LiveObservations()
        self._post_fire_segments = 0
        self._anchor_to(plan)
        return lag
