"""Serve-many: plan caching and multi-tenant stream pooling.

The online half of the compile-once / serve-many split (see
:mod:`repro.plan` for the offline half): :class:`PlanCache` is a
fingerprint-keyed LRU guaranteeing at most one compile per automaton, and
:class:`MatcherPool` multiplexes many concurrent stream sessions over the
cached plans with zero profiling on the serving path.
"""

from repro.serving.cache import PlanCache
from repro.serving.pool import MatcherPool, StreamStats

__all__ = ["MatcherPool", "PlanCache", "StreamStats"]
