"""Serve-many: plan caching and multi-tenant stream pooling.

The online half of the compile-once / serve-many split (see
:mod:`repro.plan` for the offline half): :class:`PlanCache` is a
fingerprint-keyed LRU with single-flight compiles (at most one compile per
automaton, never blocking other fingerprints), and :class:`MatcherPool`
multiplexes many concurrent stream sessions over the cached plans with
per-stream locking, admission control, and zero profiling on the serving
path.  :mod:`repro.serving.stress` is the deterministic multithreaded soak
harness auditing the whole tier against the sequential oracle
(``repro stress`` / ``scripts/stress_serving.py``).
"""

from repro.serving.cache import PlanCache
from repro.serving.drift import DriftConfig, DriftMonitor
from repro.serving.pool import FeedOutcome, MatcherPool, StreamStats
from repro.serving.stress import StressReport, run_stress

__all__ = [
    "DriftConfig",
    "DriftMonitor",
    "FeedOutcome",
    "MatcherPool",
    "PlanCache",
    "StreamStats",
    "StressReport",
    "run_stress",
]
