"""Multi-tenant serving: many concurrent streams over cached plans.

:class:`MatcherPool` is the serve-many half of the compile-once split.  It
keeps one plan-backed :class:`~repro.framework.GSpecPal` matcher per
*language class* — keyed by the plan's canonical fingerprint, so tenants
submitting language-equivalent DFAs share one warmed matcher (built via
``GSpecPal.from_plan`` — zero profiling on the serving path) — and
multiplexes any number of concurrent
:class:`~repro.framework.gspecpal.StreamSession`\\ s over those matchers.
Plans come from a shared :class:`~repro.serving.PlanCache`, so N tenants
matching the same (or an equivalent) automaton cost one compile, one
simulator, and one scheme instance per stream — nothing else.

Concurrency contract (see ``docs/architecture.md``): every public method is
thread-safe.  The pool lock only guards bookkeeping; each stream carries
its own lock making :meth:`MatcherPool.feed` and :meth:`MatcherPool.close`
mutually exclusive *per stream id* — concurrent feeds to different streams
run in parallel, while a feed racing a close of the same stream gets a
structured :class:`~repro.errors.ServingError` (``code="stream_closed"``)
instead of running on a released session.  Admission control rejects opens
beyond ``max_streams`` with a retryable ``code="capacity"`` error, or —
with ``open_timeout`` set — waits boundedly for a slot.

Typical serving loop::

    pool = MatcherPool(PlanCache(capacity=8))
    sid = pool.open(dfa, training_input=train)   # compile-or-hit
    ...
    pool.feed(sid, segment)                      # any interleaving of sids
    ...
    stats = pool.close(sid)                      # final stream summary
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import _as_symbol_array
from repro.errors import ServingError
from repro.framework.gspecpal import GSpecPal, StreamSession
from repro.schemes import SchemeResult
from repro.serving.cache import PlanCache
from repro.serving.drift import DriftConfig, DriftMonitor
from repro.speculation.observations import LiveObservations


@dataclass(frozen=True)
class StreamStats:
    """Summary returned by :meth:`MatcherPool.close`.

    ``fingerprint`` is the content fingerprint of the plan the stream was
    opened with; ``canonical_fingerprint`` identifies its language class
    (shared across aliased tenants served by one matcher).
    ``scheme_switches`` counts segment-boundary scheme changes over the
    stream's lifetime (drift hot-swaps land here), and ``decision_path``
    is the Fig. 6 node path behind the selection the stream last served
    (``("forced",)`` when a scheme was forced at open) — together they let
    close-time audits assert when and why a stream was swapped.
    """

    stream_id: int
    fingerprint: str
    scheme: str
    segments: int
    total_symbols: int
    total_cycles: float
    end_state: int
    accepts: bool
    canonical_fingerprint: str = ""
    scheme_switches: int = 0
    decision_path: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FeedOutcome:
    """Per-feed result of one :meth:`MatcherPool.feed_many` call.

    A gang dispatch must not let one closed stream poison its batchmates,
    so instead of raising, ``feed_many`` reports every feed individually:
    ``ok`` feeds carry the stream's new carried state, failed feeds carry
    the structured :class:`~repro.errors.ServingError` a lone :meth:`feed`
    would have raised (``unknown_stream`` / ``stream_closed``).

    Attributes
    ----------
    stream_id / ok:
        The feed's target and whether it was applied.
    end_state / accepts:
        Carried state after the segment (``None`` on failure).
    symbols:
        Symbols advanced by this feed (0 on failure).
    fused:
        True when the segment ran inside a fused cross-stream dispatch;
        False when it fell back to the per-stream scheme path (pool not in
        fused mode, or the batch too narrow to gang).
    error:
        The structured error for a failed feed, ``None`` otherwise.
    """

    stream_id: int
    ok: bool
    end_state: Optional[int] = None
    accepts: Optional[bool] = None
    symbols: int = 0
    fused: bool = False
    error: Optional[ServingError] = None


class _StreamEntry:
    """Pool-side record of one open stream.

    ``lock`` serializes feed/close on this stream only; ``closed`` flips
    exactly once, under the lock, so a feed that raced the close observes
    it instead of touching the released session.
    """

    __slots__ = ("session", "fingerprint", "canonical", "lock", "closed")

    def __init__(self, session: StreamSession, fingerprint: str, canonical: str):
        self.session = session
        #: content fingerprint of the plan this stream was opened with.
        self.fingerprint = fingerprint
        #: canonical fingerprint — the pool's matcher/gang-scheduling key.
        self.canonical = canonical
        self.lock = threading.Lock()
        self.closed = False


class MatcherPool:
    """Serve many concurrent streams over plan-cached matchers.

    Parameters
    ----------
    cache:
        Shared :class:`PlanCache`; a private default-capacity one is
        created when omitted.  A pool-level ``metrics`` registry is
        adopted by a metrics-less cache so serving counters land in one
        place.
    config:
        Default compile-time configuration for plans the pool must compile.
    backend / selfcheck:
        Runtime knobs applied to every matcher built from a plan.
    max_streams:
        Upper bound on concurrently open streams (admission control).
    fused:
        Opt into gang scheduling: :meth:`feed_many` coalesces pending
        feeds that share a fingerprint into one fused
        ``(streams × lanes)`` dispatch (see
        :class:`~repro.engine.fused.FusedBatchEngine`) instead of N
        per-stream scheme runs.  Off by default — fused streams report
        ``total_cycles = NaN`` (answer-only execution), so cycle-accounting
        consumers should stay per-stream.
    fused_min_streams:
        Narrowest batch worth fusing; same-fingerprint groups below this
        width fall back to the per-stream path (counted by
        ``serving.pool.fused_fallbacks``).
    open_timeout:
        Seconds :meth:`open` may block waiting for a slot when the pool is
        at capacity (``None`` — the default — rejects immediately).  Both
        paths raise a retryable ``ServingError(code="capacity")`` when no
        slot frees up.
    drift:
        Opt into online adaptation: a :class:`~repro.serving.DriftConfig`
        attaches one :class:`~repro.serving.DriftMonitor` per matcher.
        Every feed's :class:`LiveObservations` are aggregated under the
        pool lock; when live speculation accuracy diverges from the plan's
        profiled anchors past the configured threshold, the pool runs one
        single-flight ``revise_plan`` (in a background thread, or inline
        with ``synchronous=True``), installs the revision into the cache
        and the matcher, and open sessions pick up the new scheme at their
        next segment boundary.  Off (``None``) by default.
    tracer / metrics:
        Observability sinks.  Serving metrics (``serving.pool.*``) are
        recorded under the pool's locks and are exact under concurrency; a
        shared :class:`~repro.observability.Tracer` span stack is *not*
        thread-safe, so attach a tracer only for single-threaded serving.
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        *,
        config=None,
        backend: Optional[str] = None,
        selfcheck: Optional[bool] = None,
        max_streams: int = 64,
        fused: bool = False,
        fused_min_streams: int = 2,
        open_timeout: Optional[float] = None,
        drift: Optional[DriftConfig] = None,
        tracer=None,
        metrics=None,
    ):
        if max_streams < 1:
            raise ServingError(
                f"max_streams must be >= 1, got {max_streams}",
                code="invalid_argument",
            )
        if fused_min_streams < 1:
            raise ServingError(
                f"fused_min_streams must be >= 1, got {fused_min_streams}",
                code="invalid_argument",
            )
        self.cache = (
            cache
            if cache is not None
            else PlanCache(config=config, metrics=metrics, tracer=tracer)
        )
        self.config = config
        self.backend = backend
        self.selfcheck = selfcheck
        self.max_streams = int(max_streams)
        self.fused = bool(fused)
        self.fused_min_streams = int(fused_min_streams)
        self.open_timeout = open_timeout
        self.tracer = tracer
        self.metrics = metrics
        if metrics is not None and self.cache.metrics is None:
            self.cache.metrics = metrics
        self.drift = drift
        self._matchers: Dict[str, GSpecPal] = {}
        self._entries: Dict[int, _StreamEntry] = {}
        #: one drift monitor per matcher (canonical fingerprint), only
        #: when drift detection is enabled.
        self._monitors: Dict[str, DriftMonitor] = {}
        #: canonical fingerprints with a revise in flight (single-flight
        #: guard) → the worker thread, or None while launching/inline.
        self._revising: Dict[str, Optional[threading.Thread]] = {}
        self._next_id = 0
        self._opened = 0
        self._closed = 0
        self._rejected = 0
        #: admission slots reserved by opens that are still compiling —
        #: they count against ``max_streams`` but have no entry yet.
        self._reserved = 0
        self._lock = threading.RLock()
        #: signalled whenever a close (or an abandoned reservation) frees
        #: a stream slot.
        self._slot_freed = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # metrics plumbing (call with self._lock held — instruments are not
    # thread-safe on their own)
    # ------------------------------------------------------------------
    def _metric_inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _metric_inc_by(self, name: str, amount: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _metric_observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _metric_active(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serving.pool.active").set(len(self._entries))

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Number of currently open streams."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "active_streams": len(self._entries),
                "opened": self._opened,
                "closed": self._closed,
                "rejected": self._rejected,
                "reserved": self._reserved,
                "matchers": len(self._matchers),
                "revising": len(self._revising),
                "cache": self.cache.stats(),
            }

    # ------------------------------------------------------------------
    def _matcher_for(self, plan) -> GSpecPal:
        matcher = self._matchers.get(plan.canonical_fingerprint)
        # A plan reloaded from disk is a different *object* but the same
        # artifact, and a language-equivalent plan is a different artifact
        # serving the same class; rebuilding the matcher (and discarding
        # its warmed simulator) is only warranted when the compiled
        # language class or compile-config hash actually differs.
        if (
            matcher is None
            or matcher.plan.canonical_fingerprint != plan.canonical_fingerprint
            or matcher.plan.config_hash != plan.config_hash
        ):
            matcher = GSpecPal.from_plan(
                plan,
                backend=self.backend,
                selfcheck=self.selfcheck,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            self._matchers[plan.canonical_fingerprint] = matcher
            if self.drift is not None:
                # Anchor (or re-anchor) the class's drift monitor to the
                # plan this fresh matcher serves.
                self._monitors[plan.canonical_fingerprint] = DriftMonitor(
                    matcher.plan, self.drift
                )
        elif self.drift is not None and plan.canonical_fingerprint not in self._monitors:
            self._monitors[plan.canonical_fingerprint] = DriftMonitor(
                matcher.plan, self.drift
            )
        return matcher

    def _spec_k(self, plan=None) -> int:
        """spec_k governing the ``pm-spec<k>`` alias for open-time scheme
        validation: pool config when set, else the plan's compile config,
        else the framework default (``matcher.stream`` re-validates with
        the authoritative config either way)."""
        if self.config is not None:
            return self.config.spec_k
        if plan is not None:
            return int(plan.config["spec_k"])
        from repro.framework.config import GSpecPalConfig

        return GSpecPalConfig().spec_k

    def open(
        self,
        dfa=None,
        *,
        training_input=None,
        plan=None,
        scheme: Optional[str] = None,
    ) -> int:
        """Open a stream; returns its id for :meth:`feed`/:meth:`close`.

        Pass either a precompiled ``plan`` or a ``dfa`` (with
        ``training_input`` if its plan may not be cached yet).  ``scheme``
        forces a scheme for this stream; it is validated against
        ``GSpecPal.KNOWN_SCHEMES`` *before* any compile work, so a typo
        fails immediately instead of after paying a cold compile.  By
        default every segment uses the plan's compiled selection.

        At capacity, the call raises a retryable
        ``ServingError(code="capacity")`` — or, when ``open_timeout`` is
        set, waits up to that many seconds for another stream to close
        before rejecting.  Admission runs *before* any compile work: a
        rejected open costs the caller nothing (rejections must be cheap
        — they are the wire-level backpressure signal), and the compile
        itself runs outside the pool lock against a reserved slot that is
        released if the compile fails.
        """
        GSpecPal.validate_scheme_name(scheme, spec_k=self._spec_k(plan))
        if plan is None and dfa is None:
            raise ServingError(
                "open() needs a dfa or a precompiled plan",
                code="invalid_argument",
            )
        # Admission first: reserve a slot (bounded wait with open_timeout)
        # before paying for a compile, so a tenant rejected at capacity
        # never burns a cold compile on a stream it cannot open.
        self._reserve_slot(plan.fingerprint if plan is not None else None)
        try:
            if plan is None:
                plan = self.cache.get_or_compile(
                    dfa, training_input, self.config
                )
            else:
                self.cache.put(plan)
        except BaseException:
            self._release_slot()
            raise
        with self._slot_freed:
            try:
                matcher = self._matcher_for(plan)
                session = matcher.stream(scheme=scheme)
            except BaseException:
                self._reserved -= 1
                self._slot_freed.notify()
                raise
            # Convert the reservation into the entry (net slot count is
            # unchanged, so no waiter is woken).
            self._reserved -= 1
            stream_id = self._next_id
            self._next_id += 1
            self._opened += 1
            self._entries[stream_id] = _StreamEntry(
                session, plan.fingerprint, plan.canonical_fingerprint
            )
            self._metric_inc("serving.pool.opened")
            self._metric_active()
            return stream_id

    def _reserve_slot(self, fingerprint: Optional[str] = None) -> None:
        """Claim one admission slot or raise the retryable capacity error.

        Reserved slots count against ``max_streams`` alongside live
        entries, so concurrent opens cannot over-admit while their
        compiles are in flight.  ``fingerprint`` only annotates the error
        (it is known when the caller brought a precompiled plan).
        """
        with self._slot_freed:
            deadline = None
            while len(self._entries) + self._reserved >= self.max_streams:
                if self.open_timeout is not None and self.open_timeout > 0:
                    if deadline is None:
                        deadline = perf_counter() + self.open_timeout
                    remaining = deadline - perf_counter()
                    if remaining > 0:
                        self._slot_freed.wait(remaining)
                        continue
                self._rejected += 1
                self._metric_inc("serving.pool.rejected")
                raise ServingError(
                    f"stream capacity exhausted ({self.max_streams} open); "
                    "close a stream before opening another",
                    code="capacity",
                    retryable=True,
                    fingerprint=fingerprint,
                )
            self._reserved += 1

    def _release_slot(self) -> None:
        """Abandon a reservation (the open failed before creating its
        entry) and wake one waiter blocked on admission."""
        with self._slot_freed:
            self._reserved -= 1
            self._slot_freed.notify()

    def _missing_stream_error(self, stream_id, next_id: int) -> ServingError:
        """Classify a miss: an id below the allocation cursor was opened
        and has since closed (ids are handed out sequentially and never
        reused), anything else never existed — so the structured code is
        exact, matching what a feed racing the close itself would get."""
        try:
            was_opened = 0 <= int(stream_id) < next_id and int(stream_id) == stream_id
        except (TypeError, ValueError):
            was_opened = False
        if was_opened:
            return ServingError(
                f"stream {stream_id} is closed",
                code="stream_closed",
                stream_id=stream_id,
            )
        return ServingError(
            f"unknown stream id {stream_id}",
            code="unknown_stream",
            stream_id=stream_id,
        )

    def _entry(self, stream_id: int) -> _StreamEntry:
        with self._lock:
            entry = self._entries.get(stream_id)
            next_id = self._next_id
        if entry is None:
            raise self._missing_stream_error(stream_id, next_id)
        return entry

    def feed(self, stream_id: int, segment) -> SchemeResult:
        """Process one segment on the identified stream.

        Feeds to the same stream are serialized by its per-stream lock
        (two threads can never interleave on one session's carried state);
        feeds to different streams proceed concurrently.  Feeding a stream
        that a racing thread closed raises ``code="stream_closed"``.
        """
        entry = self._entry(stream_id)
        return self._feed_entry(stream_id, entry, segment)

    def _feed_entry(
        self, stream_id: int, entry: _StreamEntry, segment
    ) -> SchemeResult:
        started = perf_counter()
        with entry.lock:
            if entry.closed:
                raise ServingError(
                    f"stream {stream_id} is closed",
                    code="stream_closed",
                    stream_id=stream_id,
                    fingerprint=entry.fingerprint,
                )
            result = entry.session.feed(segment)
        with self._lock:
            self._metric_inc("serving.pool.feeds")
            self._metric_observe(
                "serving.pool.feed_ms", (perf_counter() - started) * 1e3
            )
            fire = self._observe_locked(entry.canonical, result.observations)
        if fire:
            self._launch_revise(entry.canonical)
        return result

    # ------------------------------------------------------------------
    # online adaptation (drift detection + plan hot-swap)
    # ------------------------------------------------------------------
    def _observe_locked(self, canonical: str, observations) -> bool:
        """Feed one run's evidence to the class's drift monitor.

        Called with the pool lock held (like every other serving metric).
        Returns True when the monitor just fired and a revise should be
        launched (after releasing the lock).
        """
        if self.drift is None or observations is None:
            return False
        monitor = self._monitors.get(canonical)
        if monitor is None:
            return False
        fired = monitor.observe(observations)
        self._metric_inc("drift.observations")
        if self.metrics is not None:
            self.metrics.gauge("drift.divergence").set(monitor.divergence)
        if fired:
            self._metric_inc("drift.triggers")
        return fired

    def _launch_revise(self, canonical: str) -> None:
        """Kick the single-flight background revise for one language class."""
        with self._lock:
            if canonical in self._revising:
                return
            self._revising[canonical] = None
        if self.drift is not None and self.drift.synchronous:
            self._run_revise(canonical)
            return
        thread = threading.Thread(
            target=self._run_revise,
            args=(canonical,),
            name=f"drift-revise-{canonical[:8]}",
            daemon=True,
        )
        with self._lock:
            self._revising[canonical] = thread
        thread.start()

    def _run_revise(self, canonical: str) -> None:
        """Revise one matcher's plan from its monitor's evidence.

        The expensive step (``revise_plan`` — one selector walk plus one
        cost-model evaluation) runs outside the pool lock; the snapshot
        before it and the install after it each take the lock briefly.
        The revision is installed into both the shared cache (so future
        opens get it) and the live matcher (so open sessions swap at
        their next segment boundary).
        """
        from repro.plan import revise_plan

        try:
            with self._lock:
                matcher = self._matchers.get(canonical)
                monitor = self._monitors.get(canonical)
                if matcher is None or monitor is None:
                    return
                stale = matcher.plan
                observations = monitor.snapshot()
            revised = revise_plan(stale, observations, tracer=None, metrics=None)
            self.cache.put(revised)
            with self._lock:
                matcher = self._matchers.get(canonical)
                monitor = self._monitors.get(canonical)
                if (
                    matcher is not None
                    and matcher.plan.fingerprint == revised.fingerprint
                    and matcher.plan.config_hash == revised.config_hash
                ):
                    matcher.adopt_plan(revised)
                self._metric_inc("drift.revises")
                if revised.scheme != stale.scheme:
                    self._metric_inc("drift.swaps")
                if monitor is not None:
                    lag = monitor.rearm(revised)
                    self._metric_observe("drift.observation_lag_segments", lag)
        except Exception:
            # A failed revise must not poison the feed path (synchronous
            # mode) or kill the worker silently: the stale plan keeps
            # serving — it is still correct, just slow — the monitor stays
            # latched so the failure cannot refire in a loop, and the
            # error is visible in the counter.
            with self._lock:
                self._metric_inc("drift.revise_errors")
        finally:
            with self._lock:
                self._revising.pop(canonical, None)

    def drain_revisions(self, timeout: Optional[float] = None) -> int:
        """Block until in-flight background revises finish (tests, shutdown).

        ``timeout`` bounds the *total* wait across every in-flight revise
        thread (one shared deadline, not N per-thread waits), so a
        graceful shutdown with ``timeout=5`` takes at most ~5 seconds no
        matter how many revises are running.  Returns the number of
        revise threads still alive when the wait ended — 0 on a clean
        drain — so callers (the gateway's shutdown path, the stress
        harness) can log or fail on stragglers instead of silently
        leaving live threads behind.  Synchronous-mode pools have nothing
        to drain.
        """
        with self._lock:
            threads = [t for t in self._revising.values() if t is not None]
        deadline = (
            None if timeout is None else perf_counter() + float(timeout)
        )
        for thread in threads:
            if deadline is None:
                thread.join()
            else:
                remaining = deadline - perf_counter()
                if remaining <= 0 and thread.is_alive():
                    continue
                thread.join(max(remaining, 0.0))
        return sum(1 for thread in threads if thread.is_alive())

    # ------------------------------------------------------------------
    # gang scheduling (fused cross-stream dispatch)
    # ------------------------------------------------------------------
    def feed_many(self, feeds: Sequence[Tuple[int, object]]) -> Tuple[FeedOutcome, ...]:
        """Process many ``(stream_id, segment)`` feeds, gang-scheduled.

        Feeds targeting streams that share a fingerprint are coalesced
        into one fused ``(streams × lanes)`` dispatch when the pool is in
        fused mode and the group is at least ``fused_min_streams`` wide;
        everything else runs through the ordinary per-stream scheme path.
        Either way each feed is answer-identical to calling :meth:`feed`
        with the same segment (the differential suites pin this).

        The per-stream-lock contract is preserved: a fused dispatch holds
        every participating stream's lock (acquired in stream-id order, so
        concurrent gang dispatches cannot deadlock) for the duration of
        the batch — a close racing the dispatch either lands before it
        (that feed reports ``stream_closed``) or blocks until the batch
        completes, never mid-batch.  A stream id may appear several times
        in one call; its segments are applied in input order across
        successive dispatch waves.

        Returns one :class:`FeedOutcome` per input feed, in input order.
        Serving-contract failures (unknown/closed streams) are reported in
        the outcomes instead of raised, so one bad stream never poisons
        its batchmates.
        """
        feeds = list(feeds)
        outcomes: List[Optional[FeedOutcome]] = [None] * len(feeds)
        pending = list(enumerate(feeds))
        while pending:
            # One wave: each stream id at most once, so per-stream segment
            # order is preserved across waves.
            wave: List[Tuple[int, int, object]] = []
            seen: set = set()
            later: List[Tuple[int, Tuple[int, object]]] = []
            for idx, (stream_id, segment) in pending:
                if stream_id in seen:
                    later.append((idx, (stream_id, segment)))
                else:
                    seen.add(stream_id)
                    wave.append((idx, stream_id, segment))
            self._dispatch_wave(wave, outcomes)
            pending = later
        return tuple(outcomes)  # type: ignore[arg-type]

    def _dispatch_wave(self, wave, outcomes) -> None:
        """Group one wave by canonical fingerprint and dispatch each group.

        Grouping on the canonical key means streams opened with different
        but language-equivalent plans gang into one fused dispatch (their
        sessions all run the shared matcher's transition table).  The
        entry table is snapshotted *once* per wave under a single lock
        acquisition — answer-identical to the per-feed lookups it
        replaces (a close racing the wave is still caught under the
        per-stream lock at dispatch time), without hammering the pool
        lock N times per wave."""
        with self._lock:
            entries = dict(self._entries)
            next_id = self._next_id
        groups: Dict[str, List[Tuple[int, int, _StreamEntry, object]]] = {}
        for idx, stream_id, segment in wave:
            entry = entries.get(stream_id)
            if entry is None:
                outcomes[idx] = FeedOutcome(
                    stream_id=stream_id,
                    ok=False,
                    error=self._missing_stream_error(stream_id, next_id),
                )
                continue
            groups.setdefault(entry.canonical, []).append(
                (idx, stream_id, entry, segment)
            )
        for fingerprint, group in groups.items():
            if self.fused and len(group) >= self.fused_min_streams:
                self._dispatch_fused(fingerprint, group, outcomes)
            else:
                self._dispatch_sequential(group, outcomes)

    def _dispatch_sequential(self, group, outcomes) -> None:
        """Per-stream fallback: each feed runs the ordinary scheme path."""
        for idx, stream_id, entry, segment in group:
            try:
                result = self._feed_entry(stream_id, entry, segment)
            except ServingError as exc:
                outcomes[idx] = FeedOutcome(
                    stream_id=stream_id, ok=False, error=exc
                )
            else:
                outcomes[idx] = FeedOutcome(
                    stream_id=stream_id,
                    ok=True,
                    end_state=int(result.end_state),
                    accepts=bool(result.accepts),
                    symbols=int(_as_symbol_array(segment).size),
                )
            with self._lock:
                self._metric_inc("serving.pool.fused_fallbacks")

    def _dispatch_fused(self, fingerprint, group, outcomes) -> None:
        """One fused dispatch over every live stream in the group.

        Locks are taken in stream-id order and held across the whole
        batch; streams found closed under their lock are reported in their
        outcome and excluded from the dispatch rather than failing it.
        """
        started = perf_counter()
        ordered = sorted(group, key=lambda item: item[1])
        locked: List[_StreamEntry] = []
        try:
            live: List[Tuple[int, int, _StreamEntry, object]] = []
            for idx, stream_id, entry, segment in ordered:
                entry.lock.acquire()
                locked.append(entry)
                if entry.closed:
                    outcomes[idx] = FeedOutcome(
                        stream_id=stream_id,
                        ok=False,
                        error=ServingError(
                            f"stream {stream_id} is closed",
                            code="stream_closed",
                            stream_id=stream_id,
                            fingerprint=fingerprint,
                        ),
                    )
                else:
                    live.append((idx, stream_id, entry, segment))
            if not live:
                return
            with self._lock:
                matcher = self._matchers[fingerprint]
            engine = matcher.fused_engine()
            segments = [_as_symbol_array(segment) for *_ignored, segment in live]
            starts = [entry.session.state for _, _, entry, _ in live]
            dispatch = engine.dispatch(segments, starts)
            for pos, (idx, stream_id, entry, _segment) in enumerate(live):
                entry.session.apply_fused(
                    segments[pos], int(dispatch.end_states[pos])
                )
                outcomes[idx] = FeedOutcome(
                    stream_id=stream_id,
                    ok=True,
                    end_state=entry.session.state,
                    accepts=entry.session.accepts,
                    symbols=int(segments[pos].size),
                    fused=True,
                )
        finally:
            for entry in reversed(locked):
                entry.lock.release()
        with self._lock:
            self._metric_inc("serving.pool.fused_dispatches")
            self._metric_inc_by("serving.pool.feeds", len(live))
            self._metric_inc_by("serving.pool.fused_streams", len(live))
            self._metric_inc_by(
                "serving.pool.fused_symbols", dispatch.total_symbols
            )
            self._metric_observe("serving.pool.fused_batch_width", len(live))
            self._metric_observe(
                "serving.pool.fused_ms", (perf_counter() - started) * 1e3
            )
            # Fused execution bypasses the scheme layer, so it verifies no
            # chunk boundaries — stash a sample-free observation (traffic
            # volume + symbol sketch) so the drift aggregate still sees
            # the distribution this class is serving.
            if self.drift is not None and fingerprint in self._monitors:
                matcher = self._matchers.get(fingerprint)
                if matcher is not None:
                    sketch = np.zeros(matcher.dfa.n_symbols, dtype=np.int64)
                    for seg in segments:
                        sketch += np.bincount(
                            seg.astype(np.int64, copy=False),
                            minlength=matcher.dfa.n_symbols,
                        )
                    self._observe_locked(
                        fingerprint,
                        LiveObservations(
                            scheme="fused",
                            spec_k=1,
                            segments=len(live),
                            symbols=int(dispatch.total_symbols),
                            symbol_sketch=sketch,
                        ),
                    )

    def close(self, stream_id: int) -> StreamStats:
        """Close a stream and return its final summary.

        Matchers (and their cached plans/simulators) stay resident for
        future streams; only the per-stream session state is released.
        The summary is built under the stream's lock — after the ``closed``
        flag flips no feed can advance the session — so the reported end
        state is exactly the state the last successful feed left behind.
        """
        entry = self._entry(stream_id)
        with entry.lock:
            if entry.closed:
                raise ServingError(
                    f"stream {stream_id} is closed",
                    code="stream_closed",
                    stream_id=stream_id,
                    fingerprint=entry.fingerprint,
                )
            entry.closed = True
            session = entry.session
            with self._slot_freed:
                del self._entries[stream_id]
                self._closed += 1
                scheme = session.scheme
                decision_path = tuple(session.decision_path)
                if scheme is None:
                    # Never fed: report what a segment would have run.
                    matcher = self._matchers[entry.canonical]
                    scheme = matcher.plan.scheme
                    decision_path = tuple(matcher.plan.decision_path)
                stats = StreamStats(
                    stream_id=stream_id,
                    fingerprint=entry.fingerprint,
                    scheme=scheme,
                    segments=session.segments,
                    total_symbols=session.total_symbols,
                    total_cycles=session.total_cycles,
                    end_state=session.state,
                    accepts=session.accepts,
                    canonical_fingerprint=entry.canonical,
                    scheme_switches=session.scheme_switches,
                    decision_path=decision_path,
                )
                self._metric_inc("serving.pool.closed")
                self._metric_active()
                self._slot_freed.notify()
        return stats

    def close_all(self) -> Tuple[StreamStats, ...]:
        """Close every stream open at the snapshot; returns the summaries
        of the streams *this call* closed.

        Tolerates races: a stream another thread closes between the
        snapshot and this call's ``close`` is simply skipped, never raised
        on — two concurrent ``close_all`` calls partition the streams
        between them.
        """
        with self._lock:
            ids = tuple(self._entries)
        summaries = []
        for sid in ids:
            try:
                summaries.append(self.close(sid))
            except ServingError as exc:
                if exc.code in ("unknown_stream", "stream_closed"):
                    continue
                raise
        return tuple(summaries)
