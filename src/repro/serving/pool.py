"""Multi-tenant serving: many concurrent streams over cached plans.

:class:`MatcherPool` is the serve-many half of the compile-once split.  It
keeps one plan-backed :class:`~repro.framework.GSpecPal` matcher per FSM
fingerprint (built via ``GSpecPal.from_plan`` — zero profiling on the
serving path) and multiplexes any number of concurrent
:class:`~repro.framework.gspecpal.StreamSession`\\ s over those matchers.
Plans come from a shared :class:`~repro.serving.PlanCache`, so N tenants
matching the same automaton cost one compile, one simulator, and one scheme
instance per stream — nothing else.

Typical serving loop::

    pool = MatcherPool(PlanCache(capacity=8))
    sid = pool.open(dfa, training_input=train)   # compile-or-hit
    ...
    pool.feed(sid, segment)                      # any interleaving of sids
    ...
    stats = pool.close(sid)                      # final stream summary
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ServingError
from repro.framework.gspecpal import GSpecPal, StreamSession
from repro.schemes import SchemeResult
from repro.serving.cache import PlanCache


@dataclass(frozen=True)
class StreamStats:
    """Summary returned by :meth:`MatcherPool.close`."""

    stream_id: int
    fingerprint: str
    scheme: str
    segments: int
    total_symbols: int
    total_cycles: float
    end_state: int
    accepts: bool


class MatcherPool:
    """Serve many concurrent streams over plan-cached matchers.

    Parameters
    ----------
    cache:
        Shared :class:`PlanCache`; a private default-capacity one is
        created when omitted.
    config:
        Default compile-time configuration for plans the pool must compile.
    backend / selfcheck:
        Runtime knobs applied to every matcher built from a plan.
    max_streams:
        Upper bound on concurrently open streams (capacity guard).
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        *,
        config=None,
        backend: Optional[str] = None,
        selfcheck: Optional[bool] = None,
        max_streams: int = 64,
        tracer=None,
        metrics=None,
    ):
        if max_streams < 1:
            raise ServingError(f"max_streams must be >= 1, got {max_streams}")
        self.cache = cache if cache is not None else PlanCache(config=config)
        self.config = config
        self.backend = backend
        self.selfcheck = selfcheck
        self.max_streams = int(max_streams)
        self.tracer = tracer
        self.metrics = metrics
        self._matchers: Dict[str, GSpecPal] = {}
        self._sessions: Dict[int, Tuple[StreamSession, str]] = {}
        self._next_id = 0
        self._opened = 0
        self._closed = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Number of currently open streams."""
        with self._lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "active_streams": len(self._sessions),
                "opened": self._opened,
                "closed": self._closed,
                "matchers": len(self._matchers),
                "cache": self.cache.stats(),
            }

    # ------------------------------------------------------------------
    def _matcher_for(self, plan) -> GSpecPal:
        matcher = self._matchers.get(plan.fingerprint)
        if matcher is None or matcher.plan is not plan:
            matcher = GSpecPal.from_plan(
                plan,
                backend=self.backend,
                selfcheck=self.selfcheck,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            self._matchers[plan.fingerprint] = matcher
        return matcher

    def open(
        self,
        dfa=None,
        *,
        training_input=None,
        plan=None,
        scheme: Optional[str] = None,
    ) -> int:
        """Open a stream; returns its id for :meth:`feed`/:meth:`close`.

        Pass either a precompiled ``plan`` or a ``dfa`` (with
        ``training_input`` if its plan may not be cached yet).  ``scheme``
        forces a scheme for this stream; by default every segment uses the
        plan's compiled selection.
        """
        if plan is None:
            if dfa is None:
                raise ServingError("open() needs a dfa or a precompiled plan")
            plan = self.cache.get_or_compile(dfa, training_input, self.config)
        else:
            self.cache.put(plan)
        with self._lock:
            if len(self._sessions) >= self.max_streams:
                raise ServingError(
                    f"stream capacity exhausted ({self.max_streams} open); "
                    "close a stream before opening another"
                )
            matcher = self._matcher_for(plan)
            session = matcher.stream(scheme=scheme)
            stream_id = self._next_id
            self._next_id += 1
            self._opened += 1
            self._sessions[stream_id] = (session, plan.fingerprint)
            return stream_id

    def _session(self, stream_id: int) -> Tuple[StreamSession, str]:
        entry = self._sessions.get(stream_id)
        if entry is None:
            raise ServingError(f"unknown or closed stream id {stream_id}")
        return entry

    def feed(self, stream_id: int, segment) -> SchemeResult:
        """Process one segment on the identified stream."""
        with self._lock:
            session, _ = self._session(stream_id)
        return session.feed(segment)

    def close(self, stream_id: int) -> StreamStats:
        """Close a stream and return its final summary.

        Matchers (and their cached plans/simulators) stay resident for
        future streams; only the per-stream session state is released.
        """
        with self._lock:
            session, fingerprint = self._session(stream_id)
            del self._sessions[stream_id]
            self._closed += 1
        matcher = self._matchers[fingerprint]
        scheme = session._runner_name
        if scheme is None:
            # Never fed: report what a segment would have run.
            plan = matcher.plan
            scheme = session._scheme if session._scheme is not None else plan.scheme
        return StreamStats(
            stream_id=stream_id,
            fingerprint=fingerprint,
            scheme=scheme,
            segments=session.segments,
            total_symbols=session.total_symbols,
            total_cycles=session.total_cycles,
            end_state=session.state,
            accepts=session.accepts,
        )

    def close_all(self) -> Tuple[StreamStats, ...]:
        """Close every open stream; returns their summaries."""
        with self._lock:
            ids = tuple(self._sessions)
        return tuple(self.close(sid) for sid in ids)
