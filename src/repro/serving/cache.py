"""Fingerprint-keyed LRU cache of compiled plans.

The serving tier's first rule: **at most one compile per fingerprint**.
Compiling a plan is the expensive per-FSM work (feature profiling, selector
walk, transformation, cost model, predictor training); the cache amortizes
it across every stream that matches against the same automaton.

Keys are :meth:`~repro.automata.dfa.DFA.fingerprint` content hashes, so two
structurally identical DFAs (however they were constructed) share one plan.
A bounded LRU keeps memory predictable under many-tenant churn; eviction
only drops the *plan* — matchers already serving from it keep their
reference and finish unaffected.

Concurrency contract (see ``docs/architecture.md``): the cache is
thread-safe and compiles are **single-flight per fingerprint**.  The global
lock only guards the bookkeeping maps; the compile itself (and the disk
spill I/O around it) runs *outside* the critical section under a
fingerprint-keyed in-flight registry.  Two racing ``get_or_compile`` calls
for the same fingerprint still produce exactly one compile — the loser
blocks on the winner's result — while calls for *other* fingerprints hit
the resident cache (or start their own compile) completely unblocked.  A
slow compile can therefore never head-of-line-block another tenant's hit.
"""

from __future__ import annotations

import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional

from repro.errors import PlanError, ServingError
from repro.observability import NULL_TRACER
from repro.plan import CompiledPlan, compile_plan, load_plan, save_plan


class _InFlightCompile:
    """One in-progress compile other callers of the fingerprint wait on."""

    __slots__ = ("event", "plan", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.plan: Optional[CompiledPlan] = None
        self.error: Optional[BaseException] = None


class PlanCache:
    """Bounded LRU of :class:`~repro.plan.CompiledPlan`, keyed by fingerprint.

    Parameters
    ----------
    capacity:
        Maximum resident plans; least-recently-used is evicted beyond it.
    config:
        Default compile-time configuration for :meth:`get_or_compile`.
    directory:
        Optional spill directory: plans are persisted as
        ``<fingerprint>.npz`` on compile and reloaded on a memory miss, so
        a restarted server re-serves without recompiling (the CLI's
        ``--plan-cache`` flag builds on this).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; the cache
        records ``serving.cache.*`` counters/gauges/histograms into it
        (always under the cache lock, so the counts are exact even under
        concurrent traffic).
    tracer:
        Optional tracer handed to :func:`~repro.plan.compile_plan` so cold
        compiles emit their usual ``compile`` span tree.  A shared
        :class:`~repro.observability.Tracer` is **not** thread-safe —
        attach one only when the cache is driven from a single thread.
    """

    def __init__(
        self,
        capacity: int = 16,
        *,
        config=None,
        directory: Optional[str] = None,
        metrics=None,
        tracer=None,
    ):
        if capacity < 1:
            raise ServingError(
                f"PlanCache capacity must be >= 1, got {capacity}",
                code="invalid_argument",
            )
        self.capacity = int(capacity)
        self.config = config
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._plans: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self._inflight: Dict[str, _InFlightCompile] = {}
        self._lock = threading.RLock()
        #: observability counters (monotonic over the cache's lifetime).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.disk_loads = 0
        #: calls that blocked on another thread's in-flight compile.
        self.compile_waits = 0

    # ------------------------------------------------------------------
    # metrics plumbing (always called with self._lock held: the registry's
    # instruments are not thread-safe on their own)
    # ------------------------------------------------------------------
    def _metric_inc(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _metric_observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _metric_in_flight(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serving.cache.in_flight").set(len(self._inflight))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._plans

    @property
    def fingerprints(self) -> tuple:
        """Resident fingerprints, least-recently-used first."""
        with self._lock:
            return tuple(self._plans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "compiles": self.compiles,
                "disk_loads": self.disk_loads,
                "compile_waits": self.compile_waits,
                "in_flight": len(self._inflight),
            }

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[CompiledPlan]:
        """The cached plan for ``fingerprint`` (refreshes recency), or None."""
        with self._lock:
            plan = self._plans.get(fingerprint)
            if plan is not None:
                self._plans.move_to_end(fingerprint)
                self.hits += 1
                self._metric_inc("serving.cache.hits")
                return plan
            self.misses += 1
            self._metric_inc("serving.cache.misses")
            return None

    def put(self, plan: CompiledPlan) -> None:
        """Insert (or refresh) ``plan``; evicts LRU entries beyond capacity."""
        with self._lock:
            self._put_locked(plan)

    def _put_locked(self, plan: CompiledPlan) -> None:
        self._plans[plan.fingerprint] = plan
        self._plans.move_to_end(plan.fingerprint)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1
            self._metric_inc("serving.cache.evictions")

    # ------------------------------------------------------------------
    def get_or_compile(
        self, dfa, training_input=None, config=None
    ) -> CompiledPlan:
        """The plan for ``dfa`` — cached, spilled-to-disk, or compiled now.

        Resolution order: memory hit → in-flight wait → spill-directory
        load → compile (requires ``training_input``).  Whatever the source,
        the plan ends up resident and most-recently-used.

        Compiles are single-flight: the first caller to miss a fingerprint
        becomes its *leader* and compiles outside the cache lock; callers
        racing the same fingerprint wait for the leader's result (a leader
        failure propagates to every waiter, and the fingerprint becomes
        compilable again).  Other fingerprints are never blocked.
        """
        fingerprint = dfa.fingerprint()
        while True:
            with self._lock:
                plan = self._plans.get(fingerprint)
                if plan is not None:
                    self._plans.move_to_end(fingerprint)
                    self.hits += 1
                    self._metric_inc("serving.cache.hits")
                    return plan
                self.misses += 1
                self._metric_inc("serving.cache.misses")
                flight = self._inflight.get(fingerprint)
                if flight is None:
                    flight = self._inflight[fingerprint] = _InFlightCompile()
                    self._metric_in_flight()
                    break  # this caller leads the compile
                self.compile_waits += 1
                self._metric_inc("serving.cache.compile_waits")
            waited_from = perf_counter()
            flight.event.wait()
            with self._lock:
                self._metric_observe(
                    "serving.cache.compile_wait_ms",
                    (perf_counter() - waited_from) * 1e3,
                )
            if flight.error is not None:
                raise flight.error
            if flight.plan is not None:
                return flight.plan
            # Leader vanished without a result (should not happen); retry.

        # -- leader path: all I/O and compute outside the critical section
        try:
            plan = self._load_spilled(fingerprint, dfa)
            from_disk = plan is not None
            if plan is None:
                if training_input is None:
                    raise ServingError(
                        f"no plan cached for fingerprint {fingerprint[:12]}… and "
                        "no training input to compile one",
                        code="no_training_input",
                        fingerprint=fingerprint,
                    )
                compile_from = perf_counter()
                plan = compile_plan(
                    dfa,
                    training_input,
                    config if config is not None else self.config,
                    tracer=self.tracer,
                )
                compile_ms = (perf_counter() - compile_from) * 1e3
                self._spill(plan)
            with self._lock:
                if from_disk:
                    self.disk_loads += 1
                    self._metric_inc("serving.cache.disk_loads")
                else:
                    self.compiles += 1
                    self._metric_inc("serving.cache.compiles")
                    self._metric_observe("serving.cache.compile_ms", compile_ms)
                self._put_locked(plan)
            flight.plan = plan
            return plan
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(fingerprint, None)
                self._metric_in_flight()
            flight.event.set()

    # ------------------------------------------------------------------
    # optional disk spill
    # ------------------------------------------------------------------
    def _spill_path(self, fingerprint: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{fingerprint}.npz"

    def _spill(self, plan: CompiledPlan) -> None:
        path = self._spill_path(plan.fingerprint)
        if path is not None:
            save_plan(plan, path)

    def _load_spilled(self, fingerprint: str, dfa) -> Optional[CompiledPlan]:
        path = self._spill_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            plan = load_plan(path)
            plan.verify(dfa)
        except (PlanError, OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Stale, truncated or corrupt spill: drop it and recompile.
            path.unlink(missing_ok=True)
            return None
        return plan
