"""Fingerprint-keyed LRU cache of compiled plans.

The serving tier's first rule: **at most one compile per fingerprint**.
Compiling a plan is the expensive per-FSM work (feature profiling, selector
walk, transformation, cost model, predictor training); the cache amortizes
it across every stream that matches against the same automaton.

Keys are :meth:`~repro.automata.dfa.DFA.fingerprint` content hashes, so two
structurally identical DFAs (however they were constructed) share one plan.
A bounded LRU keeps memory predictable under many-tenant churn; eviction
only drops the *plan* — matchers already serving from it keep their
reference and finish unaffected.

The cache is thread-safe: the compile itself runs under the lock so two
racing ``get_or_compile`` calls for the same fingerprint can never both
compile.
"""

from __future__ import annotations

import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional

from repro.errors import PlanError, ServingError
from repro.plan import CompiledPlan, compile_plan, load_plan, save_plan


class PlanCache:
    """Bounded LRU of :class:`~repro.plan.CompiledPlan`, keyed by fingerprint.

    Parameters
    ----------
    capacity:
        Maximum resident plans; least-recently-used is evicted beyond it.
    config:
        Default compile-time configuration for :meth:`get_or_compile`.
    directory:
        Optional spill directory: plans are persisted as
        ``<fingerprint>.npz`` on compile and reloaded on a memory miss, so
        a restarted server re-serves without recompiling (the CLI's
        ``--plan-cache`` flag builds on this).
    """

    def __init__(
        self,
        capacity: int = 16,
        *,
        config=None,
        directory: Optional[str] = None,
    ):
        if capacity < 1:
            raise ServingError(f"PlanCache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.config = config
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._plans: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self._lock = threading.RLock()
        #: observability counters (monotonic over the cache's lifetime).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.disk_loads = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._plans

    @property
    def fingerprints(self) -> tuple:
        """Resident fingerprints, least-recently-used first."""
        with self._lock:
            return tuple(self._plans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "compiles": self.compiles,
                "disk_loads": self.disk_loads,
            }

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[CompiledPlan]:
        """The cached plan for ``fingerprint`` (refreshes recency), or None."""
        with self._lock:
            plan = self._plans.get(fingerprint)
            if plan is not None:
                self._plans.move_to_end(fingerprint)
                self.hits += 1
                return plan
            self.misses += 1
            return None

    def put(self, plan: CompiledPlan) -> None:
        """Insert (or refresh) ``plan``; evicts LRU entries beyond capacity."""
        with self._lock:
            self._plans[plan.fingerprint] = plan
            self._plans.move_to_end(plan.fingerprint)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1

    def get_or_compile(
        self, dfa, training_input=None, config=None
    ) -> CompiledPlan:
        """The plan for ``dfa`` — cached, spilled-to-disk, or compiled now.

        Resolution order: memory hit → spill-directory load → compile
        (requires ``training_input``).  Whatever the source, the plan ends
        up resident and most-recently-used.
        """
        fingerprint = dfa.fingerprint()
        with self._lock:
            plan = self._plans.get(fingerprint)
            if plan is not None:
                self._plans.move_to_end(fingerprint)
                self.hits += 1
                return plan
            self.misses += 1
            plan = self._load_spilled(fingerprint, dfa)
            if plan is None:
                if training_input is None:
                    raise ServingError(
                        f"no plan cached for fingerprint {fingerprint[:12]}… and "
                        "no training input to compile one"
                    )
                plan = compile_plan(
                    dfa,
                    training_input,
                    config if config is not None else self.config,
                )
                self.compiles += 1
                self._spill(plan)
            self.put(plan)
            return plan

    # ------------------------------------------------------------------
    # optional disk spill
    # ------------------------------------------------------------------
    def _spill_path(self, fingerprint: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{fingerprint}.npz"

    def _spill(self, plan: CompiledPlan) -> None:
        path = self._spill_path(plan.fingerprint)
        if path is not None:
            save_plan(plan, path)

    def _load_spilled(self, fingerprint: str, dfa) -> Optional[CompiledPlan]:
        path = self._spill_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            plan = load_plan(path)
            plan.verify(dfa)
        except (PlanError, OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Stale, truncated or corrupt spill: drop it and recompile.
            path.unlink(missing_ok=True)
            return None
        self.disk_loads += 1
        return plan
