"""Two-level fingerprint-keyed LRU cache of compiled plans.

The serving tier's first rule: **at most one compile per language**.
Compiling a plan is the expensive per-FSM work (feature profiling, selector
walk, transformation, cost model, predictor training); the cache amortizes
it across every stream that matches against the same automaton — or any
language-equivalent one.

The cache is two-level:

* an **alias map** from content fingerprints
  (:meth:`~repro.automata.dfa.DFA.fingerprint`) to canonical fingerprints
  (:meth:`~repro.automata.dfa.DFA.canonical_fingerprint`, the hash of the
  minimal BFS-renumbered form);
* the **plan store**, a bounded LRU keyed by canonical fingerprint.

Two tenants submitting syntactically different but language-equivalent
DFAs therefore hit one compiled plan and one spill file
(``<canonical_fingerprint>.npz``).  Dedupe is *first-submitter-wins*: the
resident plan embeds (and executes) the first submitter's DFA, so its
``end_state`` numbering is the plan's; acceptance decisions are exact for
every aliased tenant because the automata accept the same language.
Canonicalization runs once per content fingerprint (outside the lock) and
is memoized in the alias map.

A bounded LRU keeps memory predictable under many-tenant churn; eviction
only drops the *plan* — matchers already serving from it keep their
reference and finish unaffected, and aliases survive so a re-miss skips
re-canonicalization.

Concurrency contract (see ``docs/architecture.md``): the cache is
thread-safe and compiles are **single-flight per canonical fingerprint**.
The global lock only guards the bookkeeping maps; the compile itself (and
the disk spill I/O around it) runs *outside* the critical section under a
canonical-fingerprint-keyed in-flight registry.  Two racing
``get_or_compile`` calls for language-equivalent DFAs still produce exactly
one compile — the loser blocks on the winner's result — while calls for
other language classes hit the resident cache (or start their own compile)
completely unblocked.  A slow compile can therefore never
head-of-line-block another tenant's hit.
"""

from __future__ import annotations

import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional

from repro.errors import PlanError, ServingError
from repro.observability import NULL_TRACER
from repro.plan import CompiledPlan, compile_plan, load_plan, save_plan


class _InFlightCompile:
    """One in-progress compile other callers of the language class wait on."""

    __slots__ = ("event", "plan", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.plan: Optional[CompiledPlan] = None
        self.error: Optional[BaseException] = None


class PlanCache:
    """Bounded LRU of :class:`~repro.plan.CompiledPlan` with language aliasing.

    Plans are stored under their *canonical* fingerprint; lookups by content
    fingerprint resolve through the alias map, so every public method keeps
    accepting the content fingerprints callers already hold.

    Parameters
    ----------
    capacity:
        Maximum resident plans; least-recently-used is evicted beyond it.
    config:
        Default compile-time configuration for :meth:`get_or_compile`.
    directory:
        Optional spill directory: plans are persisted as
        ``<canonical_fingerprint>.npz`` on compile and reloaded on a memory
        miss, so a restarted server re-serves without recompiling (the
        CLI's ``--plan-cache`` flag builds on this).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; the cache
        records ``serving.cache.*`` counters/gauges/histograms into it
        (always under the cache lock, so the counts are exact even under
        concurrent traffic).
    tracer:
        Optional tracer handed to :func:`~repro.plan.compile_plan` so cold
        compiles emit their usual ``compile`` span tree.  A shared
        :class:`~repro.observability.Tracer` is **not** thread-safe —
        attach one only when the cache is driven from a single thread.
    """

    def __init__(
        self,
        capacity: int = 16,
        *,
        config=None,
        directory: Optional[str] = None,
        metrics=None,
        tracer=None,
    ):
        if capacity < 1:
            raise ServingError(
                f"PlanCache capacity must be >= 1, got {capacity}",
                code="invalid_argument",
            )
        self.capacity = int(capacity)
        self.config = config
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: plan store, keyed by canonical fingerprint (LRU order).
        self._plans: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        #: content fingerprint → canonical fingerprint (never evicted).
        self._alias: Dict[str, str] = {}
        self._inflight: Dict[str, _InFlightCompile] = {}
        self._lock = threading.RLock()
        #: observability counters (monotonic over the cache's lifetime).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.disk_loads = 0
        #: calls that blocked on another thread's in-flight compile.
        self.compile_waits = 0
        #: resolutions served by a plan compiled for a *different* content
        #: fingerprint in the same language class.
        self.alias_hits = 0
        #: new content fingerprints that joined an already-known language
        #: class instead of starting their own compile.
        self.dedupes = 0

    # ------------------------------------------------------------------
    # metrics plumbing (always called with self._lock held: the registry's
    # instruments are not thread-safe on their own)
    # ------------------------------------------------------------------
    def _metric_inc(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _metric_observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _metric_in_flight(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serving.cache.in_flight").set(len(self._inflight))

    def _note_alias_hit_locked(self, plan: CompiledPlan, fingerprint: str) -> None:
        """Record that ``fingerprint`` was served by an aliased plan."""
        if plan.fingerprint != fingerprint:
            self.alias_hits += 1
            self._metric_inc("serving.cache.alias_hits")

    # ------------------------------------------------------------------
    def _resolve_locked(self, fingerprint: str) -> str:
        """Canonical key for ``fingerprint`` (itself when unaliased)."""
        return self._alias.get(fingerprint, fingerprint)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return self._resolve_locked(fingerprint) in self._plans

    @property
    def fingerprints(self) -> tuple:
        """Resident canonical fingerprints, least-recently-used first."""
        with self._lock:
            return tuple(self._plans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "compiles": self.compiles,
                "disk_loads": self.disk_loads,
                "compile_waits": self.compile_waits,
                "alias_hits": self.alias_hits,
                "dedupes": self.dedupes,
                "aliases": len(self._alias),
                "in_flight": len(self._inflight),
            }

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[CompiledPlan]:
        """The cached plan for ``fingerprint`` (refreshes recency), or None.

        Accepts either a content fingerprint (resolved through the alias
        map) or a canonical fingerprint.
        """
        with self._lock:
            canonical = self._resolve_locked(fingerprint)
            plan = self._plans.get(canonical)
            if plan is not None:
                self._plans.move_to_end(canonical)
                self.hits += 1
                self._metric_inc("serving.cache.hits")
                self._note_alias_hit_locked(plan, fingerprint)
                return plan
            self.misses += 1
            self._metric_inc("serving.cache.misses")
            return None

    def put(self, plan: CompiledPlan) -> None:
        """Insert (or refresh) ``plan``; evicts LRU entries beyond capacity.

        Registers the plan's own content → canonical alias, so later
        content-fingerprint lookups resolve without re-canonicalizing.
        """
        with self._lock:
            self._put_locked(plan)

    def _put_locked(self, plan: CompiledPlan) -> None:
        canonical = plan.canonical_fingerprint
        self._alias[plan.fingerprint] = canonical
        resident = self._plans.get(canonical)
        # Revisions are monotonic: once a drift revise has landed, a
        # tenant re-submitting the stale offline artifact must not roll
        # the class back (the re-submit still refreshes recency).
        if (
            resident is None
            or resident.fingerprint != plan.fingerprint
            or resident.config_hash != plan.config_hash
            or resident.revision <= plan.revision
        ):
            self._plans[canonical] = plan
        self._plans.move_to_end(canonical)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1
            self._metric_inc("serving.cache.evictions")

    # ------------------------------------------------------------------
    def get_or_compile(
        self, dfa, training_input=None, config=None
    ) -> CompiledPlan:
        """The plan for ``dfa`` — cached, spilled-to-disk, or compiled now.

        Resolution order: alias-resolved memory hit → in-flight wait →
        spill-directory load → compile (requires ``training_input``).
        Whatever the source, the plan ends up resident and
        most-recently-used under its canonical fingerprint.

        Compiles are single-flight per *language class*: the first caller
        to miss a canonical fingerprint becomes its *leader* and compiles
        outside the cache lock; callers racing any language-equivalent DFA
        wait for the leader's result (a leader failure propagates to every
        waiter, and the class becomes compilable again).  Other language
        classes are never blocked.
        """
        fingerprint = dfa.fingerprint()
        with self._lock:
            canonical = self._alias.get(fingerprint)
        if canonical is None:
            # First sighting of this content fingerprint: canonicalize
            # outside the lock (minimization is the expensive part) and
            # memoize the alias below.
            canonical = dfa.canonical_fingerprint()
        while True:
            with self._lock:
                if fingerprint not in self._alias:
                    if canonical in self._plans or canonical in self._inflight:
                        self.dedupes += 1
                        self._metric_inc("serving.cache.dedupes")
                    self._alias[fingerprint] = canonical
                plan = self._plans.get(canonical)
                if plan is not None:
                    self._plans.move_to_end(canonical)
                    self.hits += 1
                    self._metric_inc("serving.cache.hits")
                    self._note_alias_hit_locked(plan, fingerprint)
                    return plan
                self.misses += 1
                self._metric_inc("serving.cache.misses")
                flight = self._inflight.get(canonical)
                if flight is None:
                    flight = self._inflight[canonical] = _InFlightCompile()
                    self._metric_in_flight()
                    break  # this caller leads the compile
                self.compile_waits += 1
                self._metric_inc("serving.cache.compile_waits")
            waited_from = perf_counter()
            flight.event.wait()
            with self._lock:
                self._metric_observe(
                    "serving.cache.compile_wait_ms",
                    (perf_counter() - waited_from) * 1e3,
                )
                if flight.plan is not None:
                    self._note_alias_hit_locked(flight.plan, fingerprint)
            if flight.error is not None:
                raise flight.error
            if flight.plan is not None:
                return flight.plan
            # Leader vanished without a result (should not happen); retry.

        # -- leader path: all I/O and compute outside the critical section
        try:
            plan = self._load_spilled(canonical, dfa, fingerprint)
            from_disk = plan is not None
            if plan is None:
                if training_input is None:
                    raise ServingError(
                        f"no plan cached for fingerprint {fingerprint[:12]}… and "
                        "no training input to compile one",
                        code="no_training_input",
                        fingerprint=fingerprint,
                    )
                compile_from = perf_counter()
                plan = compile_plan(
                    dfa,
                    training_input,
                    config if config is not None else self.config,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
                compile_ms = (perf_counter() - compile_from) * 1e3
                self._spill(plan)
            with self._lock:
                if from_disk:
                    self.disk_loads += 1
                    self._metric_inc("serving.cache.disk_loads")
                    self._note_alias_hit_locked(plan, fingerprint)
                else:
                    self.compiles += 1
                    self._metric_inc("serving.cache.compiles")
                    self._metric_observe("serving.cache.compile_ms", compile_ms)
                self._put_locked(plan)
            flight.plan = plan
            return plan
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(canonical, None)
                self._metric_in_flight()
            flight.event.set()

    # ------------------------------------------------------------------
    # optional disk spill
    # ------------------------------------------------------------------
    def _spill_path(self, canonical: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{canonical}.npz"

    def _spill(self, plan: CompiledPlan) -> None:
        path = self._spill_path(plan.canonical_fingerprint)
        if path is not None:
            save_plan(plan, path)

    def _load_spilled(
        self, canonical: str, dfa, fingerprint: str
    ) -> Optional[CompiledPlan]:
        path = self._spill_path(canonical)
        if path is None or not path.exists():
            return None
        try:
            plan = load_plan(path)
            if plan.canonical_fingerprint != canonical:
                raise PlanError(
                    f"spill file {path.name} holds canonical fingerprint "
                    f"{plan.canonical_fingerprint[:12]}…, expected {canonical[:12]}…"
                )
            if plan.fingerprint == fingerprint:
                # Same content: full content verification, as before.
                plan.verify(dfa)
        except (PlanError, OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Stale, truncated or corrupt spill: drop it and recompile.
            path.unlink(missing_ok=True)
            return None
        return plan
