"""Network-facing serving: TCP gateway over a shared MatcherPool.

The gateway is the serving tier's first step out of the process:

* :mod:`repro.gateway.protocol` — the newline-delimited-JSON wire
  protocol (``open`` / ``feed`` / ``feed_many`` / ``close`` / ``stats``)
  with structured :class:`~repro.errors.ServingError` passthrough;
* :mod:`repro.gateway.server` — :class:`GatewayServer`, the asyncio TCP
  front-end with per-connection stream ownership, orphan reaping,
  capacity backpressure and graceful drain;
* :mod:`repro.gateway.client` — :class:`GatewayClient`, the reference
  asyncio client the scenario runner and the integration tests use.

See ``docs/architecture.md`` ("Network gateway & scenarios") for the
full wire contract.
"""

from repro.gateway.client import GatewayClient
from repro.gateway.server import GatewayServer

__all__ = ["GatewayClient", "GatewayServer"]
