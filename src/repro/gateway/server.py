"""Asyncio TCP front-end serving a :class:`~repro.serving.MatcherPool`.

:class:`GatewayServer` is the first layer of the system that leaves the
process: remote tenants speak the newline-delimited-JSON protocol of
:mod:`repro.gateway.protocol` over a plain TCP socket, and every verb
lands on one shared, thread-safe :class:`~repro.serving.MatcherPool` —
so N connections multiplex over the same plan cache, warmed matchers,
admission control, and drift monitors the in-process serving tier
already provides.

Design contract
---------------
* **One event loop, pool work off-loop.**  The asyncio loop only parses
  and frames; every pool call (``open`` compiles, ``feed`` runs a
  scheme — both CPU-bound and blocking) runs in a worker thread via
  :func:`asyncio.to_thread`.  The pool is thread-safe by construction
  (PR 5), so concurrent connections genuinely execute concurrently.
* **Per-connection stream ownership.**  A stream id belongs to the
  connection that opened it; feeds/closes from any other connection get
  a structured ``code="not_owner"`` error.  When a connection drops —
  mid-feed included — its orphaned streams are closed server-side
  (counted by ``gateway.orphans_closed``), so a flaky client can never
  leak pool capacity.
* **Requests are sequential per connection**, pipelined across
  connections: the handler awaits each response before reading the next
  line, which preserves per-stream feed order with zero extra locking.
  Clients that want parallelism open more connections.
* **Backpressure is the pool's admission control.**  An ``open`` beyond
  ``max_streams`` waits up to the pool's ``open_timeout`` for a slot and
  then fails with the retryable ``code="capacity"`` error — which the
  admission-before-compile ordering guarantees cost no compile work —
  so the wire-level reject is cheap and honest.
* **Graceful drain.**  :meth:`stop` stops accepting, closes client
  connections, closes every remaining stream (``close_all``), then
  drains in-flight background revises under one shared deadline
  (``drain_revisions``); revise threads still alive afterwards are
  reported via ``gateway.drain_stragglers`` and the return value.

Metrics (the ``gateway.*`` family, see ``docs/observability.md``) are
recorded under a dedicated lock, so attaching the same registry as the
pool keeps every serving + gateway counter in one export.
"""

from __future__ import annotations

import asyncio
import threading
from time import perf_counter
from typing import Dict, Optional, Set

from repro.errors import ServingError
from repro.gateway import protocol
from repro.serving.pool import MatcherPool


class GatewayServer:
    """Serve a :class:`MatcherPool` over TCP (newline-delimited JSON).

    Parameters
    ----------
    pool:
        The shared pool to serve.  When omitted, a private one is built
        from ``pool_kwargs`` (forwarded verbatim to
        :class:`~repro.serving.MatcherPool` — ``config``, ``backend``,
        ``max_streams``, ``open_timeout``, ``fused``, ``drift``, ...).
    host / port:
        Bind address; ``port=0`` picks a free port (``self.port`` holds
        the bound one after :meth:`start` — the tests and the embedded
        scenario runner rely on this).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` receiving
        the ``gateway.*`` family.  Defaults to the pool's registry so one
        export covers both tiers.
    drain_timeout:
        Shared deadline (seconds) for :meth:`stop`'s revise drain.
    max_line_bytes:
        Reader limit per request line (a rogue client cannot balloon
        memory; overruns answer ``bad_request`` and drop the connection).
    log:
        Optional ``print``-like callable for lifecycle messages.
    """

    def __init__(
        self,
        pool: Optional[MatcherPool] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics=None,
        drain_timeout: float = 10.0,
        max_line_bytes: int = protocol.MAX_LINE_BYTES,
        log=None,
        **pool_kwargs,
    ):
        if pool is None:
            pool = MatcherPool(metrics=metrics, **pool_kwargs)
        elif pool_kwargs:
            raise ValueError(
                "pass pool kwargs or a prebuilt pool, not both: "
                f"{sorted(pool_kwargs)}"
            )
        self.pool = pool
        self.host = host
        self._requested_port = int(port)
        self.metrics = metrics if metrics is not None else pool.metrics
        self.drain_timeout = float(drain_timeout)
        self.max_line_bytes = int(max_line_bytes)
        self.log = log
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set[asyncio.Task] = set()
        #: stream id → connection id (ownership map; gateway-level state).
        self._owners: Dict[int, int] = {}
        self._next_conn_id = 0
        self._stopping = False
        #: guards gateway metric records + the ownership map (pool calls
        #: run in worker threads; bookkeeping must stay exact).
        self._glock = threading.Lock()
        self._connections_total = 0
        self._requests_total = 0
        self._rejects_total = 0
        self._orphans_closed = 0
        self._drained_streams = 0
        self._drain_stragglers = 0

    # ------------------------------------------------------------------
    # metrics (called with self._glock held)
    # ------------------------------------------------------------------
    def _metric_inc(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _metric_observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _metric_gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    def stats(self) -> Dict[str, object]:
        """Gateway-level counters + the wrapped pool's stats."""
        with self._glock:
            return {
                "protocol_version": protocol.PROTOCOL_VERSION,
                "connections": self._connections_total,
                "active_connections": len(self._handlers),
                "requests": self._requests_total,
                "rejects": self._rejects_total,
                "orphans_closed": self._orphans_closed,
                "drained_streams": self._drained_streams,
                "drain_stragglers": self._drain_stragglers,
                "pool": self.pool.stats(),
            }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=self.max_line_bytes,
        )
        if self.log is not None:
            self.log(f"gateway listening on {self.host}:{self.port}")

    async def serve_forever(self) -> None:
        """Block serving until cancelled (``repro serve`` runs this)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> int:
        """Graceful drain: stop accepting, close streams, drain revises.

        Returns the number of revise threads still running when the
        shared drain deadline expired (0 on a clean shutdown; also
        recorded as ``gateway.drain_stragglers``).
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in tuple(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        closed = await asyncio.to_thread(self.pool.close_all)
        stragglers = await asyncio.to_thread(
            self.pool.drain_revisions, self.drain_timeout
        )
        with self._glock:
            self._drained_streams += len(closed)
            self._metric_inc("gateway.drained_streams", len(closed))
            self._drain_stragglers = stragglers
            self._metric_gauge("gateway.drain_stragglers", stragglers)
            self._owners.clear()
        if self.log is not None:
            self.log(
                f"gateway drained: {len(closed)} streams closed, "
                f"{stragglers} revise stragglers"
            )
        return stragglers

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        with self._glock:
            conn_id = self._next_conn_id
            self._next_conn_id += 1
            self._connections_total += 1
            self._metric_inc("gateway.connections")
            self._metric_gauge("gateway.active_connections", len(self._handlers))
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    # Oversized line or torn connection: the framing is
                    # unrecoverable, drop the client.
                    break
                if not line:
                    break  # EOF: client hung up
                if not line.strip():
                    continue
                response = await self._handle_line(conn_id, line)
                try:
                    writer.write(protocol.encode_line(response))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
        except asyncio.CancelledError:
            pass  # server stopping; fall through to cleanup
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
            except Exception:
                pass
            await self._cleanup_connection(conn_id)
            with self._glock:
                self._metric_gauge(
                    "gateway.active_connections", len(self._handlers)
                )

    async def _cleanup_connection(self, conn_id: int) -> None:
        """Close every stream the dropped connection still owned."""
        with self._glock:
            orphaned = [
                sid for sid, owner in self._owners.items() if owner == conn_id
            ]
            for sid in orphaned:
                del self._owners[sid]
            if self._stopping:
                # Graceful shutdown: the drain's close_all closes these
                # (counted as drained, not orphaned).
                return
        for sid in orphaned:
            try:
                await asyncio.to_thread(self.pool.close, sid)
            except ServingError:
                pass  # already closed (e.g. the drain got there first)
            else:
                with self._glock:
                    self._orphans_closed += 1
                    self._metric_inc("gateway.orphans_closed")

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    async def _handle_line(self, conn_id: int, line: bytes) -> Dict:
        request_id = None
        started = perf_counter()
        try:
            message = protocol.decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            if op not in protocol.KNOWN_OPS:
                raise protocol.bad_request(
                    f"unknown op {op!r} (expected one of "
                    f"{', '.join(protocol.KNOWN_OPS)})"
                )
            with self._glock:
                self._requests_total += 1
                self._metric_inc("gateway.requests")
                self._metric_inc(f"gateway.requests.{op}")
            handler = getattr(self, f"_op_{op}")
            body = await handler(conn_id, message)
        except ServingError as exc:
            if exc.code == "capacity":
                with self._glock:
                    self._rejects_total += 1
                    self._metric_inc("gateway.rejects")
            return {
                "id": request_id,
                "ok": False,
                "error": protocol.error_to_wire(exc),
            }
        except Exception as exc:  # noqa: BLE001 - fault barrier per request
            return {
                "id": request_id,
                "ok": False,
                "error": {
                    "code": "internal",
                    "retryable": False,
                    "message": f"{type(exc).__name__}: {exc}",
                },
            }
        finally:
            with self._glock:
                self._metric_observe(
                    "gateway.request_ms", (perf_counter() - started) * 1e3
                )
        body["id"] = request_id
        body["ok"] = True
        return body

    def _owned_stream(self, conn_id: int, message) -> int:
        """The request's stream id, verified against the ownership map."""
        sid = protocol.require_int(message, "stream")
        with self._glock:
            owner = self._owners.get(sid)
        if owner is not None and owner != conn_id:
            raise ServingError(
                f"stream {sid} belongs to another connection",
                code="not_owner",
                stream_id=sid,
            )
        # Unknown ids fall through: the pool classifies them exactly
        # (unknown_stream vs stream_closed).
        return sid

    # -- verbs ----------------------------------------------------------
    async def _op_open(self, conn_id: int, message) -> Dict:
        dfa = protocol.dfa_from_wire(message.get("dfa"))
        training = None
        if message.get("training_b64") is not None:
            training = protocol.segment_from_wire(
                message["training_b64"], "training_b64"
            )
        scheme = message.get("scheme")
        if scheme is not None and not isinstance(scheme, str):
            raise protocol.bad_request("scheme must be a string or null")
        started = perf_counter()
        sid = await asyncio.to_thread(
            lambda: self.pool.open(
                dfa, training_input=training, scheme=scheme
            )
        )
        with self._glock:
            self._owners[sid] = conn_id
            self._metric_observe(
                "gateway.open_ms", (perf_counter() - started) * 1e3
            )
        return {"stream": sid}

    async def _op_feed(self, conn_id: int, message) -> Dict:
        sid = self._owned_stream(conn_id, message)
        segment = protocol.segment_from_wire(message.get("segment_b64"))
        started = perf_counter()
        result = await asyncio.to_thread(self.pool.feed, sid, segment)
        with self._glock:
            self._metric_observe(
                "gateway.feed_ms", (perf_counter() - started) * 1e3
            )
        return {
            "end_state": int(result.end_state),
            "accepts": bool(result.accepts),
            "symbols": len(segment),
        }

    async def _op_feed_many(self, conn_id: int, message) -> Dict:
        feeds = message.get("feeds")
        if not isinstance(feeds, list):
            raise protocol.bad_request("feeds must be a list of objects")
        batch = []
        for i, item in enumerate(feeds):
            if not isinstance(item, dict):
                raise protocol.bad_request(f"feeds[{i}] must be an object")
            sid = self._owned_stream(conn_id, item)
            batch.append(
                (sid, protocol.segment_from_wire(item.get("segment_b64")))
            )
        started = perf_counter()
        outcomes = await asyncio.to_thread(self.pool.feed_many, batch)
        with self._glock:
            self._metric_observe(
                "gateway.feed_ms", (perf_counter() - started) * 1e3
            )
        return {
            "outcomes": [
                {
                    "stream": outcome.stream_id,
                    "ok": outcome.ok,
                    "end_state": outcome.end_state,
                    "accepts": outcome.accepts,
                    "symbols": outcome.symbols,
                    "fused": outcome.fused,
                    "error": (
                        protocol.error_to_wire(outcome.error)
                        if outcome.error is not None
                        else None
                    ),
                }
                for outcome in outcomes
            ]
        }

    async def _op_close(self, conn_id: int, message) -> Dict:
        sid = self._owned_stream(conn_id, message)
        stats = await asyncio.to_thread(self.pool.close, sid)
        with self._glock:
            self._owners.pop(sid, None)
        return {"stats": protocol.stream_stats_to_wire(stats)}

    async def _op_stats(self, conn_id: int, message) -> Dict:
        return {"stats": self.stats()}


__all__ = ["GatewayServer"]
