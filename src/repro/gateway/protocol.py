"""Wire protocol for the network gateway: newline-delimited JSON.

One request or response per line, UTF-8 JSON, ``\\n`` terminated.  The
protocol is deliberately boring — any language with a socket and a JSON
parser is a client — and maps one-to-one onto the
:class:`~repro.serving.MatcherPool` surface:

Requests (``op`` selects the verb, ``id`` is echoed in the response)::

    {"op": "open",      "id": 1, "dfa": {...}, "training_b64": "...",
     "scheme": null}
    {"op": "feed",      "id": 2, "stream": 0, "segment_b64": "..."}
    {"op": "feed_many", "id": 3, "feeds": [{"stream": 0,
                                            "segment_b64": "..."}, ...]}
    {"op": "close",     "id": 4, "stream": 0}
    {"op": "stats",     "id": 5}

Responses carry ``{"id": ..., "ok": true, ...}`` on success or
``{"id": ..., "ok": false, "error": {...}}`` on failure, where the error
object is the wire form of a structured
:class:`~repro.errors.ServingError` — ``code`` / ``retryable`` /
``message`` (+ ``stream_id`` / ``fingerprint`` when applicable).  A
rejected open at capacity therefore arrives as
``{"code": "capacity", "retryable": true}``: the wire-level backpressure
signal (cheap by construction — admission runs before any compile).
The gateway adds two codes of its own on top of the serving tier's:
``"bad_request"`` (malformed JSON, unknown op, missing/ill-typed field)
and ``"not_owner"`` (a connection addressed a stream another connection
opened).

Automata travel inline: ``dfa`` is the dense-table JSON form produced by
:func:`dfa_to_wire` (``table`` / ``start`` / ``accepting`` / ``name``),
so a tenant submits its machine with its first ``open``.  Byte segments
and training inputs are base64 (``*_b64`` fields).  ``NaN`` cycle totals
(answer-only backends) are mapped to JSON ``null`` — the wire never
carries bare ``NaN`` tokens.
"""

from __future__ import annotations

import base64
import json
import math
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.errors import ServingError

#: Protocol revision, reported by the ``stats`` op.
PROTOCOL_VERSION = 1

#: Ops a well-formed request may carry.
KNOWN_OPS = ("open", "feed", "feed_many", "close", "stats")

#: Upper bound on one request line (guards the reader against a rogue
#: client streaming an unbounded line; DFA tables dominate real sizes).
MAX_LINE_BYTES = 32 * 1024 * 1024


def bad_request(message: str) -> ServingError:
    """A structurally invalid request (never retryable)."""
    return ServingError(message, code="bad_request")


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
def segment_to_wire(segment) -> str:
    """Base64 form of a byte segment (accepts bytes or uint8 arrays)."""
    if isinstance(segment, np.ndarray):
        segment = segment.astype(np.uint8, copy=False).tobytes()
    return base64.b64encode(bytes(segment)).decode("ascii")


def segment_from_wire(value: Any, field: str = "segment_b64") -> bytes:
    """Decode a base64 segment field, raising ``bad_request`` on junk."""
    if not isinstance(value, str):
        raise bad_request(f"{field} must be a base64 string")
    try:
        return base64.b64decode(value.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise bad_request(f"{field} is not valid base64: {exc}") from exc


def dfa_to_wire(dfa: DFA) -> Dict[str, Any]:
    """JSON-safe dense-table form of ``dfa``."""
    return {
        "table": np.asarray(dfa.table).tolist(),
        "start": int(dfa.start),
        "accepting": sorted(int(s) for s in dfa.accepting),
        "name": str(dfa.name),
    }


def dfa_from_wire(payload: Any) -> DFA:
    """Rebuild a :class:`DFA` from its wire form (``bad_request`` on junk)."""
    if not isinstance(payload, Mapping):
        raise bad_request("dfa must be an object with table/start/accepting")
    try:
        table = np.asarray(payload["table"], dtype=np.int64)
        start = int(payload["start"])
        accepting = frozenset(int(s) for s in payload.get("accepting", ()))
        name = str(payload.get("name", "wire-dfa"))
    except (KeyError, TypeError, ValueError) as exc:
        raise bad_request(f"malformed dfa payload: {exc}") from exc
    if table.ndim != 2:
        raise bad_request(
            f"dfa table must be 2-D, got {table.ndim}-D"
        )
    try:
        return DFA(table=table, start=start, accepting=accepting, name=name)
    except Exception as exc:  # AutomatonError: invalid machine
        raise bad_request(f"invalid dfa: {exc}") from exc


def error_to_wire(exc: ServingError) -> Dict[str, Any]:
    """Wire form of a structured serving error."""
    out: Dict[str, Any] = {
        "code": exc.code or "internal",
        "retryable": bool(exc.retryable),
        "message": str(exc),
    }
    if exc.stream_id is not None:
        out["stream_id"] = exc.stream_id
    if exc.fingerprint is not None:
        out["fingerprint"] = exc.fingerprint
    return out


def error_from_wire(payload: Mapping) -> ServingError:
    """Rebuild the structured error a failed response carries."""
    return ServingError(
        str(payload.get("message", "gateway error")),
        code=payload.get("code"),
        retryable=bool(payload.get("retryable", False)),
        stream_id=payload.get("stream_id"),
        fingerprint=payload.get("fingerprint"),
    )


# ----------------------------------------------------------------------
# line framing
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and non-finite floats into portable JSON."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        value = float(value)
        return value if math.isfinite(value) else None
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def encode_line(message: Mapping) -> bytes:
    """One protocol message as a ``\\n``-terminated JSON line."""
    return (
        json.dumps(
            _jsonable(message), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        + b"\n"
    )


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict (``bad_request`` on junk)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise bad_request(f"invalid JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise bad_request("each line must be one JSON object")
    return message


def require_int(message: Mapping, field: str) -> int:
    """A required integer field, with a structured error when missing."""
    value = message.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise bad_request(f"request field {field!r} must be an integer")
    return value


def stream_stats_to_wire(stats) -> Dict[str, Any]:
    """Wire form of a :class:`~repro.serving.StreamStats` close summary."""
    return _jsonable(
        {
            "stream": int(stats.stream_id),
            "fingerprint": stats.fingerprint,
            "canonical_fingerprint": stats.canonical_fingerprint,
            "scheme": stats.scheme,
            "segments": int(stats.segments),
            "total_symbols": int(stats.total_symbols),
            "total_cycles": stats.total_cycles,
            "end_state": int(stats.end_state),
            "accepts": bool(stats.accepts),
            "scheme_switches": int(stats.scheme_switches),
            "decision_path": list(stats.decision_path),
        }
    )


__all__ = [
    "KNOWN_OPS",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "bad_request",
    "decode_line",
    "dfa_from_wire",
    "dfa_to_wire",
    "encode_line",
    "error_from_wire",
    "error_to_wire",
    "require_int",
    "segment_from_wire",
    "segment_to_wire",
    "stream_stats_to_wire",
]
