"""Asyncio client for the gateway's newline-delimited-JSON protocol.

:class:`GatewayClient` is the reference client: the scenario runner and
the integration tests drive the server with it over real sockets.  One
client is one connection; requests on it are strictly sequential (send,
await response, send the next) which mirrors the server's per-connection
contract — open several clients for concurrency.

Wire errors are re-raised as the structured
:class:`~repro.errors.ServingError` they encode, so a caller retrying a
``capacity`` reject writes exactly the same ``except`` clause it would
against an in-process :class:`~repro.serving.MatcherPool`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError
from repro.gateway import protocol


class GatewayClient:
    """One TCP connection speaking the gateway protocol.

    Build with :meth:`connect`; close with :meth:`aclose` (or use as an
    async context manager).
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        #: serializes request/response pairs on this connection.
        self._turn = asyncio.Lock()

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: float = 10.0
    ) -> "GatewayClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                host, port, limit=protocol.MAX_LINE_BYTES
            ),
            timeout,
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Close the connection (orphaned streams are the server's to reap)."""
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    async def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        async with self._turn:
            request_id = self._next_id
            self._next_id += 1
            message = {"op": op, "id": request_id, **fields}
            self._writer.write(protocol.encode_line(message))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServingError(
                f"gateway closed the connection during {op!r}",
                code="connection_closed",
            )
        response = protocol.decode_line(line)
        if response.get("id") != request_id:
            raise ServingError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id} (op {op!r})",
                code="protocol_error",
            )
        if not response.get("ok"):
            raise protocol.error_from_wire(response.get("error") or {})
        return response

    # ------------------------------------------------------------------
    async def open(
        self,
        dfa,
        *,
        training: Optional[bytes] = None,
        scheme: Optional[str] = None,
    ) -> int:
        """Open a stream for ``dfa``; returns the server's stream id."""
        response = await self._request(
            "open",
            dfa=protocol.dfa_to_wire(dfa),
            training_b64=(
                protocol.segment_to_wire(training)
                if training is not None
                else None
            ),
            scheme=scheme,
        )
        return int(response["stream"])

    async def feed(self, stream: int, segment) -> Dict[str, Any]:
        """Feed one segment; returns ``end_state`` / ``accepts`` / ``symbols``."""
        response = await self._request(
            "feed",
            stream=int(stream),
            segment_b64=protocol.segment_to_wire(segment),
        )
        return {
            "end_state": response["end_state"],
            "accepts": response["accepts"],
            "symbols": response["symbols"],
        }

    async def feed_many(
        self, feeds: Sequence[Tuple[int, Any]]
    ) -> List[Dict[str, Any]]:
        """Gang-feed many ``(stream, segment)`` pairs in one request."""
        response = await self._request(
            "feed_many",
            feeds=[
                {
                    "stream": int(sid),
                    "segment_b64": protocol.segment_to_wire(segment),
                }
                for sid, segment in feeds
            ],
        )
        return list(response["outcomes"])

    async def close_stream(self, stream: int) -> Dict[str, Any]:
        """Close a stream; returns its wire-form close summary."""
        response = await self._request("close", stream=int(stream))
        return dict(response["stats"])

    async def stats(self) -> Dict[str, Any]:
        """Gateway + pool stats snapshot."""
        response = await self._request("stats")
        return dict(response["stats"])


__all__ = ["GatewayClient"]
