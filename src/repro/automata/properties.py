"""FSM property profiling used by the transformation and the scheme selector.

Three families of properties drive GSpecPal's decisions:

* **state frequency** — which states the DFA actually visits on realistic
  input; the frequency-based transformation (Fig. 4) promotes the hottest
  states' rows into (simulated) shared memory;
* **state convergence** — how quickly runs started from *all* states collapse
  onto few states (``#uniqStates(10 trans.)`` in Table II); fast convergence
  is what makes end-state forwarding (SRE) effective;
* **reachability** — sanity structure used throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.automata.dfa import DFA, _as_symbol_array
from repro.errors import AutomatonError


@dataclass(frozen=True)
class StateFrequencyProfile:
    """Result of profiling state-visit frequencies on a training input.

    Attributes
    ----------
    counts:
        ``(n_states,)`` visit counts.
    order:
        State ids sorted hottest-first (ties broken by state id so the
        profile is deterministic).
    sample_length:
        Number of input symbols the profile was collected over.
    """

    counts: np.ndarray
    order: np.ndarray
    sample_length: int

    @property
    def frequencies(self) -> np.ndarray:
        """Visit frequencies normalized to sum to 1 (zeros if empty sample)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / float(total)

    def rank_of(self) -> np.ndarray:
        """``rank[q]`` = hotness rank of state ``q`` (0 = hottest)."""
        rank = np.empty_like(self.order)
        rank[self.order] = np.arange(self.order.size)
        return rank

    def hot_states(self, capacity: int) -> np.ndarray:
        """The ``capacity`` hottest state ids."""
        return self.order[: max(0, int(capacity))]


def profile_state_frequencies(
    dfa: DFA,
    training_input,
    start: Optional[int] = None,
) -> StateFrequencyProfile:
    """Count state visits while running ``dfa`` over ``training_input``.

    This is the paper's offline profiling pass: "an offline profiling is
    applied to count the frequency of each state in the original transition
    table" using a small slice (0.5%) of representative input.
    """
    symbols = _as_symbol_array(training_input)
    path = dfa.run_path(symbols, start=start)
    counts = np.bincount(path, minlength=dfa.n_states).astype(np.int64)
    # Hottest first; break frequency ties by state id for determinism.
    order = np.lexsort((np.arange(dfa.n_states), -counts))
    return StateFrequencyProfile(counts=counts, order=order, sample_length=len(symbols))


def unique_states_after(dfa: DFA, window, steps: Optional[int] = None) -> int:
    """Number of distinct end states after running ``window`` from all states.

    ``#uniqStates(10 trans.)`` in Table II is this quantity with a 10-symbol
    window.  A small number means the FSM converges quickly, i.e. forwarding
    the predecessor's end state is likely to be correct.
    """
    symbols = _as_symbol_array(window)
    if steps is not None:
        symbols = symbols[:steps]
    ends = dfa.run_all_states(symbols)
    return int(np.unique(ends).size)


def convergence_profile(
    dfa: DFA,
    training_input,
    steps: int = 10,
    n_windows: int = 32,
    seed: int = 0,
) -> np.ndarray:
    """Sample ``n_windows`` windows of ``steps`` symbols and report the number
    of unique surviving states for each.

    The mean of this vector is the convergence statistic the selector
    consumes ("counting the number of unique states after running 10 steps of
    transitions starting from all states").
    """
    symbols = _as_symbol_array(training_input)
    if len(symbols) < steps:
        raise AutomatonError(
            f"training input too short for convergence profiling "
            f"({len(symbols)} < {steps} symbols)"
        )
    rng = np.random.default_rng(seed)
    max_offset = len(symbols) - steps
    offsets = rng.integers(0, max_offset + 1, size=n_windows)
    out = np.empty(n_windows, dtype=np.int64)
    for i, off in enumerate(offsets):
        out[i] = unique_states_after(dfa, symbols[off : off + steps])
    return out


def reachable_states(dfa: DFA) -> np.ndarray:
    """State ids reachable from the start state (sorted)."""
    seen = np.zeros(dfa.n_states, dtype=bool)
    seen[dfa.start] = True
    frontier = np.array([dfa.start], dtype=np.int64)
    while frontier.size:
        nxt = np.unique(dfa.table[frontier].ravel())
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    return np.flatnonzero(seen)


def is_complete(dfa: DFA) -> bool:
    """Dense-table DFAs are complete by construction; kept for API symmetry."""
    return dfa.table.shape[1] > 0


def absorbing_states(dfa: DFA) -> np.ndarray:
    """States with all transitions pointing to themselves (sticky matches)."""
    idx = np.arange(dfa.n_states)[:, None]
    return np.flatnonzero((dfa.table == idx).all(axis=1))


def are_equivalent(a: DFA, b: DFA) -> bool:
    """True iff ``a`` and ``b`` accept the same language.

    Breadth-first search over the product automaton, vectorized one wave at
    a time: each reachable pair ``(qa, qb)`` is a single int64 key
    ``qa * b.n_states + qb``; a wave's successors on *all* symbols come from
    two table gathers, and the acceptance-agreement check is one mask
    comparison per wave.  Runs in ``O(|reachable product| × n_symbols)``.

    DFAs over different alphabet sizes are never equivalent (the language is
    a set of strings over a fixed alphabet).
    """
    if a.n_symbols != b.n_symbols:
        return False
    acc_a = a.accepting_mask
    acc_b = b.accepting_mask
    nb = b.n_states
    seen = {int(a.start) * nb + int(b.start)}
    pairs_a = np.array([a.start], dtype=np.int64)
    pairs_b = np.array([b.start], dtype=np.int64)
    while pairs_a.size:
        if not np.array_equal(acc_a[pairs_a], acc_b[pairs_b]):
            return False
        succ_a = a.table[pairs_a].astype(np.int64).ravel()
        succ_b = b.table[pairs_b].astype(np.int64).ravel()
        keys = np.unique(succ_a * nb + succ_b)
        fresh = np.array(
            [k for k in keys.tolist() if k not in seen], dtype=np.int64
        )
        seen.update(fresh.tolist())
        pairs_a, pairs_b = fresh // nb, fresh % nb
    return True
