"""Finite automata substrate: DFAs, NFAs, a regex compiler and DFA tooling.

This subpackage is a self-contained replacement for the pipeline the paper
builds on RE2: regular expressions are parsed into Thompson NFAs, determinized
with a vectorized bitset subset construction, minimized with vectorized
partition refinement (canonically renumbered, so language-equivalent DFAs
share bit-identical minimal tables), and materialized as dense numpy
transition tables ready for the lockstep GPU executor.
"""

from repro.automata.bitset import BitsetNFA
from repro.automata.dfa import DFA, run_lockstep
from repro.automata.nfa import NFA, nfa_to_dfa
from repro.automata.regex import compile_regex, compile_disjunction, parse_regex
from repro.automata.minimize import canonical_fingerprint, canonical_form, minimize_dfa
from repro.automata.moore import minimize_dfa_moore
from repro.automata.properties import (
    StateFrequencyProfile,
    are_equivalent,
    convergence_profile,
    profile_state_frequencies,
    reachable_states,
    unique_states_after,
)
from repro.automata.transform import TransformedDFA, frequency_transform

__all__ = [
    "BitsetNFA",
    "DFA",
    "NFA",
    "minimize_dfa_moore",
    "StateFrequencyProfile",
    "TransformedDFA",
    "are_equivalent",
    "canonical_fingerprint",
    "canonical_form",
    "compile_disjunction",
    "compile_regex",
    "convergence_profile",
    "frequency_transform",
    "minimize_dfa",
    "nfa_to_dfa",
    "parse_regex",
    "profile_state_frequencies",
    "reachable_states",
    "run_lockstep",
    "unique_states_after",
]
