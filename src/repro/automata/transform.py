"""Frequency-based DFA transformation (paper §IV-B, Fig. 4).

The transformation re-labels states so that hotness rank *is* the state id:
after profiling, state 0 is the most frequently visited state, state 1 the
next, and so on.  Two benefits on (simulated) GPU hardware:

1. The hot prefix of the transition table — the rows belonging to the first
   ``H`` states, where ``H`` is chosen so ``H × n_symbols`` entries fit in
   shared memory — can be copied to shared memory once before the kernel
   runs.
2. The "is this transition cached?" check degenerates to ``state < H``
   instead of a hash-table lookup (the approach PM used), removing one shared
   memory access and one hash computation per input symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.properties import StateFrequencyProfile, profile_state_frequencies
from repro.errors import AutomatonError


@dataclass(frozen=True)
class TransformedDFA:
    """A frequency-transformed DFA plus its state-mapping rules.

    Attributes
    ----------
    dfa:
        The re-labelled DFA (semantically equivalent to the original).
    to_new:
        ``to_new[q_old] -> q_new`` mapping rule.
    to_old:
        Inverse mapping, used to translate results back for reporting.
    hot_state_count:
        Number of leading (hottest) states whose table rows are promoted to
        shared memory.
    """

    dfa: DFA
    to_new: np.ndarray
    to_old: np.ndarray
    hot_state_count: int

    def map_state_to_new(self, q_old: int) -> int:
        """Translate an original state id into the transformed numbering."""
        return int(self.to_new[q_old])

    def map_state_to_old(self, q_new: int) -> int:
        """Translate a transformed state id back to the original numbering."""
        return int(self.to_old[q_new])

    def is_hot(self, q_new: int) -> bool:
        """Hotness check in the transformed numbering — a plain compare."""
        return q_new < self.hot_state_count

    @property
    def hot_fraction(self) -> float:
        """Fraction of states resident in shared memory."""
        return self.hot_state_count / float(self.dfa.n_states)


def frequency_transform(
    dfa: DFA,
    profile: Optional[StateFrequencyProfile] = None,
    *,
    training_input=None,
    shared_memory_entries: Optional[int] = None,
) -> TransformedDFA:
    """Apply the frequency-based transformation of Fig. 4.

    Parameters
    ----------
    profile:
        A pre-computed :class:`StateFrequencyProfile`.  If omitted,
        ``training_input`` must be given and a profile is collected here.
    shared_memory_entries:
        Capacity of the (simulated) shared-memory table cache, in table
        *entries*.  The hot state count is
        ``min(n_states, shared_memory_entries // n_symbols)``.  When omitted,
        all states are considered hot (useful for unit tests).
    """
    if profile is None:
        if training_input is None:
            raise AutomatonError(
                "frequency_transform needs either a profile or a training_input"
            )
        profile = profile_state_frequencies(dfa, training_input)
    if profile.counts.shape[0] != dfa.n_states:
        raise AutomatonError(
            "profile was collected on a DFA with a different state count"
        )

    order = profile.order  # hottest first
    to_new = np.empty(dfa.n_states, dtype=np.int64)
    to_new[order] = np.arange(dfa.n_states)
    to_old = order.copy()

    transformed = dfa.renumbered(to_new, name=f"{dfa.name}/freq-transformed")

    if shared_memory_entries is None:
        hot = dfa.n_states
    else:
        hot = min(dfa.n_states, int(shared_memory_entries) // max(1, dfa.n_symbols))
    return TransformedDFA(
        dfa=transformed,
        to_new=to_new,
        to_old=to_old,
        hot_state_count=int(hot),
    )


def transformation_from_permutation(
    dfa: DFA,
    to_new: np.ndarray,
    hot_state_count: int,
) -> TransformedDFA:
    """Rebuild a :class:`TransformedDFA` from a stored permutation.

    The compile-once/serve-many split serializes only the transformation's
    *decisions* — the hotness permutation and the hot-prefix size — not the
    renumbered table.  This reconstructs the executable artifact from those
    decisions with one vectorized renumbering; no training input or
    frequency profile is needed.
    """
    to_new = np.asarray(to_new, dtype=np.int64)
    if to_new.shape != (dfa.n_states,):
        raise AutomatonError(
            f"permutation has {to_new.shape} entries for {dfa.n_states} states"
        )
    hot = int(hot_state_count)
    if not (0 <= hot <= dfa.n_states):
        raise AutomatonError(
            f"hot_state_count {hot} out of range [0, {dfa.n_states}]"
        )
    to_old = np.empty_like(to_new)
    to_old[to_new] = np.arange(dfa.n_states)
    transformed = dfa.renumbered(to_new, name=f"{dfa.name}/freq-transformed")
    return TransformedDFA(
        dfa=transformed,
        to_new=to_new,
        to_old=to_old,
        hot_state_count=hot,
    )


def hot_access_fraction(transformed: TransformedDFA, data, start: Optional[int] = None) -> float:
    """Fraction of transitions on ``data`` served by the hot (shared) rows.

    Useful to validate that the transformation concentrates accesses: on the
    training distribution this should be close to the cumulative frequency
    mass of the hot states.
    """
    path = transformed.dfa.run_path(data, start=start)
    visited = path[:-1]  # the state a transition is *looked up from*
    if visited.size == 0:
        return 1.0
    return float(np.count_nonzero(visited < transformed.hot_state_count) / visited.size)
