"""A regular-expression compiler (the library's RE2 substitute).

Supports the constructs the benchmark rule sets use: literals, escapes,
character classes with ranges and negation, the ``.`` wildcard, alternation,
grouping, and the ``*``, ``+``, ``?``, ``{m}``, ``{m,}``, ``{m,n}``
quantifiers.  Patterns compile to Thompson NFAs over a byte alphabet and from
there (via the subset construction and Hopcroft minimization) to dense-table
DFAs.

The grammar is the standard one::

    alternation ::= concat ('|' concat)*
    concat      ::= repeat*
    repeat      ::= atom ('*' | '+' | '?' | '{' bounds '}')*
    atom        ::= literal | '.' | class | '(' alternation ')'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.automata.dfa import DFA
from repro.automata.minimize import minimize_dfa
from repro.automata.nfa import EPSILON, NFA, nfa_to_dfa, union_nfas
from repro.errors import RegexSyntaxError

DEFAULT_ALPHABET = 256


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Node:
    """Base class for regex AST nodes."""


@dataclass(frozen=True)
class Literal(Node):
    """A set of byte values matching a single input symbol."""

    symbols: FrozenSet[int]


@dataclass(frozen=True)
class Concat(Node):
    parts: Tuple[Node, ...]


@dataclass(frozen=True)
class Alternate(Node):
    options: Tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    """``child{min, max}``; ``max is None`` means unbounded."""

    child: Node
    min: int
    max: Optional[int]


_ESCAPE_CLASSES = {
    "d": frozenset(range(ord("0"), ord("9") + 1)),
    "w": frozenset(
        set(range(ord("a"), ord("z") + 1))
        | set(range(ord("A"), ord("Z") + 1))
        | set(range(ord("0"), ord("9") + 1))
        | {ord("_")}
    ),
    "s": frozenset({ord(" "), ord("\t"), ord("\n"), ord("\r"), 0x0B, 0x0C}),
}
_ESCAPE_LITERALS = {
    "n": ord("\n"),
    "t": ord("\t"),
    "r": ord("\r"),
    "f": 0x0C,
    "v": 0x0B,
    "0": 0,
    "a": 0x07,
}
_SPECIAL = set("|*+?(){}[].\\")


class _Parser:
    """Recursive-descent parser producing the AST above."""

    def __init__(self, pattern: str, n_symbols: int):
        self.pattern = pattern
        self.pos = 0
        self.n_symbols = n_symbols

    # -- low-level cursor ------------------------------------------------
    def _peek(self) -> Optional[str]:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def _next(self) -> str:
        ch = self._peek()
        if ch is None:
            raise RegexSyntaxError("unexpected end of pattern", self.pattern, self.pos)
        self.pos += 1
        return ch

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    def _check_symbol(self, value: int) -> int:
        if value >= self.n_symbols:
            raise self._error(
                f"symbol {value} does not fit alphabet of size {self.n_symbols}"
            )
        return value

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error(f"unexpected character {self._peek()!r}")
        return node

    def _alternation(self) -> Node:
        options = [self._concat()]
        while self._peek() == "|":
            self._next()
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return Alternate(tuple(options))

    def _concat(self) -> Node:
        parts: List[Node] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repeat())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repeat(self) -> Node:
        node = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self._next()
                node = Repeat(node, 0, None)
            elif ch == "+":
                self._next()
                node = Repeat(node, 1, None)
            elif ch == "?":
                self._next()
                node = Repeat(node, 0, 1)
            elif ch == "{":
                node = Repeat(node, *self._bounds())
            else:
                return node

    def _bounds(self) -> Tuple[int, Optional[int]]:
        assert self._next() == "{"
        digits = ""
        while self._peek() is not None and self._peek().isdigit():
            digits += self._next()
        if not digits:
            raise self._error("expected a repetition count after '{'")
        lo = int(digits)
        ch = self._next()
        if ch == "}":
            return lo, lo
        if ch != ",":
            raise self._error("expected ',' or '}' in repetition bounds")
        digits = ""
        while self._peek() is not None and self._peek().isdigit():
            digits += self._next()
        if self._next() != "}":
            raise self._error("unterminated repetition bounds")
        hi = int(digits) if digits else None
        if hi is not None and hi < lo:
            raise self._error(f"repetition bounds out of order: {{{lo},{hi}}}")
        return lo, hi

    def _atom(self) -> Node:
        ch = self._peek()
        if ch is None:
            raise self._error("expected an atom")
        if ch == "(":
            self._next()
            node = self._alternation()
            if self._peek() != ")":
                raise self._error("unbalanced '('")
            self._next()
            return node
        if ch == "[":
            return self._char_class()
        if ch == ".":
            self._next()
            return Literal(frozenset(range(self.n_symbols)))
        if ch == "\\":
            self._next()
            return self._escape()
        if ch in "*+?{":
            raise self._error(f"quantifier {ch!r} with nothing to repeat")
        if ch in ")|":
            raise self._error(f"unexpected {ch!r}")
        self._next()
        return Literal(frozenset({self._check_symbol(ord(ch))}))

    def _escape(self) -> Node:
        ch = self._next()
        if ch in _ESCAPE_CLASSES:
            syms = frozenset(s for s in _ESCAPE_CLASSES[ch] if s < self.n_symbols)
            return Literal(syms)
        if ch in ("D", "W", "S"):
            base = _ESCAPE_CLASSES[ch.lower()]
            syms = frozenset(s for s in range(self.n_symbols) if s not in base)
            return Literal(syms)
        if ch == "x":
            hexdigits = self._next() + self._next()
            try:
                value = int(hexdigits, 16)
            except ValueError:
                raise self._error(f"bad hex escape \\x{hexdigits}")
            return Literal(frozenset({self._check_symbol(value)}))
        if ch in _ESCAPE_LITERALS:
            return Literal(frozenset({self._check_symbol(_ESCAPE_LITERALS[ch])}))
        # Any other escaped character is itself (covers \\ \. \[ etc.).
        return Literal(frozenset({self._check_symbol(ord(ch))}))

    def _char_class(self) -> Node:
        assert self._next() == "["
        negated = False
        if self._peek() == "^":
            negated = True
            self._next()
        symbols: set = set()
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                raise self._error("unterminated character class")
            if ch == "]" and not first:
                self._next()
                break
            first = False
            lo = self._class_char()
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self._next()  # consume '-'
                hi = self._class_char()
                if hi < lo:
                    raise self._error(f"character range out of order in class")
                symbols.update(range(lo, hi + 1))
            else:
                symbols.add(lo)
        if negated:
            symbols = set(range(self.n_symbols)) - symbols
        else:
            symbols = {s for s in symbols if s < self.n_symbols}
        return Literal(frozenset(symbols))

    def _class_char(self) -> int:
        ch = self._next()
        if ch == "\\":
            esc = self._next()
            if esc == "x":
                hexdigits = self._next() + self._next()
                return self._check_symbol(int(hexdigits, 16))
            if esc in _ESCAPE_LITERALS:
                return self._check_symbol(_ESCAPE_LITERALS[esc])
            return self._check_symbol(ord(esc))
        return self._check_symbol(ord(ch))


def parse_regex(pattern: str, n_symbols: int = DEFAULT_ALPHABET) -> Node:
    """Parse ``pattern`` into the regex AST (raises :class:`RegexSyntaxError`)."""
    return _Parser(pattern, n_symbols).parse()


# ----------------------------------------------------------------------
# Thompson construction
# ----------------------------------------------------------------------
def _build(nfa: NFA, node: Node) -> Tuple[int, int]:
    """Append ``node``'s fragment to ``nfa``; return (entry, exit) states."""
    if isinstance(node, Literal):
        entry, exit_ = nfa.add_state(), nfa.add_state()
        if not node.symbols:
            # An empty class matches nothing: the fragment is a dead end.
            return entry, exit_
        nfa.add_transitions(entry, node.symbols, exit_)
        return entry, exit_
    if isinstance(node, Concat):
        if not node.parts:
            entry = nfa.add_state()
            return entry, entry
        entry, exit_ = _build(nfa, node.parts[0])
        for part in node.parts[1:]:
            nentry, nexit = _build(nfa, part)
            nfa.add_transition(exit_, EPSILON, nentry)
            exit_ = nexit
        return entry, exit_
    if isinstance(node, Alternate):
        entry, exit_ = nfa.add_state(), nfa.add_state()
        for option in node.options:
            oentry, oexit = _build(nfa, option)
            nfa.add_transition(entry, EPSILON, oentry)
            nfa.add_transition(oexit, EPSILON, exit_)
        return entry, exit_
    if isinstance(node, Repeat):
        return _build_repeat(nfa, node)
    raise RegexSyntaxError(f"unknown AST node {type(node).__name__}")


def _build_repeat(nfa: NFA, node: Repeat) -> Tuple[int, int]:
    entry = nfa.add_state()
    cursor = entry
    # Mandatory copies.
    for _ in range(node.min):
        centry, cexit = _build(nfa, node.child)
        nfa.add_transition(cursor, EPSILON, centry)
        cursor = cexit
    if node.max is None:
        # Kleene tail: loop a final copy.
        centry, cexit = _build(nfa, node.child)
        nfa.add_transition(cursor, EPSILON, centry)
        nfa.add_transition(cexit, EPSILON, cursor)
        return entry, cursor
    exit_ = nfa.add_state()
    nfa.add_transition(cursor, EPSILON, exit_)
    for _ in range(node.max - node.min):
        centry, cexit = _build(nfa, node.child)
        nfa.add_transition(cursor, EPSILON, centry)
        cursor = cexit
        nfa.add_transition(cursor, EPSILON, exit_)
    return entry, exit_


def regex_to_nfa(pattern: str, n_symbols: int = DEFAULT_ALPHABET, name: str = "") -> NFA:
    """Compile one pattern to a Thompson NFA (whole-input match semantics)."""
    ast = parse_regex(pattern, n_symbols)
    nfa = NFA(n_symbols=n_symbols, name=name or pattern)
    entry, exit_ = _build(nfa, ast)
    nfa.start = entry
    nfa.accepting = {exit_}
    return nfa


def compile_regex(
    pattern: str,
    n_symbols: int = DEFAULT_ALPHABET,
    *,
    unanchored: bool = True,
    sticky_accept: bool = True,
    minimize: bool = True,
    name: str = "",
) -> DFA:
    """Compile one regex to a DFA.

    Parameters
    ----------
    unanchored:
        Match anywhere in the stream (the scanner semantics Snort/ClamAV
        signatures use) by prefixing an implicit ``.*``.
    sticky_accept:
        Make accepting states absorbing so the end state records "a match
        occurred somewhere" — required for chunked parallel execution of
        scanners to be meaningful.
    minimize:
        Run Hopcroft minimization on the result.
    """
    nfa = regex_to_nfa(pattern, n_symbols, name=name)
    if unanchored:
        for sym in range(n_symbols):
            nfa.add_transition(nfa.start, sym, nfa.start)
    if sticky_accept:
        nfa.make_accepting_sticky()
    dfa = nfa_to_dfa(nfa, name=name or pattern)
    if minimize:
        dfa = minimize_dfa(dfa)
    return dfa


def compile_disjunction(
    patterns: Sequence[str],
    n_symbols: int = DEFAULT_ALPHABET,
    *,
    unanchored: bool = True,
    sticky_accept: bool = True,
    minimize: bool = True,
    name: str = "disjunction",
) -> DFA:
    """Compile a disjunction of patterns to one DFA.

    Mirrors the paper's benchmark generation: "each FSM in our evaluation is
    generated from a disjunction of multiple randomly selected regular
    expressions".
    """
    if not patterns:
        raise RegexSyntaxError("compile_disjunction needs at least one pattern")
    nfas = [regex_to_nfa(p, n_symbols, name=p) for p in patterns]
    nfa = union_nfas(nfas, name=name)
    if unanchored:
        for sym in range(n_symbols):
            nfa.add_transition(nfa.start, sym, nfa.start)
    if sticky_accept:
        nfa.make_accepting_sticky()
    dfa = nfa_to_dfa(nfa, name=name)
    if minimize:
        dfa = minimize_dfa(dfa)
    return dfa
