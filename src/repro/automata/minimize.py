"""DFA minimization and canonical forms via vectorized partition refinement.

Minimization keeps the benchmark DFAs at the canonical sizes that the paper's
Table II reports, and guarantees that property profiling (state frequencies,
convergence) is not polluted by unreachable or duplicate states.

:func:`minimize_dfa` is a vectorized *incremental* Moore/Valmari-style
refinement: the partition lives in a flat colour array and each round
recolours only the dirty frontier — states with a successor whose colour
changed last round — from their ``(colour, successor colours)`` signature
rows (``np.unique(axis=0)``), instead of walking a Python worklist of
splitter sets.  The pre-refactor Hopcroft worklist implementation is kept as
:func:`_minimize_reference` — it is the differential oracle for the fuzzer
and the baseline for ``benchmarks/bench_compile.py``.

On top of minimization this module defines the *canonical form*: minimize,
then breadth-first renumber states from the start state in symbol order.
Two DFAs accept the same language iff their canonical forms are
bit-identical, which is what :func:`canonical_fingerprint` hashes and what
the plan cache keys language-equivalence aliasing on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE


def _restrict_to_reachable(dfa: DFA) -> DFA:
    """Drop states not reachable from the start state."""
    n = dfa.n_states
    seen = np.zeros(n, dtype=bool)
    seen[dfa.start] = True
    frontier = np.array([dfa.start], dtype=np.int64)
    while frontier.size:
        nxt = np.unique(dfa.table[frontier].ravel())
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    if seen.all():
        return dfa
    old_ids = np.flatnonzero(seen)
    remap = -np.ones(n, dtype=np.int64)
    remap[old_ids] = np.arange(old_ids.size)
    table = remap[dfa.table[old_ids]]
    return DFA(
        table=table.astype(STATE_DTYPE),
        start=int(remap[dfa.start]),
        accepting=frozenset(int(remap[s]) for s in dfa.accepting if seen[s]),
        name=dfa.name,
    )


def _bfs_renumber(dfa: DFA) -> DFA:
    """Renumber states breadth-first from the start state in symbol order.

    The visit order is fully determined by the transition structure (state 0
    is the start; successors are discovered symbol-by-symbol within each
    frontier wave), so any two isomorphic DFAs renumber to bit-identical
    tables.  Assumes every state is reachable — callers minimize first.
    """
    n, k = dfa.n_states, dfa.n_symbols
    remap = np.full(n, -1, dtype=np.int64)
    remap[dfa.start] = 0
    assigned = 1
    frontier = np.array([dfa.start], dtype=np.int64)
    while frontier.size and assigned < n:
        succ = dfa.table[frontier].ravel()  # row-major = symbol order per state
        uniq, first = np.unique(succ, return_index=True)
        fresh = remap[uniq] < 0
        new_states = uniq[fresh][np.argsort(first[fresh], kind="stable")]
        remap[new_states] = assigned + np.arange(new_states.size)
        assigned += new_states.size
        frontier = new_states
    table = np.empty_like(dfa.table)
    table[remap] = remap[dfa.table].astype(STATE_DTYPE)
    return DFA(
        table=table,
        start=0,
        accepting=frozenset(int(remap[s]) for s in dfa.accepting),
        name=dfa.name,
    )


def _distinct_columns(table: np.ndarray) -> np.ndarray:
    """The distinct columns of ``table``, cheaply.

    ``np.unique(table, axis=1)`` lexicographically sorts whole columns —
    O(n·k·log k) element comparisons, the dominant cost of minimizing wide
    alphabets.  Instead, hash every column to one 64-bit key (fixed random
    weights, wraparound arithmetic), group by key, and *verify* each column
    against its group representative; any collision falls back to the exact
    path, so the result is always exact.  Column order differs from
    ``np.unique`` (keys, not lexicographic) but refinement only needs the
    distinct column *set*.
    """
    n, k = table.shape
    if k <= 1:
        return table
    cols = np.ascontiguousarray(table.T).astype(np.uint64)
    weights = np.random.default_rng(0x5EED5EED).integers(
        1, 1 << 62, size=n, dtype=np.uint64
    ) | np.uint64(1)
    keys = (cols * weights).sum(axis=1)
    uniq_keys, first = np.unique(keys, return_index=True)
    reps = cols[first]
    if not np.array_equal(reps[np.searchsorted(uniq_keys, keys)], cols):
        return np.unique(table, axis=1)  # hash collision: exact fallback
    return np.ascontiguousarray(reps.T).astype(table.dtype)


def minimize_dfa(dfa: DFA, name: Optional[str] = None) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    Vectorized *incremental* Moore/Valmari-style partition refinement: the
    partition lives in a flat colour array, and each round recolours only
    the **dirty** states — those with at least one successor whose colour
    changed in the previous round — from their ``(colour, successor
    colours)`` signature rows.  That makes the per-round cost proportional
    to the active refinement frontier instead of ``n_states × n_symbols``,
    which is what lets deep, chain-like automata (keyword scanners, bounded
    gaps, counters) minimize in milliseconds rather than paying a full
    table pass per distinguishing-depth level.

    Colour ids are stable: when a block splits, one part keeps the old id
    and the rest get fresh never-before-used ids, so dirtiness propagates
    exactly along real colour changes.  A dirty state whose signature
    changed can never rejoin the clean remainder of its block (its
    signature now contains a fresh id the clean members' cannot), so blocks
    with clean members send every dirty sub-group to fresh ids, while
    fully-dirty blocks let their first signature group keep the id.

    The result is in *canonical numbering* (breadth-first from the start
    state in symbol order, see :func:`_bfs_renumber`), which makes
    minimization idempotent at the byte level and gives language-equivalent
    inputs bit-identical minimal tables.
    """
    dfa = _restrict_to_reachable(dfa)
    n = dfa.n_states

    # Refine over distinct table columns only: symbols with identical
    # columns produce identical signature entries and cannot split blocks
    # the representative column does not already split.
    unique_cols = _distinct_columns(dfa.table)
    k_red = unique_cols.shape[1]

    # Reverse-edge CSR over the reduced table (built once): pred_sorted
    # holds edge sources grouped by target, indptr[t]:indptr[t+1] spans
    # the predecessors of state t.
    dst = unique_cols.ravel()
    src = np.repeat(np.arange(n, dtype=np.int64), k_red)
    edge_order = np.argsort(dst, kind="stable")
    pred_sorted = src[edge_order]
    indptr = np.searchsorted(dst[edge_order], np.arange(n + 1))

    # Initial partition: accepting / non-accepting, densified to 0-based
    # colours (all-accepting and none-accepting DFAs start with one colour).
    _, colour = np.unique(dfa.accepting_mask, return_inverse=True)
    colour = np.ravel(colour).astype(np.int64)
    next_id = int(colour.max()) + 1

    dirty = np.arange(n, dtype=np.int64)
    while dirty.size:
        sig = np.concatenate(
            [colour[dirty, None], colour[unique_cols[dirty]]], axis=1
        )
        uniq, inv = np.unique(sig, axis=0, return_inverse=True)
        inv = np.ravel(inv)
        block = uniq[:, 0]  # non-decreasing (lexicographic row order)

        # A block with clean (non-dirty) members keeps its id for them and
        # every dirty group splits to a fresh id; a fully-dirty block keeps
        # the id for its first signature group only.
        sizes = np.bincount(colour, minlength=next_id)
        dirty_counts = np.bincount(colour[dirty], minlength=next_id)
        block_has_clean = (sizes - dirty_counts) > 0
        keeps = np.zeros(uniq.shape[0], dtype=bool)
        _, first_of_block = np.unique(block, return_index=True)
        keeps[first_of_block] = True
        keeps &= ~block_has_clean[block]

        fresh = ~keeps
        new_ids = np.where(keeps, block, 0)
        n_fresh = int(fresh.sum())
        new_ids[fresh] = next_id + np.arange(n_fresh)
        next_id += n_fresh

        changed = dirty[fresh[inv]]
        colour[dirty] = new_ids[inv]

        # Next frontier: predecessors of every state whose colour changed.
        if changed.size:
            starts = indptr[changed]
            counts = indptr[changed + 1] - starts
            total = int(counts.sum())
            offsets = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            dirty = np.unique(pred_sorted[offsets + np.arange(total)])
        else:
            dirty = np.empty(0, dtype=np.int64)

    # Quotient: one representative state per colour (first occurrence),
    # with the sparse stable ids densified to 0-based colours.
    uniq_ids, reps = np.unique(colour, return_index=True)
    dense = np.full(next_id, -1, dtype=np.int64)
    dense[uniq_ids] = np.arange(uniq_ids.size)
    colour = dense[colour]
    table = colour[dfa.table[reps]].astype(STATE_DTYPE)
    accepting = frozenset(
        int(c) for c in np.unique(colour[np.flatnonzero(dfa.accepting_mask)])
    )
    quotient = DFA(
        table=table,
        start=int(colour[dfa.start]),
        accepting=accepting,
        name=name if name is not None else dfa.name,
    )
    return _bfs_renumber(quotient)


def canonical_form(dfa: DFA, name: Optional[str] = None) -> DFA:
    """The canonical representative of ``dfa``'s language class.

    Minimize, then breadth-first renumber from the start state in symbol
    order.  Complete DFAs accepting the same language map to bit-identical
    canonical tables (Myhill–Nerode: the minimal complete DFA is unique up
    to isomorphism, and the BFS numbering fixes the isomorphism).
    """
    return minimize_dfa(dfa, name=name)


def canonical_fingerprint(dfa: DFA) -> str:
    """Content fingerprint of ``dfa``'s canonical form.

    Identical for all language-equivalent DFAs over the same alphabet; this
    is the key the serving tier dedupes compiled plans on.
    """
    return canonical_form(dfa).fingerprint()


def _minimize_reference(dfa: DFA, name: Optional[str] = None) -> DFA:
    """Pre-refactor Hopcroft worklist minimization (differential oracle).

    Kept verbatim as the baseline for the fuzzer's differential gate and
    for ``benchmarks/bench_compile.py``'s speedup guard.  Produces the same
    minimal DFA as :func:`minimize_dfa` up to state renumbering.
    """
    dfa = _restrict_to_reachable(dfa)
    full_k = dfa.n_symbols

    # Work on distinct table columns only: symbols with identical columns
    # are behaviourally identical and refine partitions identically.
    unique_cols, col_of_symbol = np.unique(dfa.table, axis=1, return_inverse=True)
    reduced = DFA(
        table=unique_cols,
        start=dfa.start,
        accepting=dfa.accepting,
        name=dfa.name,
    )
    if unique_cols.shape[1] != full_k:
        minimized = _minimize_reference(reduced, name=name)
        table = minimized.table[:, col_of_symbol]
        return DFA(
            table=table,
            start=minimized.start,
            accepting=minimized.accepting,
            name=minimized.name,
        )

    n, k = dfa.n_states, dfa.n_symbols

    accepting = dfa.accepting_mask
    # Initial partition: accepting / non-accepting (skip empty blocks).
    block_of = np.zeros(n, dtype=np.int64)
    blocks: List[Set[int]] = []
    non_acc = set(np.flatnonzero(~accepting).tolist())
    acc = set(np.flatnonzero(accepting).tolist())
    for group in (non_acc, acc):
        if group:
            bid = len(blocks)
            blocks.append(group)
            for q in group:
                block_of[q] = bid
    if len(blocks) <= 1:
        # All states equivalent: single-state DFA.
        table = np.zeros((1, k), dtype=STATE_DTYPE)
        return DFA(
            table=table,
            start=0,
            accepting=frozenset({0}) if dfa.accepting else frozenset(),
            name=name if name is not None else dfa.name,
        )

    # preds[a] maps each state to the list of its predecessors on symbol a.
    preds: List[Dict[int, List[int]]] = []
    for a in range(k):
        col = dfa.table[:, a]
        d: Dict[int, List[int]] = {}
        order = np.argsort(col, kind="stable")
        sorted_targets = col[order]
        boundaries = np.flatnonzero(np.diff(sorted_targets)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for s, e in zip(starts, ends):
            d[int(sorted_targets[s])] = order[s:e].tolist()
        preds.append(d)

    # Worklist: smaller of the two initial blocks, for every symbol.
    smaller = 0 if len(blocks[0]) <= len(blocks[1]) else 1
    worklist: Set = {(smaller, a) for a in range(k)}

    while worklist:
        bid, a = worklist.pop()
        splitter = blocks[bid]
        pred_map = preds[a]
        # X = states whose a-transition lands in the splitter block.
        x: Set[int] = set()
        for q in splitter:
            x.update(pred_map.get(q, ()))
        if not x:
            continue
        # Refine every block intersecting X.
        touched: Dict[int, Set[int]] = {}
        for q in x:
            touched.setdefault(int(block_of[q]), set()).add(q)
        for tb, inter in touched.items():
            block = blocks[tb]
            if len(inter) == len(block):
                continue  # block fully inside X: no split
            rest = block - inter
            # Keep the larger part in place, spin off the smaller one.
            if len(inter) <= len(rest):
                new_set, old_set = inter, rest
            else:
                new_set, old_set = rest, inter
            blocks[tb] = old_set
            new_bid = len(blocks)
            blocks.append(new_set)
            for q in new_set:
                block_of[q] = new_bid
            for sym in range(k):
                if (tb, sym) in worklist:
                    worklist.add((new_bid, sym))
                else:
                    # Add the smaller of the two pieces.
                    if len(new_set) <= len(old_set):
                        worklist.add((new_bid, sym))
                    else:
                        worklist.add((tb, sym))

    # Build the quotient automaton. Renumber blocks so the start block is 0
    # and ids follow first-visit order for determinism.
    order: List[int] = []
    seen_blocks = set()
    stack = [int(block_of[dfa.start])]
    rep = {bid: min(b) for bid, b in enumerate(blocks) if b}
    while stack:
        bid = stack.pop()
        if bid in seen_blocks:
            continue
        seen_blocks.add(bid)
        order.append(bid)
        r = rep[bid]
        for a in range(k):
            stack.append(int(block_of[dfa.table[r, a]]))
    new_id = {bid: i for i, bid in enumerate(order)}

    m = len(order)
    table = np.zeros((m, k), dtype=STATE_DTYPE)
    new_accepting = set()
    for bid in order:
        i = new_id[bid]
        r = rep[bid]
        for a in range(k):
            table[i, a] = new_id[int(block_of[dfa.table[r, a]])]
        if r in dfa.accepting:
            new_accepting.add(i)
    return DFA(
        table=table,
        start=new_id[int(block_of[dfa.start])],
        accepting=frozenset(new_accepting),
        name=name if name is not None else dfa.name,
    )
