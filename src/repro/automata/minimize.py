"""DFA minimization via Hopcroft's partition-refinement algorithm.

Minimization keeps the benchmark DFAs at the canonical sizes that the paper's
Table II reports, and guarantees that property profiling (state frequencies,
convergence) is not polluted by unreachable or duplicate states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE


def _restrict_to_reachable(dfa: DFA) -> DFA:
    """Drop states not reachable from the start state."""
    n = dfa.n_states
    seen = np.zeros(n, dtype=bool)
    seen[dfa.start] = True
    frontier = np.array([dfa.start], dtype=np.int64)
    while frontier.size:
        nxt = np.unique(dfa.table[frontier].ravel())
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    if seen.all():
        return dfa
    old_ids = np.flatnonzero(seen)
    remap = -np.ones(n, dtype=np.int64)
    remap[old_ids] = np.arange(old_ids.size)
    table = remap[dfa.table[old_ids]]
    return DFA(
        table=table.astype(STATE_DTYPE),
        start=int(remap[dfa.start]),
        accepting=frozenset(int(remap[s]) for s in dfa.accepting if seen[s]),
        name=dfa.name,
    )


def minimize_dfa(dfa: DFA, name: Optional[str] = None) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    Implementation notes: classic Hopcroft with a worklist of (block, symbol)
    splitters.  Predecessor sets are precomputed as numpy index arrays, so the
    inner refinement loop is mostly vectorized set membership.
    """
    dfa = _restrict_to_reachable(dfa)
    full_k = dfa.n_symbols

    # Work on distinct table columns only: symbols with identical columns
    # are behaviourally identical and refine partitions identically.
    unique_cols, col_of_symbol = np.unique(dfa.table, axis=1, return_inverse=True)
    reduced = DFA(
        table=unique_cols,
        start=dfa.start,
        accepting=dfa.accepting,
        name=dfa.name,
    )
    if unique_cols.shape[1] != full_k:
        minimized = minimize_dfa(reduced, name=name)
        table = minimized.table[:, col_of_symbol]
        return DFA(
            table=table,
            start=minimized.start,
            accepting=minimized.accepting,
            name=minimized.name,
        )

    n, k = dfa.n_states, dfa.n_symbols

    accepting = dfa.accepting_mask
    # Initial partition: accepting / non-accepting (skip empty blocks).
    block_of = np.zeros(n, dtype=np.int64)
    blocks: List[Set[int]] = []
    non_acc = set(np.flatnonzero(~accepting).tolist())
    acc = set(np.flatnonzero(accepting).tolist())
    for group in (non_acc, acc):
        if group:
            bid = len(blocks)
            blocks.append(group)
            for q in group:
                block_of[q] = bid
    if len(blocks) <= 1:
        # All states equivalent: single-state DFA.
        table = np.zeros((1, k), dtype=STATE_DTYPE)
        return DFA(
            table=table,
            start=0,
            accepting=frozenset({0}) if dfa.accepting else frozenset(),
            name=name if name is not None else dfa.name,
        )

    # preds[a] maps each state to the list of its predecessors on symbol a.
    preds: List[Dict[int, List[int]]] = []
    for a in range(k):
        col = dfa.table[:, a]
        d: Dict[int, List[int]] = {}
        order = np.argsort(col, kind="stable")
        sorted_targets = col[order]
        boundaries = np.flatnonzero(np.diff(sorted_targets)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for s, e in zip(starts, ends):
            d[int(sorted_targets[s])] = order[s:e].tolist()
        preds.append(d)

    # Worklist: smaller of the two initial blocks, for every symbol.
    smaller = 0 if len(blocks[0]) <= len(blocks[1]) else 1
    worklist: Set = {(smaller, a) for a in range(k)}

    while worklist:
        bid, a = worklist.pop()
        splitter = blocks[bid]
        pred_map = preds[a]
        # X = states whose a-transition lands in the splitter block.
        x: Set[int] = set()
        for q in splitter:
            x.update(pred_map.get(q, ()))
        if not x:
            continue
        # Refine every block intersecting X.
        touched: Dict[int, Set[int]] = {}
        for q in x:
            touched.setdefault(int(block_of[q]), set()).add(q)
        for tb, inter in touched.items():
            block = blocks[tb]
            if len(inter) == len(block):
                continue  # block fully inside X: no split
            rest = block - inter
            # Keep the larger part in place, spin off the smaller one.
            if len(inter) <= len(rest):
                new_set, old_set = inter, rest
            else:
                new_set, old_set = rest, inter
            blocks[tb] = old_set
            new_bid = len(blocks)
            blocks.append(new_set)
            for q in new_set:
                block_of[q] = new_bid
            for sym in range(k):
                if (tb, sym) in worklist:
                    worklist.add((new_bid, sym))
                else:
                    # Add the smaller of the two pieces.
                    if len(new_set) <= len(old_set):
                        worklist.add((new_bid, sym))
                    else:
                        worklist.add((tb, sym))

    # Build the quotient automaton. Renumber blocks so the start block is 0
    # and ids follow first-visit order for determinism.
    order: List[int] = []
    seen_blocks = set()
    stack = [int(block_of[dfa.start])]
    rep = {bid: min(b) for bid, b in enumerate(blocks) if b}
    while stack:
        bid = stack.pop()
        if bid in seen_blocks:
            continue
        seen_blocks.add(bid)
        order.append(bid)
        r = rep[bid]
        for a in range(k):
            stack.append(int(block_of[dfa.table[r, a]]))
    new_id = {bid: i for i, bid in enumerate(order)}

    m = len(order)
    table = np.zeros((m, k), dtype=STATE_DTYPE)
    new_accepting = set()
    for bid in order:
        i = new_id[bid]
        r = rep[bid]
        for a in range(k):
            table[i, a] = new_id[int(block_of[dfa.table[r, a]])]
        if r in dfa.accepting:
            new_accepting.add(i)
    return DFA(
        table=table,
        start=new_id[int(block_of[dfa.start])],
        accepting=frozenset(new_accepting),
        name=name if name is not None else dfa.name,
    )
