"""Dense-table deterministic finite automata.

The DFA is the central data structure of the whole reproduction: every
parallelization scheme ultimately executes ``state = table[state, symbol]``
loops over chunks of the input, exactly as ``FSM_Processing`` in Algorithm 1
of the paper.  The transition table is stored as a C-contiguous
``(n_states, n_symbols)`` ``int32`` numpy array so that the lockstep executor
can run one gather per input position for *all* simulated GPU threads at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AutomatonError

#: numpy dtype used for state identifiers throughout the library.
STATE_DTYPE = np.int32


def _as_symbol_array(data: "bytes | bytearray | memoryview | np.ndarray | Sequence[int]") -> np.ndarray:
    """Normalize an input stream to a 1-D uint8/int array of symbol indices."""
    if isinstance(data, np.ndarray):
        arr = data
        if arr.ndim != 1:
            raise AutomatonError(f"input stream must be 1-D, got shape {arr.shape}")
        return np.ascontiguousarray(arr)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(data), dtype=np.uint8)
    return np.asarray(list(data), dtype=np.int64)


@dataclass(frozen=True)
class DFA:
    """A deterministic finite automaton over an integer symbol alphabet.

    Parameters
    ----------
    table:
        ``(n_states, n_symbols)`` integer array; ``table[q, a]`` is the state
        reached from ``q`` on symbol ``a``.
    start:
        Initial state ``q0``.
    accepting:
        Frozenset of accepting state ids (``F`` in the paper's tuple).
    name:
        Optional human-readable label used in reports and benchmarks.
    """

    table: np.ndarray
    start: int
    accepting: frozenset = field(default_factory=frozenset)
    name: str = "dfa"

    def __post_init__(self) -> None:
        table = np.ascontiguousarray(np.asarray(self.table, dtype=STATE_DTYPE))
        object.__setattr__(self, "table", table)
        if table.ndim != 2:
            raise AutomatonError(f"transition table must be 2-D, got shape {table.shape}")
        n_states, _ = table.shape
        if n_states == 0:
            raise AutomatonError("a DFA needs at least one state")
        if not (0 <= self.start < n_states):
            raise AutomatonError(f"start state {self.start} out of range [0, {n_states})")
        if table.size and (table.min() < 0 or table.max() >= n_states):
            raise AutomatonError("transition table references states out of range")
        acc = frozenset(int(s) for s in self.accepting)
        for s in acc:
            if not (0 <= s < n_states):
                raise AutomatonError(f"accepting state {s} out of range [0, {n_states})")
        object.__setattr__(self, "accepting", acc)

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states ``|Q|``."""
        return int(self.table.shape[0])

    @property
    def n_symbols(self) -> int:
        """Alphabet size ``|Σ|``."""
        return int(self.table.shape[1])

    @property
    def accepting_mask(self) -> np.ndarray:
        """Boolean vector, ``mask[q]`` is True iff ``q`` is accepting."""
        mask = np.zeros(self.n_states, dtype=bool)
        if self.accepting:
            mask[np.fromiter(self.accepting, dtype=np.int64)] = True
        return mask

    # ------------------------------------------------------------------
    # sequential execution (the "embarrassingly sequential" reference)
    # ------------------------------------------------------------------
    def step(self, state: int, symbol: int) -> int:
        """Single transition ``δ(state, symbol)``."""
        return int(self.table[state, symbol])

    def run(self, data, start: Optional[int] = None) -> int:
        """Run the DFA over ``data`` and return the end state.

        This is the scalar reference implementation of ``FSM_Processing``;
        every speculative scheme must agree with it.
        """
        symbols = _as_symbol_array(data)
        state = self.start if start is None else int(start)
        table = self.table
        for sym in symbols:
            state = table[state, sym]
        return int(state)

    def run_path(self, data, start: Optional[int] = None) -> np.ndarray:
        """Return the full state trajectory (length ``len(data) + 1``)."""
        symbols = _as_symbol_array(data)
        state = self.start if start is None else int(start)
        path = np.empty(len(symbols) + 1, dtype=STATE_DTYPE)
        path[0] = state
        table = self.table
        for i, sym in enumerate(symbols):
            state = table[state, sym]
            path[i + 1] = state
        return path

    def accepts(self, data, start: Optional[int] = None) -> bool:
        """True iff running over ``data`` ends in an accepting state."""
        return self.run(data, start=start) in self.accepting

    # ------------------------------------------------------------------
    # vectorized execution helpers
    # ------------------------------------------------------------------
    def run_many(self, data, starts: Iterable[int]) -> np.ndarray:
        """Run the *same* input from many start states in lockstep.

        Used by the all-state lookback predictor (run the last two symbols of
        the predecessor chunk from every state) and by enumerative schemes.
        """
        symbols = _as_symbol_array(data)
        states = np.asarray(list(starts), dtype=STATE_DTYPE)
        table = self.table
        for sym in symbols:
            states = table[states, sym]
        return states

    def run_all_states(self, data) -> np.ndarray:
        """Vector ``v`` with ``v[q]`` = end state of running ``data`` from ``q``.

        Equivalent to composing the per-symbol transition functions; the
        result is the column-function of the input viewed as a mapping
        ``Q → Q`` (the algebraic object enumerative parallelization exploits).
        """
        return self.run_many(data, range(self.n_states))

    def step_vector(self, states: np.ndarray, symbol: int) -> np.ndarray:
        """Vectorized single step for a batch of states."""
        return self.table[np.asarray(states, dtype=STATE_DTYPE), symbol]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def successors(self, state: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(symbol, next_state)`` pairs for ``state``."""
        row = self.table[state]
        for sym in range(self.n_symbols):
            yield sym, int(row[sym])

    def renumbered(self, permutation: np.ndarray, name: Optional[str] = None) -> "DFA":
        """Return an isomorphic DFA with states relabelled by ``permutation``.

        ``permutation[q]`` is the new id of old state ``q``.  Used by the
        frequency-based transformation (Fig. 4) and by minimization.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.n_states,):
            raise AutomatonError("permutation must have one entry per state")
        if sorted(perm.tolist()) != list(range(self.n_states)):
            raise AutomatonError("permutation must be a bijection on states")
        new_table = np.empty_like(self.table)
        # new_table[perm[q], a] = perm[table[q, a]]
        new_table[perm, :] = perm[self.table]
        return DFA(
            table=new_table,
            start=int(perm[self.start]),
            accepting=frozenset(int(perm[s]) for s in self.accepting),
            name=name if name is not None else self.name,
        )

    def fingerprint(self) -> str:
        """Content hash identifying this automaton's *behaviour*.

        Covers the transition table (shape and bytes), the start state and
        the accepting set — everything execution depends on — but not the
        cosmetic ``name``.  Used as the cache/validation key for compiled
        plans: two DFAs with equal fingerprints are interchangeable at
        execution time.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(f"dfa/v1:{self.n_states}x{self.n_symbols}:{self.start}:".encode())
        h.update(",".join(str(s) for s in sorted(self.accepting)).encode())
        h.update(self.table.tobytes())
        return h.hexdigest()

    def canonical_fingerprint(self) -> str:
        """Content hash identifying this automaton's *language*.

        The fingerprint of the canonical form (minimize, then BFS-renumber
        from the start state in symbol order — see
        :func:`repro.automata.minimize.canonical_form`), so it is identical
        for every DFA accepting the same language over the same alphabet.
        Used by the plan cache to dedupe compiles across language-equivalent
        submissions; strictly coarser than :meth:`fingerprint`.
        """
        from repro.automata.minimize import canonical_fingerprint

        return canonical_fingerprint(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFA):
            return NotImplemented
        return (
            self.start == other.start
            and self.accepting == other.accepting
            and self.table.shape == other.table.shape
            and bool(np.array_equal(self.table, other.table))
        )

    def __hash__(self) -> int:
        return hash((self.start, self.accepting, self.table.shape, self.table.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DFA(name={self.name!r}, n_states={self.n_states}, "
            f"n_symbols={self.n_symbols}, start={self.start}, "
            f"n_accepting={len(self.accepting)})"
        )

    # ------------------------------------------------------------------
    # presentation (Fig. 1 style)
    # ------------------------------------------------------------------
    def format_table(self, symbols: Optional[Sequence[int]] = None) -> str:
        """Render the transition table like the paper's Fig. 1(b).

        ``symbols`` restricts (and orders) the columns — useful for byte
        alphabets where only a few symbols matter.  Accepting states are
        starred; the start state carries an arrow.
        """
        if symbols is None:
            symbols = list(range(min(self.n_symbols, 16)))
        headers = ["state"] + [
            chr(s) if 32 <= s < 127 else f"\\x{s:02x}" for s in symbols
        ]
        widths = [len(h) for h in headers]
        rows = []
        for q in range(self.n_states):
            label = f"{'->' if q == self.start else '  '}s{q}" + (
                "*" if q in self.accepting else ""
            )
            row = [label] + [f"s{self.table[q, s]}" for s in symbols]
            rows.append(row)
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_dot(self, symbols: Optional[Sequence[int]] = None) -> str:
        """Graphviz DOT source for the transition graph (Fig. 1(a) style).

        Parallel edges between the same state pair are merged with their
        symbols comma-joined.  ``symbols`` restricts the edge alphabet.
        """
        if symbols is None:
            symbols = list(range(self.n_symbols))
        lines = [
            "digraph dfa {",
            "  rankdir=LR;",
            '  __start [shape=point, label=""];',
        ]
        for q in range(self.n_states):
            shape = "doublecircle" if q in self.accepting else "circle"
            lines.append(f'  s{q} [shape={shape}, label="s{q}"];')
        lines.append(f"  __start -> s{self.start};")
        merged: dict = {}
        for q in range(self.n_states):
            for s in symbols:
                dst = int(self.table[q, s])
                label = chr(s) if 32 <= s < 127 else f"\\\\x{s:02x}"
                merged.setdefault((q, dst), []).append(label)
        for (src, dst), labels in sorted(merged.items()):
            text = ",".join(labels[:6]) + (",…" if len(labels) > 6 else "")
            lines.append(f'  s{src} -> s{dst} [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)


def run_lockstep(
    table: np.ndarray,
    chunks: np.ndarray,
    starts: np.ndarray,
    lengths: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Execute many (chunk, start-state) pairs in SIMT lockstep.

    Parameters
    ----------
    table:
        ``(n_states, n_symbols)`` transition table.
    chunks:
        ``(n_threads, chunk_len)`` symbol matrix; row ``t`` is the chunk
        thread ``t`` processes.
    starts:
        ``(n_threads,)`` start states.
    lengths:
        Optional per-thread effective lengths (for a ragged final chunk);
        positions beyond a thread's length leave its state unchanged.

    Returns
    -------
    ``(n_threads,)`` array of end states.

    Notes
    -----
    This mirrors how a warp executes the transition loop on a real GPU: one
    gather per input position, all lanes in lockstep.  The python loop runs
    over chunk *positions* only; all thread-level work is vectorized.
    """
    chunks = np.asarray(chunks)
    if chunks.ndim != 2:
        raise AutomatonError(f"chunks must be (n_threads, chunk_len), got {chunks.shape}")
    states = np.asarray(starts, dtype=STATE_DTYPE).copy()
    if states.shape != (chunks.shape[0],):
        raise AutomatonError("starts must have one entry per thread")
    n_threads, chunk_len = chunks.shape
    if lengths is None:
        for j in range(chunk_len):
            states = table[states, chunks[:, j]]
    else:
        lengths = np.asarray(lengths)
        for j in range(chunk_len):
            nxt = table[states, chunks[:, j]]
            states = np.where(j < lengths, nxt, states)
    return states
