"""Bitset NFA execution.

NFAs are what most prior GPU engines execute directly (iNFAnt and
descendants, §II-B): the active-state set is a bit vector, and one input
symbol updates it by OR-ing the successor masks of all active states —
*state-level parallelism*.  This module provides the ε-free bitset form and
a vectorized stepper; :mod:`repro.schemes.nfa_engine` wraps it with the GPU
cost model to serve as the throughput-oriented baseline GSpecPal's
latency-oriented design is contrasted against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.automata.nfa import EPSILON, NFA
from repro.automata.dfa import _as_symbol_array
from repro.errors import AutomatonError


@dataclass(frozen=True)
class BitsetNFA:
    """ε-eliminated NFA with per-symbol successor masks.

    Attributes
    ----------
    masks:
        ``(n_symbols, n_states, n_words)`` uint64 array; ``masks[a][q]`` is
        the bit mask of states reachable from ``q`` on symbol ``a`` (with
        ε-closure applied).
    start_mask / accept_mask:
        ``(n_words,)`` uint64 bit vectors.
    """

    n_states: int
    n_symbols: int
    masks: np.ndarray
    start_mask: np.ndarray
    accept_mask: np.ndarray
    name: str = "bitset-nfa"

    @property
    def n_words(self) -> int:
        return int(self.masks.shape[2])

    # ------------------------------------------------------------------
    @classmethod
    def from_nfa(cls, nfa: NFA, name: str = "") -> "BitsetNFA":
        """ε-eliminate ``nfa`` and pack its transitions into bit masks."""
        n = nfa.n_states
        if n == 0:
            raise AutomatonError("cannot build a bitset NFA with no states")
        n_words = -(-n // 64)

        def to_mask(states: Iterable[int]) -> np.ndarray:
            mask = np.zeros(n_words, dtype=np.uint64)
            for q in states:
                mask[q // 64] |= np.uint64(1) << np.uint64(q % 64)
            return mask

        closures: List[frozenset] = [nfa.epsilon_closure([q]) for q in range(n)]
        masks = np.zeros((nfa.n_symbols, n, n_words), dtype=np.uint64)
        for q in range(n):
            for sym, dsts in nfa.transitions[q].items():
                if sym == EPSILON:
                    continue
                closed = set()
                for d in dsts:
                    closed |= closures[d]
                masks[sym, q] |= to_mask(closed)
        # Accepting: any state whose ε-closure reaches an accepting state is
        # effectively accepting once active.
        accept_states = {
            q for q in range(n) if closures[q] & nfa.accepting
        }
        return cls(
            n_states=n,
            n_symbols=nfa.n_symbols,
            masks=masks,
            start_mask=to_mask(closures[nfa.start]),
            accept_mask=to_mask(accept_states),
            name=name or nfa.name,
        )

    # ------------------------------------------------------------------
    def active_states(self, mask: np.ndarray) -> np.ndarray:
        """State ids set in a bit vector (for inspection/tests)."""
        out = []
        for w in range(self.n_words):
            word = int(mask[w])
            while word:
                low = word & -word
                out.append(w * 64 + low.bit_length() - 1)
                word ^= low
        return np.asarray(out, dtype=np.int64)

    def popcount(self, mask: np.ndarray) -> int:
        """Number of active states in a bit vector."""
        return int(sum(bin(int(w)).count("1") for w in mask))

    def step(self, mask: np.ndarray, symbol: int) -> np.ndarray:
        """One symbol: OR the successor masks of every active state."""
        active = self.active_states(mask)
        if active.size == 0:
            return np.zeros(self.n_words, dtype=np.uint64)
        rows = self.masks[symbol][active]  # (n_active, n_words)
        return np.bitwise_or.reduce(rows, axis=0)

    def run(self, data) -> np.ndarray:
        """Run over ``data``; returns the final active-set bit vector."""
        symbols = _as_symbol_array(data)
        mask = self.start_mask.copy()
        for sym in symbols:
            mask = self.step(mask, int(sym))
            if not mask.any():
                break
        return mask

    def accepts(self, data) -> bool:
        """True iff an accepting state is active after ``data``."""
        return bool((self.run(data) & self.accept_mask).any())

    def run_counting(self, data):
        """Run and also report per-step active-state counts (the quantity
        the NFA engine's cost model needs)."""
        symbols = _as_symbol_array(data)
        mask = self.start_mask.copy()
        counts = np.zeros(len(symbols), dtype=np.int64)
        for j, sym in enumerate(symbols):
            counts[j] = self.popcount(mask)
            mask = self.step(mask, int(sym))
        return mask, counts
