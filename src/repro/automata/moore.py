"""Moore's minimization algorithm (partition refinement by rounds).

A second, independent implementation of DFA minimization.  Hopcroft's
algorithm (:mod:`repro.automata.minimize`) is the production path — Moore's
O(n²) refinement is kept as a cross-checking oracle: both must produce
automata of identical size, and the library's property tests verify exactly
that on random DFAs.  (A disagreement localizes a bug instantly; minimized
sizes are also load-bearing for Table II's state counts.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.automata.minimize import _restrict_to_reachable


def minimize_dfa_moore(dfa: DFA, name: Optional[str] = None) -> DFA:
    """Minimize ``dfa`` with Moore's round-based partition refinement.

    Each round re-colours every state by the tuple (its colour, the colours
    of its successors); a fixed point is the Myhill-Nerode partition.  All
    rounds are fully vectorized: the signature matrix is ``(n, k+1)`` ints
    hashed per row with ``np.unique``.
    """
    dfa = _restrict_to_reachable(dfa)
    n, k = dfa.n_states, dfa.n_symbols

    # Initial colouring: accepting vs non-accepting.
    colour = dfa.accepting_mask.astype(np.int64)
    n_colours = int(colour.max()) + 1 if n else 0

    while True:
        # Signature of each state: own colour + successor colours.
        signature = np.empty((n, k + 1), dtype=np.int64)
        signature[:, 0] = colour
        signature[:, 1:] = colour[dfa.table]
        _, new_colour = np.unique(signature, axis=0, return_inverse=True)
        new_n = int(new_colour.max()) + 1
        if new_n == n_colours:
            break
        colour = new_colour
        n_colours = new_n

    # Canonical renumbering: blocks ordered by first reachable occurrence
    # starting from the start state's block (BFS order, deterministic).
    rep = np.full(n_colours, -1, dtype=np.int64)
    for q in range(n):
        c = int(colour[q])
        if rep[c] < 0:
            rep[c] = q
    order = []
    seen = set()
    stack = [int(colour[dfa.start])]
    while stack:
        c = stack.pop(0)
        if c in seen:
            continue
        seen.add(c)
        order.append(c)
        r = rep[c]
        for a in range(k):
            stack.append(int(colour[dfa.table[r, a]]))
    new_id = {c: i for i, c in enumerate(order)}

    m = len(order)
    table = np.zeros((m, k), dtype=STATE_DTYPE)
    accepting = set()
    acc_mask = dfa.accepting_mask
    for c in order:
        i = new_id[c]
        r = rep[c]
        table[i] = [new_id[int(colour[dfa.table[r, a]])] for a in range(k)]
        if acc_mask[r]:
            accepting.add(i)
    return DFA(
        table=table,
        start=new_id[int(colour[dfa.start])],
        accepting=frozenset(accepting),
        name=name if name is not None else dfa.name,
    )
