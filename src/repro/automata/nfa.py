"""Non-deterministic finite automata and the subset construction.

The NFA here is the Thompson-construction target of the regex compiler: a set
of states with symbol transitions and ε-transitions.  ``nfa_to_dfa`` performs
the classic subset construction to produce the dense-table :class:`DFA` the
rest of the library operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import AutomatonError

EPSILON = -1  # sentinel symbol id for ε-transitions


@dataclass
class NFA:
    """A non-deterministic finite automaton over integer symbols.

    Transitions are stored as a list-of-dicts: ``transitions[q][a]`` is the
    set of states reachable from ``q`` on symbol ``a`` (``a == EPSILON`` for
    ε-moves).  This sparse layout matches Thompson construction output where
    most states have one or two outgoing edges.
    """

    n_symbols: int
    transitions: List[Dict[int, Set[int]]] = field(default_factory=list)
    start: int = 0
    accepting: Set[int] = field(default_factory=set)
    name: str = "nfa"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_state(self) -> int:
        """Add a fresh state and return its id."""
        self.transitions.append({})
        return len(self.transitions) - 1

    def add_transition(self, src: int, symbol: int, dst: int) -> None:
        """Add ``src --symbol--> dst`` (``symbol`` may be :data:`EPSILON`)."""
        self._check_state(src)
        self._check_state(dst)
        if symbol != EPSILON and not (0 <= symbol < self.n_symbols):
            raise AutomatonError(f"symbol {symbol} out of range [0, {self.n_symbols})")
        self.transitions[src].setdefault(symbol, set()).add(dst)

    def add_transitions(self, src: int, symbols: Iterable[int], dst: int) -> None:
        """Add ``src --a--> dst`` for every ``a`` in ``symbols``."""
        for sym in symbols:
            self.add_transition(src, sym, dst)

    def _check_state(self, state: int) -> None:
        if not (0 <= state < len(self.transitions)):
            raise AutomatonError(f"state {state} out of range [0, {len(self.transitions)})")

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via ε-moves (inclusive)."""
        stack = list(states)
        closure: Set[int] = set(stack)
        while stack:
            q = stack.pop()
            for nxt in self.transitions[q].get(EPSILON, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: Iterable[int], symbol: int) -> Set[int]:
        """States reachable from ``states`` on one ``symbol`` edge (no ε)."""
        out: Set[int] = set()
        for q in states:
            out |= self.transitions[q].get(symbol, set())
        return out

    def run(self, data: Iterable[int]) -> FrozenSet[int]:
        """Simulate the NFA over ``data`` and return the active state set."""
        active = self.epsilon_closure([self.start])
        for sym in data:
            active = self.epsilon_closure(self.move(active, int(sym)))
            if not active:
                break
        return frozenset(active)

    def accepts(self, data: Iterable[int]) -> bool:
        """True iff some accepting state is active after consuming ``data``."""
        return bool(self.run(data) & self.accepting)

    def make_accepting_sticky(self) -> None:
        """Give every accepting state a self-loop on the whole alphabet.

        Turns a "match the whole input" automaton into a "has a prefix that
        matched" scanner, which is the semantics pattern-matching workloads
        (Snort/ClamAV rules) use: once a signature fires the stream stays
        flagged.
        """
        for q in self.accepting:
            for sym in range(self.n_symbols):
                self.add_transition(q, sym, q)


def symbol_classes(nfa: NFA) -> List[List[int]]:
    """Partition the alphabet into behaviourally identical symbol classes.

    Two symbols are equivalent when every NFA state has exactly the same
    outgoing targets on both.  Rule-set NFAs touch only a handful of bytes
    explicitly, so the 256-symbol alphabet typically collapses to a few
    dozen classes — a large constant-factor win for determinization, with
    identical results.
    """
    signatures: Dict[int, list] = {sym: [] for sym in range(nfa.n_symbols)}
    for q, edges in enumerate(nfa.transitions):
        for sym, dsts in edges.items():
            if sym == EPSILON:
                continue
            signatures[sym].append((q, tuple(sorted(dsts))))
    groups: Dict[tuple, List[int]] = {}
    for sym in range(nfa.n_symbols):
        groups.setdefault(tuple(signatures[sym]), []).append(sym)
    return list(groups.values())


def nfa_to_dfa(nfa: NFA, name: Optional[str] = None, max_states: int = 100_000) -> DFA:
    """Determinize ``nfa`` via the subset construction.

    The resulting DFA is *complete*: a dead state is materialized for subsets
    with no outgoing transition so that the dense table has no holes.  The
    construction runs over symbol equivalence classes (see
    :func:`symbol_classes`) and expands the full-width table at the end.

    Parameters
    ----------
    max_states:
        Safety valve against exponential blow-up; raises
        :class:`AutomatonError` when exceeded.
    """
    classes = symbol_classes(nfa)
    reps = [cls[0] for cls in classes]
    n_classes = len(classes)
    n = nfa.n_states

    # ε-eliminate once: closed_move[q][ci] is the bitmask of
    # ε-closure(move(q, rep(ci))).  Subsets become ints, and a subset's
    # class target is a plain OR over its member masks.
    closure_mask = [0] * n
    for q in range(n):
        mask = 0
        for s in nfa.epsilon_closure([q]):
            mask |= 1 << s
        closure_mask[q] = mask
    closed_move: List[List[int]] = [[0] * n_classes for _ in range(n)]
    for q in range(n):
        edges = nfa.transitions[q]
        for ci, sym in enumerate(reps):
            t = 0
            for d in edges.get(sym, ()):
                t |= closure_mask[d]
            closed_move[q][ci] = t
    acc_mask = 0
    for q in nfa.accepting:
        acc_mask |= 1 << q

    def bits(mask: int) -> List[int]:
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    start_mask = closure_mask[nfa.start]
    subset_ids: Dict[int, int] = {start_mask: 0}
    worklist: List[int] = [start_mask]
    rows: List[List[int]] = []
    accepting: Set[int] = set()

    while worklist:
        subset = worklist.pop()
        sid = subset_ids[subset]
        while len(rows) <= sid:
            rows.append([0] * n_classes)
        if subset & acc_mask:
            accepting.add(sid)
        members = [closed_move[q] for q in bits(subset)]
        row = rows[sid]
        for ci in range(n_classes):
            target = 0
            for moves in members:
                target |= moves[ci]
            tid = subset_ids.get(target)
            if tid is None:
                tid = len(subset_ids)
                if tid > max_states:
                    raise AutomatonError(
                        f"subset construction exceeded {max_states} states for {nfa.name!r}"
                    )
                subset_ids[target] = tid
                worklist.append(target)
            row[ci] = tid

    class_table = np.asarray(rows, dtype=STATE_DTYPE)
    table = np.empty((class_table.shape[0], nfa.n_symbols), dtype=STATE_DTYPE)
    for ci, cls in enumerate(classes):
        table[:, cls] = class_table[:, ci : ci + 1]
    return DFA(
        table=table,
        start=0,
        accepting=frozenset(accepting),
        name=name if name is not None else nfa.name,
    )


def union_nfas(nfas: List[NFA], name: str = "union") -> NFA:
    """Disjunction of several NFAs: a new start ε-branches to each operand.

    This is how the paper builds each benchmark FSM — "a disjunction of
    multiple randomly selected regular expressions".
    """
    if not nfas:
        raise AutomatonError("union_nfas requires at least one NFA")
    n_symbols = nfas[0].n_symbols
    for n in nfas:
        if n.n_symbols != n_symbols:
            raise AutomatonError("all NFAs in a union must share an alphabet")
    out = NFA(n_symbols=n_symbols, name=name)
    new_start = out.add_state()
    out.start = new_start
    for nfa in nfas:
        offset = out.n_states
        for _ in range(nfa.n_states):
            out.add_state()
        for q, edges in enumerate(nfa.transitions):
            for sym, dsts in edges.items():
                for d in dsts:
                    out.add_transition(q + offset, sym, d + offset)
        out.add_transition(new_start, EPSILON, nfa.start + offset)
        out.accepting |= {q + offset for q in nfa.accepting}
    return out
