"""Non-deterministic finite automata and the subset construction.

The NFA here is the Thompson-construction target of the regex compiler: a set
of states with symbol transitions and ε-transitions.  ``nfa_to_dfa`` performs
the classic subset construction to produce the dense-table :class:`DFA` the
rest of the library operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import AutomatonError

EPSILON = -1  # sentinel symbol id for ε-transitions


@dataclass
class NFA:
    """A non-deterministic finite automaton over integer symbols.

    Transitions are stored as a list-of-dicts: ``transitions[q][a]`` is the
    set of states reachable from ``q`` on symbol ``a`` (``a == EPSILON`` for
    ε-moves).  This sparse layout matches Thompson construction output where
    most states have one or two outgoing edges.
    """

    n_symbols: int
    transitions: List[Dict[int, Set[int]]] = field(default_factory=list)
    start: int = 0
    accepting: Set[int] = field(default_factory=set)
    name: str = "nfa"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_state(self) -> int:
        """Add a fresh state and return its id."""
        self.transitions.append({})
        return len(self.transitions) - 1

    def add_transition(self, src: int, symbol: int, dst: int) -> None:
        """Add ``src --symbol--> dst`` (``symbol`` may be :data:`EPSILON`)."""
        self._check_state(src)
        self._check_state(dst)
        if symbol != EPSILON and not (0 <= symbol < self.n_symbols):
            raise AutomatonError(f"symbol {symbol} out of range [0, {self.n_symbols})")
        self.transitions[src].setdefault(symbol, set()).add(dst)

    def add_transitions(self, src: int, symbols: Iterable[int], dst: int) -> None:
        """Add ``src --a--> dst`` for every ``a`` in ``symbols``."""
        for sym in symbols:
            self.add_transition(src, sym, dst)

    def _check_state(self, state: int) -> None:
        if not (0 <= state < len(self.transitions)):
            raise AutomatonError(f"state {state} out of range [0, {len(self.transitions)})")

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via ε-moves (inclusive)."""
        stack = list(states)
        closure: Set[int] = set(stack)
        while stack:
            q = stack.pop()
            for nxt in self.transitions[q].get(EPSILON, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: Iterable[int], symbol: int) -> Set[int]:
        """States reachable from ``states`` on one ``symbol`` edge (no ε)."""
        out: Set[int] = set()
        for q in states:
            out |= self.transitions[q].get(symbol, set())
        return out

    def run(self, data: Iterable[int]) -> FrozenSet[int]:
        """Simulate the NFA over ``data`` and return the active state set."""
        active = self.epsilon_closure([self.start])
        for sym in data:
            active = self.epsilon_closure(self.move(active, int(sym)))
            if not active:
                break
        return frozenset(active)

    def accepts(self, data: Iterable[int]) -> bool:
        """True iff some accepting state is active after consuming ``data``."""
        return bool(self.run(data) & self.accepting)

    def make_accepting_sticky(self) -> None:
        """Give every accepting state a self-loop on the whole alphabet.

        Turns a "match the whole input" automaton into a "has a prefix that
        matched" scanner, which is the semantics pattern-matching workloads
        (Snort/ClamAV rules) use: once a signature fires the stream stays
        flagged.
        """
        for q in self.accepting:
            for sym in range(self.n_symbols):
                self.add_transition(q, sym, q)


def symbol_classes(nfa: NFA) -> List[List[int]]:
    """Partition the alphabet into behaviourally identical symbol classes.

    Two symbols are equivalent when every NFA state has exactly the same
    outgoing targets on both.  Rule-set NFAs touch only a handful of bytes
    explicitly, so the 256-symbol alphabet typically collapses to a few
    dozen classes — a large constant-factor win for determinization, with
    identical results.
    """
    signatures: Dict[int, list] = {sym: [] for sym in range(nfa.n_symbols)}
    for q, edges in enumerate(nfa.transitions):
        for sym, dsts in edges.items():
            if sym == EPSILON:
                continue
            signatures[sym].append((q, tuple(sorted(dsts))))
    groups: Dict[tuple, List[int]] = {}
    for sym in range(nfa.n_symbols):
        groups.setdefault(tuple(signatures[sym]), []).append(sym)
    return list(groups.values())


def _epsilon_closure_matrix(nfa: NFA, n_bytes: int) -> np.ndarray:
    """``(n_states, n_bytes)`` packed boolean matrix of per-state ε-closures.

    Computed as a vectorized fixpoint over the static ε-edge list: every
    iteration ORs each state's successors' closure rows into its own
    (``np.bitwise_or.reduceat`` over the edge-sorted gather), so one pass
    costs O(ε-edges × n_bytes) with no per-state python work.  Convergence
    takes at most the ε-diameter iterations — small for Thompson NFAs.
    """
    n = nfa.n_states
    closure = np.zeros((n, n_bytes), dtype=np.uint8)
    closure[np.arange(n), np.arange(n) // 8] = 1 << (np.arange(n) % 8).astype(np.uint8)

    srcs: List[int] = []
    dsts: List[int] = []
    for q, edges in enumerate(nfa.transitions):
        for d in edges.get(EPSILON, ()):
            srcs.append(q)
            dsts.append(d)
    if not srcs:
        return closure
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    group_src = src[np.concatenate(([0], np.flatnonzero(np.diff(src)) + 1))]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(src)) + 1))

    while True:
        contrib = np.bitwise_or.reduceat(closure[dst], starts, axis=0)
        updated = closure[group_src] | contrib
        if np.array_equal(updated, closure[group_src]):
            return closure
        closure[group_src] = updated


def _grouped_or(rows: np.ndarray, counts: np.ndarray, width: int) -> np.ndarray:
    """OR-reduce consecutive ``counts[i]``-sized row groups of ``rows``.

    Vectorized segmented reduction: empty groups yield all-zero rows.  Only
    non-empty groups participate in the ``np.bitwise_or.reduceat`` call —
    their start offsets are strictly increasing, which sidesteps reduceat's
    empty-segment quirks entirely.
    """
    n_groups = counts.size
    out = np.zeros((n_groups, width), dtype=np.uint8)
    nonempty = np.flatnonzero(counts)
    if rows.shape[0] == 0 or nonempty.size == 0:
        return out
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))[nonempty]
    out[nonempty] = np.bitwise_or.reduceat(rows, starts, axis=0)
    return out


def nfa_to_dfa(nfa: NFA, name: Optional[str] = None, max_states: int = 100_000) -> DFA:
    """Determinize ``nfa`` via a vectorized bitset subset construction.

    The resulting DFA is *complete*: a dead state is materialized for subsets
    with no outgoing transition so that the dense table has no holes.  The
    construction runs over symbol equivalence classes (see
    :func:`symbol_classes`) and expands the full-width table at the end.

    State sets are packed uint8 bitset rows.  ε-closures come from
    :func:`_epsilon_closure_matrix` (a vectorized fixpoint), the per-state
    closed moves from one segmented OR over the symbol-edge list, and the
    frontier is expanded **one wave at a time**: a whole wave of subsets is
    unpacked to a boolean membership matrix, its class targets computed by
    a single segmented OR-reduction, and new subsets deduplicated with
    ``np.unique`` over packed rows — no per-subset python inner loops.

    Parameters
    ----------
    max_states:
        Safety valve against exponential blow-up; raises a structured
        :class:`AutomatonError` (carrying ``state_count`` and ``limit``)
        when exceeded.
    """
    classes = symbol_classes(nfa)
    reps = [cls[0] for cls in classes]
    n_classes = len(classes)
    n = nfa.n_states
    n_bytes = (n + 7) // 8

    closure = _epsilon_closure_matrix(nfa, n_bytes)

    # closed_move[q, ci] = packed ε-closure(move(q, rep(ci))): one gather of
    # the destination closures + one segmented OR over the (q, ci) edge list.
    rep_class = {sym: ci for ci, sym in enumerate(reps)}
    e_src: List[int] = []
    e_cls: List[int] = []
    e_dst: List[int] = []
    for q, edges in enumerate(nfa.transitions):
        for sym, targets in edges.items():
            ci = rep_class.get(sym)
            if ci is None:
                continue
            for d in targets:
                e_src.append(q)
                e_cls.append(ci)
                e_dst.append(d)
    closed_move = np.zeros((n, n_classes, n_bytes), dtype=np.uint8)
    if e_src:
        src = np.asarray(e_src, dtype=np.int64)
        cls_arr = np.asarray(e_cls, dtype=np.int64)
        dst = np.asarray(e_dst, dtype=np.int64)
        key = src * n_classes + cls_arr
        order = np.argsort(key, kind="stable")
        key, dst = key[order], dst[order]
        boundaries = np.concatenate(([0], np.flatnonzero(np.diff(key)) + 1))
        merged = np.bitwise_or.reduceat(closure[dst], boundaries, axis=0)
        group_keys = key[boundaries]
        closed_move[group_keys // n_classes, group_keys % n_classes] = merged
    closed_move_flat = closed_move.reshape(n, n_classes * n_bytes)

    acc_packed = np.zeros(n_bytes, dtype=np.uint8)
    for q in nfa.accepting:
        acc_packed[q // 8] |= np.uint8(1 << (q % 8))

    start_row = closure[nfa.start]
    subset_ids: Dict[bytes, int] = {start_row.tobytes(): 0}
    accepting: Set[int] = set()
    table_rows: List[np.ndarray] = []
    frontier = start_row[None, :]  # (wave_size, n_bytes)

    while frontier.shape[0]:
        wave = frontier.shape[0]
        hits = (frontier & acc_packed).any(axis=1)
        base_id = sum(t.shape[0] for t in table_rows)
        accepting.update(
            int(base_id + i) for i in np.flatnonzero(hits)
        )

        members = np.unpackbits(frontier, axis=1, bitorder="little")[:, :n]
        counts = members.sum(axis=1).astype(np.int64)
        _, states = np.nonzero(members)  # row-major: grouped by wave row
        targets = _grouped_or(
            closed_move_flat[states], counts, n_classes * n_bytes
        ).reshape(wave * n_classes, n_bytes)

        # Dedupe the wave's targets and assign ids to genuinely new subsets.
        uniq, inverse = np.unique(targets, axis=0, return_inverse=True)
        uniq_ids = np.empty(uniq.shape[0], dtype=np.int64)
        fresh_rows: List[np.ndarray] = []
        for u in range(uniq.shape[0]):
            packed = uniq[u].tobytes()
            sid = subset_ids.get(packed)
            if sid is None:
                sid = len(subset_ids)
                if sid >= max_states:
                    raise AutomatonError(
                        f"subset construction for {nfa.name!r} exceeded "
                        f"max_states: reached {sid + 1} states "
                        f"(limit {max_states})",
                        state_count=sid + 1,
                        limit=max_states,
                        automaton=nfa.name,
                    )
                subset_ids[packed] = sid
                fresh_rows.append(uniq[u])
            uniq_ids[u] = sid
        table_rows.append(
            uniq_ids[np.ravel(inverse)].reshape(wave, n_classes).astype(STATE_DTYPE)
        )
        frontier = (
            np.stack(fresh_rows)
            if fresh_rows
            else np.empty((0, n_bytes), dtype=np.uint8)
        )

    class_table = np.concatenate(table_rows, axis=0)
    table = np.empty((class_table.shape[0], nfa.n_symbols), dtype=STATE_DTYPE)
    for ci, cls in enumerate(classes):
        table[:, cls] = class_table[:, ci : ci + 1]
    return DFA(
        table=table,
        start=0,
        accepting=frozenset(accepting),
        name=name if name is not None else nfa.name,
    )


def union_nfas(nfas: List[NFA], name: str = "union") -> NFA:
    """Disjunction of several NFAs: a new start ε-branches to each operand.

    This is how the paper builds each benchmark FSM — "a disjunction of
    multiple randomly selected regular expressions".
    """
    if not nfas:
        raise AutomatonError("union_nfas requires at least one NFA")
    n_symbols = nfas[0].n_symbols
    for n in nfas:
        if n.n_symbols != n_symbols:
            raise AutomatonError("all NFAs in a union must share an alphabet")
    out = NFA(n_symbols=n_symbols, name=name)
    new_start = out.add_state()
    out.start = new_start
    for nfa in nfas:
        offset = out.n_states
        for _ in range(nfa.n_states):
            out.add_state()
        for q, edges in enumerate(nfa.transitions):
            for sym, dsts in edges.items():
                for d in dsts:
                    out.add_transition(q + offset, sym, d + offset)
        out.add_transition(new_start, EPSILON, nfa.start + offset)
        out.accepting |= {q + offset for q in nfa.accepting}
    return out
