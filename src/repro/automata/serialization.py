"""DFA (de)serialization.

Benchmark suites can be expensive to compile (regex → NFA → subset
construction → minimization), so suites cache compiled DFAs on disk in NumPy's
``.npz`` container.  The format stores the dense table, the start state, the
accepting set and the name; it is versioned so later format changes can stay
backward compatible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import AutomatonError

FORMAT_VERSION = 1


def save_dfa(dfa: DFA, path: Union[str, Path]) -> None:
    """Write ``dfa`` to ``path`` (``.npz``)."""
    path = Path(path)
    meta = json.dumps(
        {
            "version": FORMAT_VERSION,
            "name": dfa.name,
            "start": dfa.start,
        }
    )
    np.savez_compressed(
        path,
        table=dfa.table,
        accepting=np.asarray(sorted(dfa.accepting), dtype=np.int64),
        meta=np.asarray(meta),
    )


def load_dfa(path: Union[str, Path]) -> DFA:
    """Load a DFA previously written by :func:`save_dfa`."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; accept both spellings.
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise AutomatonError(f"no DFA file at {path}")
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("version") != FORMAT_VERSION:
            raise AutomatonError(
                f"unsupported DFA file version {meta.get('version')!r} in {path}"
            )
        return DFA(
            table=data["table"].astype(STATE_DTYPE),
            start=int(meta["start"]),
            accepting=frozenset(int(s) for s in data["accepting"]),
            name=str(meta["name"]),
        )
