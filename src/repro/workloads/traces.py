"""Input trace generators — stand-ins for the paper's tcpdump captures,
binary concatenations and IBM PowerEN trace files.

A :class:`TraceSpec` describes a byte stream statistically: a background
symbol distribution (domain-flavoured), a density of *sync* symbols (the
convergence dial of the counter component), embedded keyword occurrences,
and optional phases with different sync densities (the input-sensitivity
dial).  ``generate`` is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ReproError


def _normalize(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ReproError("symbol weights must have positive mass")
    return weights / total


def ascii_text_weights(n_symbols: int = 256) -> np.ndarray:
    """English-ish letter frequencies over printable ASCII (PowerEN flavour)."""
    w = np.zeros(n_symbols)
    letters = "etaoinshrdlcumwfgypbvkjxqz"
    for rank, ch in enumerate(letters):
        w[ord(ch)] = 100.0 / (rank + 5)
    w[ord(" ")] = 30.0
    for ch in ".,;:!?'\"-\n":
        w[ord(ch)] = 2.0
    for d in "0123456789":
        w[ord(d)] = 1.5
    return w


def network_weights(n_symbols: int = 256) -> np.ndarray:
    """Header-token + payload mix (Snort flavour): ASCII-heavy with a
    binary tail."""
    w = np.zeros(n_symbols)
    w[32:127] = 1.0  # printable
    for ch in "GETPOSTHTP/1.0\r\nHost:Content-Length".encode():
        w[ch] += 3.0
    w[0:32] = 0.3  # control bytes
    w[127:256] = 0.5  # payload bytes
    return w


def numeric_log_weights(n_symbols: int = 256) -> np.ndarray:
    """Machine-generated transaction-log flavour: digits, separators and
    uppercase field tags dominate.  Used for rule-miss-dominated PowerEN
    streams, where the scanners' lowercase dictionary words rarely fire."""
    w = np.zeros(n_symbols)
    for d in "0123456789":
        w[ord(d)] = 12.0
    for ch in " ,;:|-/.\t\n":
        w[ord(ch)] = 4.0
    for ch in "ABCDEFGHIJKLMNOPQRSTUVWXYZ":
        w[ord(ch)] = 1.0
    return w


def binary_weights(n_symbols: int = 256) -> np.ndarray:
    """Executable-image flavour (ClamAV): near-uniform bytes with spikes at
    0x00/0xFF and common opcode values."""
    w = np.ones(n_symbols)
    w[0x00] = 12.0
    w[0xFF] = 6.0
    for op in (0x48, 0x89, 0x8B, 0xE8, 0x55, 0xC3, 0x90):
        w[op] = 4.0
    return w


@dataclass(frozen=True)
class TracePhase:
    """One phase of a phased trace: a sync-density override over a span."""

    fraction: float  # share of the stream this phase covers
    sync_density: float


@dataclass(frozen=True)
class TraceSpec:
    """Statistical description of an input stream.

    Attributes
    ----------
    weights:
        Background byte distribution (unnormalized).
    sync_symbols:
        The counter component's reset symbols.
    sync_density:
        Probability per position of emitting a sync symbol (uniformly chosen
        among ``sync_symbols``); 0 disables convergence entirely.
    keywords:
        Byte strings spliced in at ``keyword_density`` per position (drives
        scanner matches).
    phases:
        When non-empty, the stream is divided into spans with per-phase
        ``sync_density`` — the input-sensitivity dial.
    """

    weights: np.ndarray
    sync_symbols: Tuple[int, ...] = ()
    sync_density: float = 0.0
    keywords: Tuple[bytes, ...] = ()
    keyword_density: float = 0.0
    phases: Tuple[TracePhase, ...] = ()
    name: str = "trace"

    def generate(self, length: int, seed: int = 0) -> np.ndarray:
        """Produce ``length`` bytes (uint8 array), deterministically."""
        if length <= 0:
            raise ReproError(f"trace length must be positive, got {length}")
        rng = np.random.default_rng(seed)
        probs = _normalize(self.weights)
        out = rng.choice(len(probs), size=length, p=probs).astype(np.uint8)

        # Sync symbols (possibly phased).
        if self.sync_symbols:
            syncs = np.asarray(self.sync_symbols, dtype=np.uint8)
            if self.phases:
                pos = 0
                for phase in self.phases:
                    span = int(round(length * phase.fraction))
                    span = min(span, length - pos)
                    if span <= 0:
                        continue
                    mask = rng.random(span) < phase.sync_density
                    idx = np.flatnonzero(mask) + pos
                    out[idx] = rng.choice(syncs, size=idx.size)
                    pos += span
            elif self.sync_density > 0:
                mask = rng.random(length) < self.sync_density
                idx = np.flatnonzero(mask)
                out[idx] = rng.choice(syncs, size=idx.size)

        # Keyword injection.
        if self.keywords and self.keyword_density > 0:
            n_inject = rng.binomial(length, self.keyword_density)
            for _ in range(n_inject):
                kw = self.keywords[rng.integers(0, len(self.keywords))]
                if len(kw) >= length:
                    continue
                pos = int(rng.integers(0, length - len(kw)))
                out[pos : pos + len(kw)] = np.frombuffer(kw, dtype=np.uint8)
        return out

    def generate_many(self, length: int, count: int, seed: int = 0) -> list:
        """The paper provides 20 inputs per FSM; this mirrors that."""
        return [self.generate(length, seed=seed * 1000 + i) for i in range(count)]
