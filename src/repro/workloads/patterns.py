"""Domain-flavoured regex pattern generators.

Each generator mirrors the signature style of one benchmark family: Snort
rules (protocol tokens + wildcard gaps), ClamAV signatures (hex byte strings
with ``{n}``-style skips), and PowerEN (dictionary-word patterns with
classes and bounded repeats).  Generated patterns are valid inputs for
:func:`repro.automata.regex.compile_disjunction`.
"""

from __future__ import annotations

from typing import List

import numpy as np

_SNORT_TOKENS = [
    "GET", "POST", "HEAD", "HTTP", "Host", "User-Agent", "Cookie",
    "cmd\\.exe", "passwd", "admin", "login", "shell", "eval", "exec",
    "SELECT", "UNION", "script", "alert",
]

_POWEREN_WORDS = [
    "order", "invoice", "total", "account", "customer", "payment",
    "shipment", "status", "query", "report", "error", "warning",
]


def _escape_byte(b: int) -> str:
    return f"\\x{b:02x}"


def snort_patterns(count: int, seed: int = 0) -> List[str]:
    """NIDS-style patterns: token, optional gap, token or class run."""
    rng = np.random.default_rng(seed)
    patterns = []
    for _ in range(count):
        head = _SNORT_TOKENS[rng.integers(0, len(_SNORT_TOKENS))]
        style = rng.integers(0, 3)
        if style == 0:
            tail = _SNORT_TOKENS[rng.integers(0, len(_SNORT_TOKENS))]
            gap = int(rng.integers(1, 5))
            patterns.append(f"{head}.{{0,{gap}}}{tail}")
        elif style == 1:
            run = int(rng.integers(2, 5))
            patterns.append(f"{head}[0-9a-f]{{{run}}}")
        else:
            patterns.append(f"{head}(%[0-9A-Fa-f][0-9A-Fa-f])+")
    return patterns


#: Byte values ClamAV-style signatures draw from.  The spiked background
#: bytes (0x00/0xFF/common opcodes, see ``binary_weights``) are excluded so
#: signature *heads* do not fire on every other background byte — otherwise
#: the scanner lives in deep skip-window states whose speculation-queue rank
#: is far beyond any realistic register budget.
_CLAMAV_SIG_BYTES = [
    b for b in range(0x01, 0xF0)
    if b not in (0x00, 0x48, 0x89, 0x8B, 0xE8, 0x55, 0xC3, 0x90, 0xFF)
]


def clamav_patterns(count: int, seed: int = 0) -> List[str]:
    """Virus-signature-style patterns: hex byte runs with bounded skips."""
    rng = np.random.default_rng(seed)
    patterns = []
    for _ in range(count):
        n_parts = int(rng.integers(2, 4))
        parts = []
        for _ in range(n_parts):
            run_len = int(rng.integers(2, 5))
            picks = rng.choice(len(_CLAMAV_SIG_BYTES), size=run_len)
            run = "".join(_escape_byte(_CLAMAV_SIG_BYTES[int(i)]) for i in picks)
            parts.append(run)
        skips = [f".{{0,{int(rng.integers(2, 6))}}}" for _ in range(n_parts - 1)]
        pattern = parts[0]
        for skip, part in zip(skips, parts[1:]):
            pattern += skip + part
        patterns.append(pattern)
    return patterns


def poweren_patterns(count: int, seed: int = 0) -> List[str]:
    """Business-text patterns: words, classes and bounded repetitions."""
    rng = np.random.default_rng(seed)
    patterns = []
    for _ in range(count):
        word = _POWEREN_WORDS[rng.integers(0, len(_POWEREN_WORDS))]
        style = rng.integers(0, 3)
        if style == 0:
            patterns.append(f"{word}[ :=]+[0-9]{{2,6}}")
        elif style == 1:
            other = _POWEREN_WORDS[rng.integers(0, len(_POWEREN_WORDS))]
            patterns.append(f"{word}s? (and|or|of) {other}s?")
        else:
            patterns.append(f"({word}|{word.upper()})[a-z]*")
    return patterns


PATTERN_GENERATORS = {
    "snort": snort_patterns,
    "clamav": clamav_patterns,
    "poweren": poweren_patterns,
}
