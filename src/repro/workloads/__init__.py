"""Workload substrate: synthetic benchmark suites, traces and classic FSMs.

These stand in for the paper's ANMLZoo/AutomataZoo rule sets and the
tcpdump/binary/PowerEN input traces (see DESIGN.md §2 for the substitution
rationale).
"""

from repro.workloads import classic
from repro.workloads.components import (
    Component,
    counter_component,
    funnel_component,
    product_dfa,
    scanner_component,
    window_component,
)
from repro.workloads.suites import (
    REGIME_LAYOUT,
    SUITES,
    SuiteMember,
    build_all_suites,
    build_member,
    build_suite,
)
from repro.workloads.traces import (
    TracePhase,
    TraceSpec,
    ascii_text_weights,
    binary_weights,
    network_weights,
)

__all__ = [
    "Component",
    "REGIME_LAYOUT",
    "SUITES",
    "SuiteMember",
    "TracePhase",
    "TraceSpec",
    "ascii_text_weights",
    "binary_weights",
    "build_all_suites",
    "build_member",
    "build_suite",
    "classic",
    "counter_component",
    "funnel_component",
    "network_weights",
    "product_dfa",
    "scanner_component",
    "window_component",
]
