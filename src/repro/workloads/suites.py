"""Synthetic benchmark suites: the ANMLZoo/AutomataZoo stand-ins.

Each suite (``snort``, ``clamav``, ``poweren``) has 12 members, mirroring the
paper's 12 FSMs per application.  A member couples a product DFA (counter ×
funnel × regex scanner, see :mod:`repro.workloads.components`) with a
:class:`~repro.workloads.traces.TraceSpec`, because the properties that
decide which scheme wins are *joint* FSM+input properties.

Members are generated in four **regimes** spanning the paper's observed
space (the per-suite regime mix follows Table II's input-sensitive counts
and the Fig. 8 narrative — ``*1-2`` PM-friendly, next few SRE-friendly,
the rest split RR/NF):

* ``pm``   — small counter (r=4) without syncs: the lookback-2 queue's top-4
  covers the truth (spec-4 high) while spec-1 misses; no convergence, so
  recovery-based schemes pay for their misses and PM's spec-k redundancy is
  the cheapest insurance.
* ``sre``  — sync-dense traces: the counter forgets its state within a few
  symbols, so forwarded end states are almost surely correct and SRE's
  conservative recovery wins.
* ``rr``   — wide counter (r ≈ 12–24), no syncs, keyword-dense traces that
  keep the scanner off its root state: the truth hides deep in the
  speculation queue (beyond spec-4, inside ~top-16), where only aggressive
  enumeration by idle threads finds it.
* ``nf``   — like ``rr`` but with *phased* sync density, making speculation
  accuracy strongly input-dependent (the sensitivity trigger for NF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.regex import compile_disjunction
from repro.workloads.components import (
    counter_component,
    funnel_component,
    product_dfa,
    scanner_component,
)
from repro.workloads.patterns import PATTERN_GENERATORS
from repro.workloads.traces import (
    TracePhase,
    TraceSpec,
    ascii_text_weights,
    binary_weights,
    network_weights,
    numeric_log_weights,
)
from repro.errors import ReproError

SUITES = ("snort", "clamav", "poweren")

#: Upper bound on product-DFA state counts (keeps tables laptop-sized while
#: spanning the paper's hundreds-to-tens-of-thousands range).
MAX_PRODUCT_STATES = 40_000

#: Bump when the generators change — invalidates the on-disk member cache.
CACHE_VERSION = 2

#: Regime assignment per member index (1-based), per suite.  Mirrors the
#: paper: *1-2 PM-friendly everywhere (ClamAV 1-3), *3-4/5 SRE-friendly,
#: and input-sensitive counts of 3/5/6 (Table II) drive the NF share.
REGIME_LAYOUT: Dict[str, Tuple[str, ...]] = {
    "snort": ("pm", "pm", "sre", "sre", "nf", "nf", "nf", "rr", "rr", "rr", "rr", "rr"),
    "clamav": ("pm", "pm", "pm", "sre", "sre", "nf", "nf", "nf", "nf", "nf", "rr", "rr"),
    "poweren": ("pm", "pm", "sre", "nf", "nf", "nf", "nf", "nf", "nf", "rr", "rr", "rr"),
}

_SUITE_WEIGHTS = {
    "snort": network_weights,
    "clamav": binary_weights,
    "poweren": ascii_text_weights,
}

#: Scanner sizes per suite (pattern counts): Snort largest, PowerEN smallest,
#: echoing Table II's state-count ordering.
_SUITE_PATTERN_COUNT = {"snort": 8, "clamav": 6, "poweren": 4}

#: Sync symbols per suite — bytes that plausibly "reset" stream context
#: (newline/NUL-ish delimiters).
_SUITE_SYNC_SYMBOLS = {
    "snort": (0x0A, 0x0D),
    "clamav": (0x00, 0xCC),
    "poweren": (0x0A, 0x2E),  # newline, '.'
}


@dataclass(frozen=True)
class SuiteMember:
    """One benchmark FSM plus its input model."""

    suite: str
    index: int  # 1-based, as in "Snort3"
    regime: str
    dfa: DFA
    trace: TraceSpec

    @property
    def name(self) -> str:
        return f"{self.suite}{self.index}"

    def generate_input(self, length: int, seed: int = 0) -> np.ndarray:
        """One evaluation input (the paper has twenty 10 MB inputs each)."""
        return self.trace.generate(length, seed=seed + self.index * 7919)

    def training_input(self, length: int = 8192, seed: int = 10_000) -> np.ndarray:
        """The offline-profiling slice (0.5% of an input in the paper)."""
        return self.trace.generate(length, seed=seed + self.index * 104729)


def _member_seed(suite: str, index: int) -> int:
    # zlib.crc32 is stable across processes (unlike hash()).
    import zlib

    return zlib.crc32(f"{suite}:{index}".encode()) % (2**31)


def default_cache_dir() -> "Path":
    """Directory for compiled-scanner caching (override with
    ``REPRO_CACHE_DIR``; set it to ``0`` to disable caching)."""
    import os
    from pathlib import Path

    env = os.environ.get("REPRO_CACHE_DIR")
    if env == "0":
        return None  # type: ignore[return-value]
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-gspecpal"


def _build_scanner(suite: str, index: int, seed: int) -> DFA:
    """Compile (or load from cache) the member's scanner DFA.

    Regex → NFA → subset construction → minimization is the slow step of
    member construction, so compiled scanners are cached on disk keyed by
    (suite, index, CACHE_VERSION); everything else rebuilds in milliseconds.
    """
    from repro.automata.serialization import load_dfa, save_dfa

    cache_dir = default_cache_dir()
    cache_file = None
    if cache_dir is not None:
        cache_file = cache_dir / f"{suite}{index}-scanner-v{CACHE_VERSION}.npz"
        if cache_file.exists():
            try:
                return load_dfa(cache_file)
            except Exception:
                pass  # stale/corrupt cache: rebuild below
    from repro.errors import AutomatonError, ReproError

    gen = PATTERN_GENERATORS[suite]
    count = _SUITE_PATTERN_COUNT[suite]
    scanner = None
    # Random pattern sets can occasionally blow up determinization
    # (overlapping bounded gaps); back off by re-drawing and shrinking.
    for attempt in range(6):
        patterns = gen(max(2, count - attempt), seed=seed + 97 * attempt)
        try:
            scanner = compile_disjunction(
                patterns, n_symbols=256, name=f"{suite}{index}-scanner"
            )
            break
        except AutomatonError:
            continue
    if scanner is None:
        raise ReproError(f"could not build a tractable scanner for {suite}{index}")
    if cache_file is not None:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        save_dfa(scanner, cache_file)
    return scanner


def _regime_params(regime: str, rng: np.random.Generator) -> dict:
    """Counter size / sync / trace dials per regime."""
    if regime == "pm":
        return {
            "r": 4,
            "funnel_m": int(rng.integers(6, 10)),
            "sync": False,
            "sync_density": 0.0,
            "phases": (),
            # Miss-dominated streams: a completed (sticky) match would move
            # the truth out of the queue's top block and break the
            # spec-4-covers-truth property that defines this regime.
            "keyword_density": 0.0,
        }
    if regime == "sre":
        return {
            "r": int(rng.integers(10, 16)),
            "funnel_m": int(rng.integers(6, 10)),
            "sync": True,
            "sync_density": 0.4,
            "phases": (),
            "keyword_density": 0.0015,
        }
    if regime == "rr":
        return {
            "r": int(rng.integers(12, 20)),
            "funnel_m": int(rng.integers(6, 10)),
            "sync": False,
            "sync_density": 0.0,
            "phases": (),
            "keyword_density": 0.02,
        }
    if regime == "nf":
        return {
            "r": int(rng.integers(12, 20)),
            "funnel_m": int(rng.integers(6, 10)),
            "sync": True,
            "sync_density": 0.0,  # set per phase below
            # One short easy (sync-rich) span inside a mostly-hard stream:
            # speculation accuracy swings strongly across portions (the NF
            # trigger) while convergence helps too rarely for SRE to win.
            "phases": (
                TracePhase(fraction=0.25, sync_density=0.55),
                TracePhase(fraction=0.75, sync_density=0.0),
            ),
            "keyword_density": 0.02,
        }
    raise ReproError(f"unknown regime {regime!r}")


def build_member(suite: str, index: int) -> SuiteMember:
    """Construct one suite member (deterministic in (suite, index))."""
    if suite not in SUITES:
        raise ReproError(f"unknown suite {suite!r}; available: {SUITES}")
    if not (1 <= index <= 12):
        raise ReproError(f"member index must be in 1..12, got {index}")
    regime = REGIME_LAYOUT[suite][index - 1]
    seed = _member_seed(suite, index)
    rng = np.random.default_rng(seed)
    params = _regime_params(regime, rng)

    scanner = _build_scanner(suite, index, seed)
    sync_symbols = _SUITE_SYNC_SYMBOLS[suite] if params["sync"] else ()
    counter = counter_component(
        params["r"],
        sync_symbols=sync_symbols,
        seed=seed + 1,
        name=f"{suite}{index}-counter",
    )
    # Size governor: keep the product under ~MAX_PRODUCT_STATES by trimming
    # the funnel factor when the scanner came out large.
    funnel_m = params["funnel_m"]
    budget = MAX_PRODUCT_STATES // max(1, params["r"] * scanner.n_states)
    funnel_m = max(2, min(funnel_m, budget))
    funnel = funnel_component(
        funnel_m, seed=seed + 2, name=f"{suite}{index}-funnel"
    )

    # Acceptance: a scanner match *and* a checksum condition on the counter
    # (keeps every factor semantically live, so the product is irreducible).
    scanner_accept = scanner.accepting_mask

    def accepting(factors):
        x_idx, _y_idx, s_idx = factors
        return scanner_accept[s_idx] & (x_idx == 0)

    dfa = product_dfa(
        [counter, funnel, scanner_component(scanner)],
        accepting_fn=accepting,
        name=f"{suite}{index}",
    )

    # Trace spec: suite-flavoured background + the member's dials.  Traces
    # embed literal byte strings (not regexes) to drive scanner activity.
    # PowerEN's PM-regime members model rule-miss-dominated log streams —
    # on plain English text the dictionary-word scanners sit mid-pattern too
    # often for spec-4 to cover the truth (the regime's defining property).
    keywords = tuple(_literal_keywords(suite, rng))
    if suite == "poweren" and regime == "pm":
        weights = numeric_log_weights()
    else:
        weights = _SUITE_WEIGHTS[suite]()
    trace = TraceSpec(
        weights=weights,
        sync_symbols=sync_symbols,
        sync_density=params["sync_density"],
        keywords=keywords,
        keyword_density=params["keyword_density"],
        phases=params["phases"],
        name=f"{suite}{index}-trace",
    )
    return SuiteMember(suite=suite, index=index, regime=regime, dfa=dfa, trace=trace)


def _literal_keywords(suite: str, rng: np.random.Generator) -> List[bytes]:
    """Literal byte strings the traces embed (drive scanner activity)."""
    # Keyword pools are chosen to *exercise* the scanners' prefixes without
    # completing a match: a completed sticky match would park the truth in
    # the absorbing state's queue block for the rest of the stream.
    if suite == "snort":
        pool = [b"GET /index", b"POST /login", b"User-Agent: curl",
                b"SELECT * FROM", b"Host: internal", b"Cookie: session"]
    elif suite == "clamav":
        pool = [bytes(rng.integers(0x01, 0xF0, size=int(rng.integers(4, 10))).tolist())
                for _ in range(6)]
    else:
        pool = [b"delivery note", b"balance 1042", b"ledger entry",
                b"audit trail", b"receipt copy"]
    count = int(rng.integers(3, min(6, len(pool)) + 1))
    picks = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in picks]


def build_suite(suite: str) -> List[SuiteMember]:
    """All 12 members of one suite."""
    return [build_member(suite, i) for i in range(1, 13)]


def build_all_suites() -> Dict[str, List[SuiteMember]]:
    """The full 36-FSM evaluation set."""
    return {suite: build_suite(suite) for suite in SUITES}
