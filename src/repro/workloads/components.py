"""Composable DFA components and the product construction.

The synthetic suite members are **products** of three components whose
individual dynamics are fully understood, which lets the generator dial the
exact properties the schemes are sensitive to (see DESIGN.md §2):

* a **counter** component — a permutation automaton ``x' = (x + w(a)) mod r``
  with optional *sync* symbols that reset ``x`` to a symbol-dependent value.
  Without syncs it never converges and its boundary state is uniformly
  unpredictable (the hard part); sync density controls convergence speed;
* a **funnel** component — ``y' = g(a)``: converges in one symbol, is always
  predicted exactly by lookback-2, and pads the state space the way the
  transient bulk of real rule-set DFAs does;
* a **scanner** component — a real regex-disjunction DFA (sticky accepts)
  carrying the pattern-matching semantics.

The product's acceptance combines the scanner's matches with a counter
condition (``x ∈ X_acc``, a checksum-like side condition), so no component
is redundant and the product is not minimizable away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import AutomatonError


@dataclass(frozen=True)
class Component:
    """One factor of a product DFA: a ``(n_states, n_symbols)`` table."""

    table: np.ndarray
    start: int
    name: str = "component"

    def __post_init__(self) -> None:
        table = np.ascontiguousarray(np.asarray(self.table, dtype=STATE_DTYPE))
        object.__setattr__(self, "table", table)
        if table.ndim != 2:
            raise AutomatonError("component table must be 2-D")
        if not (0 <= self.start < table.shape[0]):
            raise AutomatonError("component start state out of range")

    @property
    def n_states(self) -> int:
        return int(self.table.shape[0])

    @property
    def n_symbols(self) -> int:
        return int(self.table.shape[1])


def counter_component(
    r: int,
    n_symbols: int = 256,
    *,
    weights: Optional[np.ndarray] = None,
    sync_symbols: Iterable[int] = (),
    sync_targets: Optional[np.ndarray] = None,
    seed: int = 0,
    name: str = "counter",
) -> Component:
    """Permutation counter ``x' = (x + w(a)) mod r`` with optional syncs.

    Parameters
    ----------
    r:
        Counter modulus (= component state count).
    weights:
        Per-symbol increments ``w(a)``; random in ``[0, r)`` by default.
    sync_symbols:
        Symbols that *reset* the counter: ``x' = sync_targets[a]``
        regardless of ``x``.  These are the convergence dial: a trace with
        sync density ``q`` makes the component forget its state after
        ``~1/q`` symbols.
    sync_targets:
        Per-symbol reset values; random by default (symbol-dependent so the
        post-sync state stays uncorrelated with queue rank order).
    """
    if r < 1:
        raise AutomatonError("counter modulus must be >= 1")
    rng = np.random.default_rng(seed)
    if weights is None:
        weights = rng.integers(0, r, size=n_symbols)
    weights = np.asarray(weights, dtype=np.int64) % r
    if weights.shape != (n_symbols,):
        raise AutomatonError("weights must have one entry per symbol")
    if sync_targets is None:
        sync_targets = rng.integers(0, r, size=n_symbols)
    sync_targets = np.asarray(sync_targets, dtype=np.int64) % r

    x = np.arange(r, dtype=np.int64)[:, None]
    table = (x + weights[None, :]) % r
    for a in sync_symbols:
        table[:, a] = sync_targets[a]
    return Component(table=table, start=0, name=name)


def funnel_component(
    m: int,
    n_symbols: int = 256,
    *,
    seed: int = 0,
    name: str = "funnel",
) -> Component:
    """Memoryless funnel ``y' = g(a)``: converges in exactly one symbol."""
    if m < 1:
        raise AutomatonError("funnel needs at least one state")
    rng = np.random.default_rng(seed)
    g = rng.integers(0, m, size=n_symbols)
    table = np.tile(g[None, :], (m, 1))
    return Component(table=table, start=0, name=name)


def window_component(
    n_classes: int,
    window: int,
    n_symbols: int = 256,
    *,
    seed: int = 0,
    name: str = "window",
) -> Component:
    """Sliding-window component: state = last ``window`` symbol classes.

    Converges in exactly ``window`` symbols; with ``window > 2`` the
    lookback-2 predictor is left with ``n_classes^(window-2)`` candidates —
    a precise dial for "truth in top-k but not top-1" regimes.
    """
    if n_classes < 2 or window < 1:
        raise AutomatonError("need n_classes >= 2 and window >= 1")
    rng = np.random.default_rng(seed)
    classes = rng.integers(0, n_classes, size=n_symbols)
    n_states = n_classes**window
    s = np.arange(n_states, dtype=np.int64)[:, None]
    # Shift the window: drop the oldest class, append the new one.
    table = (s % (n_classes ** (window - 1))) * n_classes + classes[None, :]
    return Component(table=table, start=0, name=name)


def scanner_component(dfa: DFA, name: str = "scanner") -> Component:
    """Wrap a compiled scanner DFA as a product component."""
    return Component(table=dfa.table, start=dfa.start, name=name)


def product_dfa(
    components: Sequence[Component],
    *,
    accepting_fn,
    name: str = "product",
) -> DFA:
    """Synchronous product of ``components``.

    The composite state id encodes the factor states mixed-radix,
    most-significant factor first:
    ``id = ((x_0 * n_1 + x_1) * n_2 + x_2) ...``.

    Parameters
    ----------
    accepting_fn:
        Callable receiving one ``(n_total,) -> bool`` decision per composite
        state; it is handed the tuple of per-factor index arrays
        ``(idx_0, idx_1, ...)`` and must return a boolean array.
    """
    if not components:
        raise AutomatonError("product needs at least one component")
    n_symbols = components[0].n_symbols
    for c in components:
        if c.n_symbols != n_symbols:
            raise AutomatonError("all components must share an alphabet")
    sizes = [c.n_states for c in components]
    n_total = int(np.prod(sizes))
    if n_total > 2_000_000:
        raise AutomatonError(f"product would have {n_total} states; refusing")

    # Per-factor index of every composite state.
    ids = np.arange(n_total, dtype=np.int64)
    factor_idx = []
    rem = ids
    for size in reversed(sizes):
        factor_idx.append(rem % size)
        rem = rem // size
    factor_idx.reverse()  # factor_idx[i] aligns with components[i]

    # Composite transition table, built factor by factor (vectorized).
    table = np.zeros((n_total, n_symbols), dtype=np.int64)
    for comp, idx in zip(components, factor_idx):
        table = table * comp.n_states + comp.table[idx, :]

    accept_mask = np.asarray(accepting_fn(tuple(factor_idx)), dtype=bool)
    if accept_mask.shape != (n_total,):
        raise AutomatonError("accepting_fn must return one decision per state")

    start = 0
    for comp in components:
        start = start * comp.n_states + comp.start

    return DFA(
        table=table.astype(STATE_DTYPE),
        start=start,
        accepting=frozenset(np.flatnonzero(accept_mask).tolist()),
        name=name,
    )
