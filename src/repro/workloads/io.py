"""Workload persistence: suite manifests and trace files.

The paper ships fixed rule sets and fixed 10 MB trace files; this module
gives the synthetic suites the same reproducible-artifact ergonomics:
``export_member`` writes a member's DFA (``.npz``), trace parameters and
metadata (JSON) plus optional pre-generated trace files to a directory;
``import_member`` reconstructs an identical :class:`SuiteMember` from it.
Useful for pinning the exact evaluation inputs alongside result archives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.automata.serialization import load_dfa, save_dfa
from repro.workloads.suites import SuiteMember
from repro.workloads.traces import TracePhase, TraceSpec
from repro.errors import ReproError

MANIFEST_VERSION = 1


def _trace_to_dict(trace: TraceSpec) -> dict:
    return {
        "weights": np.asarray(trace.weights, dtype=np.float64).tolist(),
        "sync_symbols": list(trace.sync_symbols),
        "sync_density": trace.sync_density,
        "keywords": [kw.hex() for kw in trace.keywords],
        "keyword_density": trace.keyword_density,
        "phases": [
            {"fraction": p.fraction, "sync_density": p.sync_density}
            for p in trace.phases
        ],
        "name": trace.name,
    }


def _trace_from_dict(data: dict) -> TraceSpec:
    return TraceSpec(
        weights=np.asarray(data["weights"], dtype=np.float64),
        sync_symbols=tuple(int(s) for s in data["sync_symbols"]),
        sync_density=float(data["sync_density"]),
        keywords=tuple(bytes.fromhex(k) for k in data["keywords"]),
        keyword_density=float(data["keyword_density"]),
        phases=tuple(
            TracePhase(fraction=float(p["fraction"]), sync_density=float(p["sync_density"]))
            for p in data["phases"]
        ),
        name=str(data["name"]),
    )


def export_member(
    member: SuiteMember,
    directory: Union[str, Path],
    *,
    trace_lengths: Optional[List[int]] = None,
    trace_seed: int = 0,
) -> Path:
    """Write ``member`` (DFA + trace spec + metadata) to ``directory``.

    ``trace_lengths`` optionally pre-generates concrete trace files
    (``trace_<i>.npy``), pinning the evaluation inputs byte-for-byte.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_dfa(member.dfa, directory / "dfa.npz")
    manifest = {
        "version": MANIFEST_VERSION,
        "suite": member.suite,
        "index": member.index,
        "regime": member.regime,
        "n_states": member.dfa.n_states,
        "trace": _trace_to_dict(member.trace),
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    if trace_lengths:
        for i, length in enumerate(trace_lengths):
            trace = member.generate_input(length, seed=trace_seed + i)
            np.save(directory / f"trace_{i}.npy", trace)
    return directory


def import_member(directory: Union[str, Path]) -> SuiteMember:
    """Reconstruct a :class:`SuiteMember` written by :func:`export_member`."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise ReproError(f"no manifest.json in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != MANIFEST_VERSION:
        raise ReproError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )
    dfa = load_dfa(directory / "dfa.npz")
    if dfa.n_states != manifest["n_states"]:
        raise ReproError("manifest/DFA state-count mismatch")
    return SuiteMember(
        suite=manifest["suite"],
        index=int(manifest["index"]),
        regime=manifest["regime"],
        dfa=dfa,
        trace=_trace_from_dict(manifest["trace"]),
    )


def load_trace(directory: Union[str, Path], index: int = 0) -> np.ndarray:
    """Load a pre-generated trace file written by :func:`export_member`."""
    path = Path(directory) / f"trace_{index}.npy"
    if not path.exists():
        raise ReproError(f"no trace file {path}")
    return np.load(path)
