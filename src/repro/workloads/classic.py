"""Classic hand-built FSMs: the paper's running example and friends.

These small automata are used throughout the examples and tests; ``div7`` is
the Fig. 1 FSM (is a binary number divisible by seven?).
"""

from __future__ import annotations

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import AutomatonError


def divisibility(modulus: int, base: int = 2, name: str = "") -> DFA:
    """DFA accepting base-``base`` numerals divisible by ``modulus``.

    State ``q`` = value-so-far mod ``modulus``; reading digit ``d`` moves to
    ``(q*base + d) mod modulus``.  Symbols are the ASCII digits ``'0'…'base-1'``
    over a 256-symbol alphabet (non-digit bytes self-loop, so arbitrary byte
    streams can be fed for stress tests).
    """
    if modulus < 1:
        raise AutomatonError(f"modulus must be >= 1, got {modulus}")
    if not (2 <= base <= 10):
        raise AutomatonError(f"base must be in [2, 10], got {base}")
    n_symbols = 256
    table = np.tile(np.arange(modulus, dtype=STATE_DTYPE)[:, None], (1, n_symbols))
    for d in range(base):
        sym = ord("0") + d
        for q in range(modulus):
            table[q, sym] = (q * base + d) % modulus
    return DFA(
        table=table,
        start=0,
        accepting=frozenset({0}),
        name=name or f"div{modulus}_base{base}",
    )


def div7() -> DFA:
    """The Fig. 1 example: binary divisibility by 7 (7 states, '0'/'1')."""
    return divisibility(7, base=2, name="div7")


def parity(n_symbols: int = 256, tracked_symbol: int = ord("1")) -> DFA:
    """Two-state parity of occurrences of one symbol (the minimal
    non-converging FSM — a permutation automaton)."""
    table = np.zeros((2, n_symbols), dtype=STATE_DTYPE)
    table[0, :] = 0
    table[1, :] = 1
    table[0, tracked_symbol] = 1
    table[1, tracked_symbol] = 0
    return DFA(table=table, start=0, accepting=frozenset({0}), name="parity")


def keyword_scanner(keyword: bytes, n_symbols: int = 256) -> DFA:
    """Sticky scanner for one literal keyword (KMP-style failure links).

    The classic "easy" FSM: on random payload it hugs the root state, so its
    start states are trivially predictable.
    """
    if not keyword:
        raise AutomatonError("keyword must be non-empty")
    m = len(keyword)
    # States 0..m-1 = prefix lengths; state m = matched (absorbing).
    table = np.zeros((m + 1, n_symbols), dtype=STATE_DTYPE)
    # Failure-function construction.
    fail = [0] * m
    for i in range(1, m):
        f = fail[i - 1]
        while f and keyword[i] != keyword[f]:
            f = fail[f - 1]
        fail[i] = f + 1 if keyword[i] == keyword[f] else 0
    for q in range(m):
        for a in range(n_symbols):
            if a == keyword[q]:
                table[q, a] = q + 1
            elif q == 0:
                table[q, a] = 0
            else:
                # Follow failure links.
                f = fail[q - 1]
                while f and a != keyword[f]:
                    f = fail[f - 1]
                table[q, a] = f + 1 if a == keyword[f] else 0
    table[m, :] = m  # absorbing accept
    return DFA(
        table=table,
        start=0,
        accepting=frozenset({m}),
        name=f"scan[{keyword.decode('latin1')}]",
    )


def affine_permutation(
    n_states: int, n_symbols: int = 16, multiplier: int = 5
) -> DFA:
    """Affine permutation automaton: ``state' = (a·state + sym) mod n``.

    With ``a`` coprime to ``n`` every symbol is a *permutation* of the
    state set, so the image never collapses and the end state is an
    input-keyed hash of the whole prefix: the lookback-2 predictor's
    accuracy degrades to ``k / n`` — essentially zero for large ``n``.
    The canonical workload where every speculative scheme approaches its
    sequential worst case and only SFA's misprediction-free mapping
    composition stays parallel.
    """
    if n_states < 1:
        raise AutomatonError("need at least one state")
    if np.gcd(multiplier, n_states) != 1:
        raise AutomatonError(
            f"multiplier {multiplier} must be coprime to n_states {n_states}"
        )
    states = np.arange(n_states, dtype=np.int64)[:, None]
    syms = np.arange(n_symbols, dtype=np.int64)[None, :]
    table = ((multiplier * states + syms) % n_states).astype(STATE_DTYPE)
    return DFA(
        table=table,
        start=0,
        accepting=frozenset({0}),
        name=f"affine{n_states}",
    )


def cyclic_rotator(n_states: int, n_symbols: int = 256) -> DFA:
    """Pure rotation automaton: every symbol advances the state by 1 mod n.

    The canonical worst case for every speculation technique — zero
    convergence, uniform boundary distribution.
    """
    if n_states < 1:
        raise AutomatonError("need at least one state")
    col = (np.arange(n_states, dtype=np.int64) + 1) % n_states
    table = np.tile(col[:, None], (1, n_symbols)).astype(STATE_DTYPE)
    return DFA(table=table, start=0, accepting=frozenset({0}), name=f"rot{n_states}")
