"""Classic hand-built FSMs: the paper's running example and friends.

These small automata are used throughout the examples and tests; ``div7`` is
the Fig. 1 FSM (is a binary number divisible by seven?).
"""

from __future__ import annotations

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import AutomatonError


def divisibility(modulus: int, base: int = 2, name: str = "") -> DFA:
    """DFA accepting base-``base`` numerals divisible by ``modulus``.

    State ``q`` = value-so-far mod ``modulus``; reading digit ``d`` moves to
    ``(q*base + d) mod modulus``.  Symbols are the ASCII digits ``'0'…'base-1'``
    over a 256-symbol alphabet (non-digit bytes self-loop, so arbitrary byte
    streams can be fed for stress tests).
    """
    if modulus < 1:
        raise AutomatonError(f"modulus must be >= 1, got {modulus}")
    if not (2 <= base <= 10):
        raise AutomatonError(f"base must be in [2, 10], got {base}")
    n_symbols = 256
    table = np.tile(np.arange(modulus, dtype=STATE_DTYPE)[:, None], (1, n_symbols))
    for d in range(base):
        sym = ord("0") + d
        for q in range(modulus):
            table[q, sym] = (q * base + d) % modulus
    return DFA(
        table=table,
        start=0,
        accepting=frozenset({0}),
        name=name or f"div{modulus}_base{base}",
    )


def div7() -> DFA:
    """The Fig. 1 example: binary divisibility by 7 (7 states, '0'/'1')."""
    return divisibility(7, base=2, name="div7")


def parity(n_symbols: int = 256, tracked_symbol: int = ord("1")) -> DFA:
    """Two-state parity of occurrences of one symbol (the minimal
    non-converging FSM — a permutation automaton)."""
    table = np.zeros((2, n_symbols), dtype=STATE_DTYPE)
    table[0, :] = 0
    table[1, :] = 1
    table[0, tracked_symbol] = 1
    table[1, tracked_symbol] = 0
    return DFA(table=table, start=0, accepting=frozenset({0}), name="parity")


def keyword_scanner(keyword: bytes, n_symbols: int = 256) -> DFA:
    """Sticky scanner for one literal keyword (KMP-style failure links).

    The classic "easy" FSM: on random payload it hugs the root state, so its
    start states are trivially predictable.
    """
    if not keyword:
        raise AutomatonError("keyword must be non-empty")
    m = len(keyword)
    # States 0..m-1 = prefix lengths; state m = matched (absorbing).
    table = np.zeros((m + 1, n_symbols), dtype=STATE_DTYPE)
    # Failure-function construction.
    fail = [0] * m
    for i in range(1, m):
        f = fail[i - 1]
        while f and keyword[i] != keyword[f]:
            f = fail[f - 1]
        fail[i] = f + 1 if keyword[i] == keyword[f] else 0
    for q in range(m):
        for a in range(n_symbols):
            if a == keyword[q]:
                table[q, a] = q + 1
            elif q == 0:
                table[q, a] = 0
            else:
                # Follow failure links.
                f = fail[q - 1]
                while f and a != keyword[f]:
                    f = fail[f - 1]
                table[q, a] = f + 1 if a == keyword[f] else 0
    table[m, :] = m  # absorbing accept
    return DFA(
        table=table,
        start=0,
        accepting=frozenset({m}),
        name=f"scan[{keyword.decode('latin1')}]",
    )


def affine_permutation(
    n_states: int, n_symbols: int = 16, multiplier: int = 5
) -> DFA:
    """Affine permutation automaton: ``state' = (a·state + sym) mod n``.

    With ``a`` coprime to ``n`` every symbol is a *permutation* of the
    state set, so the image never collapses and the end state is an
    input-keyed hash of the whole prefix: the lookback-2 predictor's
    accuracy degrades to ``k / n`` — essentially zero for large ``n``.
    The canonical workload where every speculative scheme approaches its
    sequential worst case and only SFA's misprediction-free mapping
    composition stays parallel.
    """
    if n_states < 1:
        raise AutomatonError("need at least one state")
    if np.gcd(multiplier, n_states) != 1:
        raise AutomatonError(
            f"multiplier {multiplier} must be coprime to n_states {n_states}"
        )
    states = np.arange(n_states, dtype=np.int64)[:, None]
    syms = np.arange(n_symbols, dtype=np.int64)[None, :]
    table = ((multiplier * states + syms) % n_states).astype(STATE_DTYPE)
    return DFA(
        table=table,
        start=0,
        accepting=frozenset({0}),
        name=f"affine{n_states}",
    )


def cyclic_rotator(n_states: int, n_symbols: int = 256) -> DFA:
    """Pure rotation automaton: every symbol advances the state by 1 mod n.

    The canonical worst case for every speculation technique — zero
    convergence, uniform boundary distribution.
    """
    if n_states < 1:
        raise AutomatonError("need at least one state")
    col = (np.arange(n_states, dtype=np.int64) + 1) % n_states
    table = np.tile(col[:, None], (1, n_symbols)).astype(STATE_DTYPE)
    return DFA(table=table, start=0, accepting=frozenset({0}), name=f"rot{n_states}")


def drifting_phase(
    n_states: int = 128,
    n_symbols: int = 256,
    hot_symbols: int = 16,
    multiplier: int = 5,
) -> DFA:
    """Two-regime FSM for online-adaptation workloads.

    The alphabet splits into a *calm* region (every symbol below
    ``n_symbols - hot_symbols``) and a *hot* region (the top
    ``hot_symbols`` symbol values):

    * calm symbols collapse the state into a 4-state orbit
      (``state' = (state mod 4 + 1) mod 4``) — any window containing one
      calm symbol has an image of at most 4 states, so spec-4 speculation
      covers the truth and the Fig. 6 selector picks **PM** on
      calm-dominated training input;
    * hot symbols apply an affine permutation
      (``state' = (multiplier·state + sym) mod n_states``) — the image
      never shrinks, so on hot-dominated traffic lookback-2 accuracy
      degrades to ``k / n_states`` and speculation becomes hopeless.

    Which regime an input exercises is purely a property of its symbol
    *distribution* (see :func:`drifting_phase_input`): shift the hot
    density mid-stream and the compiled PM choice silently decays — the
    workload the serving tier's drift monitor exists to catch.
    """
    if n_states < 8:
        raise AutomatonError(f"need at least 8 states, got {n_states}")
    if not (0 < hot_symbols < n_symbols):
        raise AutomatonError(
            f"hot_symbols must be in (0, {n_symbols}), got {hot_symbols}"
        )
    if np.gcd(multiplier, n_states) != 1:
        raise AutomatonError(
            f"multiplier {multiplier} must be coprime to n_states {n_states}"
        )
    states = np.arange(n_states, dtype=np.int64)
    calm = (states % 4 + 1) % 4
    table = np.tile(calm[:, None], (1, n_symbols))
    hot_lo = n_symbols - hot_symbols
    syms = np.arange(hot_lo, n_symbols, dtype=np.int64)[None, :]
    table[:, hot_lo:] = (multiplier * states[:, None] + syms) % n_states
    return DFA(
        table=table.astype(STATE_DTYPE),
        start=0,
        accepting=frozenset({0}),
        name=f"drifting_phase{n_states}",
    )


def drifting_phase_input(
    length: int,
    *,
    drift_at: float = 0.5,
    calm_hot_density: float = 0.05,
    drifted_hot_density: float = 0.97,
    seed: int = 0,
    n_symbols: int = 256,
    hot_symbols: int = 16,
) -> bytes:
    """An input whose symbol distribution shifts at ``drift_at``.

    Positions before ``drift_at * length`` draw a hot symbol with
    probability ``calm_hot_density`` (calm phase: PM is the right call);
    positions after draw hot with ``drifted_hot_density`` (drifted phase:
    speculation collapses).  Calm draws are lowercase ASCII so the stream
    looks like ordinary text between hot bursts.  ``drift_at=1.0`` yields
    a pure calm-phase stream (e.g. for training), ``drift_at=0.0`` a pure
    drifted one.
    """
    rng = np.random.default_rng(seed)
    hot_lo = n_symbols - hot_symbols
    split = int(round(max(0.0, min(1.0, drift_at)) * length))
    density = np.where(
        np.arange(length) < split, calm_hot_density, drifted_hot_density
    )
    hot = rng.random(length) < density
    calm_draws = rng.integers(ord("a"), ord("z") + 1, size=length)
    hot_draws = rng.integers(hot_lo, n_symbols, size=length)
    return bytes(np.where(hot, hot_draws, calm_draws).astype(np.uint8))
