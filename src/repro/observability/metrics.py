"""Counter/gauge/histogram registry for low-level instrumentation.

The executor and memory model are too hot (and too far from any
``KernelStats`` ledger consumer) to grow ad-hoc reporting fields; instead
they record into a :class:`MetricsRegistry` when one is attached.  The
registry is create-on-first-use — ``registry.counter("executor.batches")``
returns the same :class:`Counter` every call — and exports to a flat dict
whose key names are part of the observability contract (see
``docs/observability.md``).

All instruments are plain python objects with no background machinery.
Instrument *creation* is lock-protected so concurrent serving threads can
share one registry safely, but the instruments themselves are lock-free
(the simulator hot path is single-threaded): code recording into a shared
instrument from several threads must hold its own lock — the serving tier
records every ``serving.*`` metric under its pool/cache locks for exactly
this reason (see ``docs/observability.md``).  When no registry is attached
(the default) the instrumented code skips recording entirely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Union

Number = Union[int, float]


@dataclass
class Counter:
    """Monotonically increasing count (events, operations, accesses)."""

    name: str
    value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (fractions, sizes, current levels)."""

    name: str
    value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Full reservoirs are overkill for the simulator; the aggregate moments
    cover the dashboards' needs while staying O(1) per observation.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instrument store with create-on-first-use accessors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Guards create-on-first-use only; recording into an instrument is
        # the caller's concurrency problem (see module docstring).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name))
        return inst

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> Dict[str, float]:
        """Flat name → value export.

        Counters and gauges map directly; histograms expand to
        ``<name>.count`` / ``<name>.mean`` / ``<name>.min`` / ``<name>.max``.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[f"{name}.count"] = float(hist.count)
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.min"] = hist.min if hist.count else 0.0
            out[f"{name}.max"] = hist.max if hist.count else 0.0
        return dict(sorted(out.items()))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
