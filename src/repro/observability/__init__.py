"""Phase-level tracing and metrics (the observability layer).

Two complementary instruments:

* :class:`Tracer` / :class:`Span` — a nestable, cycle- and wall-clock-
  stamped span tree per run.  Schemes emit one span per phase and per
  verify/recovery round; the framework wraps runs and stream segments in
  root spans; the selector records its decision path.  Export with
  :meth:`Tracer.to_jsonl`, inspect with
  :func:`~repro.observability.render.render_timeline` or
  ``python -m repro.cli trace``.
* :class:`MetricsRegistry` — counters/gauges/histograms the executor and
  memory model record low-level traffic into (batches, transitions,
  divergence, shared/global accesses).

Both default to *off*: every instrumented object holds :data:`NULL_TRACER`
(a no-op) and a ``None`` registry unless the caller opts in, so the
simulated cycle accounting — and therefore every ``SchemeResult`` — is
bit-identical with tracing enabled or disabled.
"""

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.render import render_metrics, render_timeline
from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    SPAN_SCHEMA_KEYS,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "SPAN_SCHEMA_KEYS",
    "Span",
    "Tracer",
    "render_metrics",
    "render_timeline",
]
