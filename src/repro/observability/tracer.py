"""Structured span tracing for scheme executions.

A :class:`Span` is one named, nestable region of work, stamped with both
wall-clock time (``time.perf_counter``) and — when a *cycle source* such as a
:class:`~repro.gpu.stats.KernelStats` ledger is supplied — simulated-cycle
boundaries.  Because spans read the ledger the schemes charge into, a span's
``cycles`` is exactly the simulated cost incurred while it was open; sibling
phase spans tile a scheme run, so their cycle sums reproduce
``SchemeResult.cycles`` (asserted by the test suite).

Tracing is **off by default and zero-cost when off**: every traced code path
holds a tracer that defaults to :data:`NULL_TRACER`, whose ``span()`` returns
a shared no-op context manager.  No span objects are built, no clocks are
read, and — crucially — tracing never touches the cycle ledger, so results
are identical with and without it.

Usage::

    tracer = Tracer()
    pal = GSpecPal(dfa, tracer=tracer)
    pal.run(data)
    print(tracer.to_jsonl())          # one JSON object per span
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

#: Key order of the exported span schema (kept stable for dashboards —
#: snapshot-tested; extend only by appending).
SPAN_SCHEMA_KEYS = (
    "span_id",
    "parent_id",
    "name",
    "depth",
    "wall_start_s",
    "wall_end_s",
    "wall_ms",
    "cycle_start",
    "cycle_end",
    "cycles",
    "attrs",
)


def _json_default(obj: Any) -> Any:
    """Make numpy scalars/arrays (common in attrs) JSON-serializable."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


class Span:
    """One traced region: name, wall/cycle stamps, attributes, children."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attrs",
        "children",
        "wall_start",
        "wall_end",
        "cycle_start",
        "cycle_end",
        "_tracer",
        "_cycle_source",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent: Optional["Span"],
        cycle_source: Any = None,
        cycle_start: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self._tracer = tracer
        self._cycle_source = cycle_source
        self.name = name
        self.span_id = span_id
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.wall_start = tracer._clock()
        self.wall_end: Optional[float] = None
        if cycle_start is not None:
            self.cycle_start: Optional[float] = float(cycle_start)
        elif cycle_source is not None:
            self.cycle_start = float(cycle_source.cycles)
        else:
            self.cycle_start = None
        self.cycle_end: Optional[float] = None

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self)
        return False

    def __bool__(self) -> bool:  # real spans are truthy, NULL_SPAN is not
        return True

    # -- recording ------------------------------------------------------
    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute (overwrites an existing key)."""
        self.attrs[key] = value

    # -- derived --------------------------------------------------------
    @property
    def cycles(self) -> float:
        """Simulated cycles charged while the span was open (0 when the
        span had no cycle source)."""
        if self.cycle_start is None or self.cycle_end is None:
            return 0.0
        return self.cycle_end - self.cycle_start

    @property
    def wall_ms(self) -> float:
        """Wall-clock duration in milliseconds (0 until closed)."""
        if self.wall_end is None:
            return 0.0
        return (self.wall_end - self.wall_start) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        """Flat export record following :data:`SPAN_SCHEMA_KEYS`."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "wall_start_s": self.wall_start,
            "wall_end_s": self.wall_end,
            "wall_ms": self.wall_ms,
            "cycle_start": self.cycle_start,
            "cycle_end": self.cycle_end,
            "cycles": self.cycles,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, cycles={self.cycles:.0f}, children={len(self.children)})"


class _NullSpan:
    """Shared do-nothing span; falsy so callers can gate attr computation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


#: The shared no-op span every :class:`NullTracer` call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` hands back :data:`NULL_SPAN` untouched.

    This is the default on every traced object, making tracing opt-in and
    (near-)zero-cost when off — no allocation, no clock reads.
    """

    enabled = False

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        return NULL_SPAN

    @property
    def roots(self) -> tuple:
        return ()

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def to_jsonl(self) -> str:
        return ""


#: Module-level singleton used as the default tracer everywhere.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of :class:`Span` trees for one or more runs.

    Parameters
    ----------
    clock:
        Wall-clock source (``time.perf_counter`` by default; injectable for
        deterministic tests).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._ids = itertools.count()
        self._stack: List[Span] = []
        self.roots: List[Span] = []

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        *,
        cycle_source: Any = None,
        cycle_start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a child span of the innermost open span (context manager).

        Parameters
        ----------
        cycle_source:
            Object exposing ``.cycles`` (typically a ``KernelStats``
            ledger); read on open and close to cycle-stamp the span.
        cycle_start:
            Explicit opening cycle stamp overriding ``cycle_source``'s
            current reading (used for spans that must cover charges made
            before they could be opened, e.g. kernel launch).
        attrs:
            Initial span attributes.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self,
            name,
            span_id=next(self._ids),
            parent=parent,
            cycle_source=cycle_source,
            cycle_start=cycle_start,
            attrs=attrs,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.wall_end = self._clock()
        if span._cycle_source is not None:
            span.cycle_end = float(span._cycle_source.cycles)
        elif span.cycle_start is not None:
            span.cycle_end = span.cycle_start
        # Close any children left open (defensive; normal flow is LIFO).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # ------------------------------------------------------------------
    # queries and export
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first in creation order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> Optional[Span]:
        """First span with ``name`` (depth-first), or None."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List[Span]:
        """Every span with ``name``, depth-first order."""
        return [s for s in self.iter_spans() if s.name == name]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Flat list of span records (depth-first)."""
        return [s.to_dict() for s in self.iter_spans()]

    def to_jsonl(self) -> str:
        """JSON-lines export: one span object per line, depth-first."""
        return "\n".join(
            json.dumps(record, default=_json_default) for record in self.to_dicts()
        )

    def clear(self) -> None:
        """Drop all recorded spans (reuse the tracer across runs)."""
        self.roots = []
        self._stack = []
