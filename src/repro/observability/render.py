"""Human-readable rendering of recorded traces (the ``repro trace`` view).

``render_timeline`` flattens a tracer's span forest into an aligned table:
one row per span, indented by depth, with cycle boundaries, per-span cycles,
share of the run, and the interesting attributes (scheme, frontier, matched,
active threads).  Long runs of same-named sibling spans — hundreds of
``verify_recover.round`` spans on big inputs — are elided to head/tail rows
plus an aggregate line, so the table stays terminal-sized while still
reporting the total cost of the elided region.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.observability.tracer import Span, Tracer

# NOTE: repro.analysis imports are deferred into the render functions —
# observability sits below every other layer (schemes/gpu import it), and a
# module-level import of repro.analysis would close a cycle through
# analysis.experiments → framework → schemes.

#: Attributes surfaced in the timeline's ``detail`` column, in this order.
_DETAIL_ATTRS = ("scheme", "decision", "frontier", "matched", "active_threads")


def _detail(span: Span) -> str:
    parts = []
    for key in _DETAIL_ATTRS:
        if key in span.attrs:
            parts.append(f"{key}={span.attrs[key]}")
    return " ".join(parts)


def _fmt_cycle(value: Optional[float]) -> str:
    return f"{value:.0f}" if value is not None else "-"


def _span_rows(
    span: Span,
    rows: List[Sequence],
    total_cycles: float,
    max_run: int,
) -> None:
    indent = "  " * span.depth
    share = 100.0 * span.cycles / total_cycles if total_cycles else 0.0
    rows.append(
        [
            indent + span.name,
            _fmt_cycle(span.cycle_start),
            _fmt_cycle(span.cycle_end),
            f"{span.cycles:.0f}",
            f"{share:.1f}%",
            _detail(span),
        ]
    )
    # Group consecutive same-named children so repetitive phases collapse.
    i = 0
    children = span.children
    while i < len(children):
        j = i
        while j < len(children) and children[j].name == children[i].name:
            j += 1
        run = children[i:j]
        if len(run) <= max_run:
            for child in run:
                _span_rows(child, rows, total_cycles, max_run)
        else:
            head, tail = run[: max_run // 2], run[-1:]
            for child in head:
                _span_rows(child, rows, total_cycles, max_run)
            elided = run[len(head) : -1]
            elided_cycles = sum(c.cycles for c in elided)
            elided_share = (
                100.0 * elided_cycles / total_cycles if total_cycles else 0.0
            )
            rows.append(
                [
                    "  " * run[0].depth
                    + f"... {len(elided)} more {run[0].name!r} spans ...",
                    _fmt_cycle(elided[0].cycle_start),
                    _fmt_cycle(elided[-1].cycle_end),
                    f"{elided_cycles:.0f}",
                    f"{elided_share:.1f}%",
                    "",
                ]
            )
            for child in tail:
                _span_rows(child, rows, total_cycles, max_run)
        i = j


def render_timeline(tracer: Tracer, *, max_run: int = 8, title: Optional[str] = None) -> str:
    """Render the tracer's span forest as a per-phase timeline table.

    Parameters
    ----------
    max_run:
        Longest run of consecutive same-named sibling spans rendered in
        full; longer runs are elided to head + aggregate + last.
    """
    from repro.analysis.tables import render_table

    if not tracer.roots:
        return "(no spans recorded)"
    rows: List[Sequence] = []
    for root in tracer.roots:
        # The run's total is the deepest ancestor that carries cycles —
        # usually the scheme span right under the framework root.
        total = root.cycles
        if not total:
            total = sum(c.cycles for c in root.children)
        _span_rows(root, rows, total, max_run)
    return render_table(
        ["span", "cycle_start", "cycle_end", "cycles", "share", "detail"],
        rows,
        title=title,
    )


def render_metrics(registry, *, title: str = "metrics") -> str:
    """Render a :class:`MetricsRegistry` as a two-column table."""
    from repro.analysis.tables import render_table

    flat = registry.as_dict()
    if not flat:
        return "(no metrics recorded)"
    rows = [[name, value] for name, value in flat.items()]
    return render_table(["metric", "value"], rows, title=title, precision=3)
