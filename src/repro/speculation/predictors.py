"""Pluggable start-state predictors.

The paper fixes *all-state lookback-2* (§IV-A) but explicitly frames the
accuracy/overhead trade-off as open ("the tradeoff between speculation
accuracy and training overhead is still under exploration").  This module
generalizes the predictor behind an interface so the trade-off can be
measured:

* :class:`LookbackPredictor` — all-state lookback-``w`` for any window;
  ``w=2`` is the paper's configuration and the library default.
* :class:`AdaptiveLookbackPredictor` — per-boundary window deepening: keep
  extending the replay window until the candidate set collapses below a
  target size (or a cap is hit).  Sharper queues on converging regions,
  bounded extra cost elsewhere.
* :class:`OraclePredictor` — perfect prediction (knows the true starts);
  the upper bound for ablations.
* :class:`UniformPredictor` — no information at all: every state is a
  candidate with equal weight; the lower bound.

All produce the same :class:`~repro.speculation.predictor.Prediction`
object, so every scheme runs unmodified under any of them.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.gpu.device import DeviceSpec
from repro.gpu.stats import KernelStats
from repro.speculation.chunks import Partition
from repro.speculation.predictor import (
    Prediction,
    SpeculationQueue,
    predict_start_states,
    true_start_states,
)
from repro.errors import SchemeError


class StartStatePredictor(abc.ABC):
    """Interface: produce ranked start-state queues for every chunk."""

    name: str = "abstract"

    @abc.abstractmethod
    def predict(
        self,
        dfa: DFA,
        partition: Partition,
        start_state: int,
        *,
        stats: Optional[KernelStats] = None,
        device: Optional[DeviceSpec] = None,
        tie_break=None,
    ) -> Prediction:
        """Rank candidate start states per chunk (chunk 0 is always exact)."""


class LookbackPredictor(StartStatePredictor):
    """All-state lookback-``window`` (the paper's technique at ``window=2``)."""

    def __init__(self, window: int = 2):
        if window < 1:
            raise SchemeError(f"lookback window must be >= 1, got {window}")
        self.window = window
        self.name = f"lookback-{window}"

    def predict(self, dfa, partition, start_state, *, stats=None, device=None, tie_break=None):
        return predict_start_states(
            dfa,
            partition,
            start_state=start_state,
            lookback=self.window,
            stats=stats,
            device=device,
            tie_break=tie_break,
        )


class AdaptiveLookbackPredictor(StartStatePredictor):
    """Deepen the replay window per boundary until the queue is small.

    Parameters
    ----------
    target_candidates:
        Stop deepening once at most this many candidate states survive.
    max_window:
        Hard cap on the replay window (cost ceiling).
    """

    def __init__(self, target_candidates: int = 4, max_window: int = 16):
        if target_candidates < 1 or max_window < 1:
            raise SchemeError("target_candidates and max_window must be >= 1")
        self.target_candidates = target_candidates
        self.max_window = max_window
        self.name = f"adaptive-lookback(<= {max_window})"

    def predict(self, dfa, partition, start_state, *, stats=None, device=None, tie_break=None):
        queues: List[SpeculationQueue] = [
            SpeculationQueue(
                states=np.asarray([start_state]),
                weights=np.asarray([dfa.n_states]),
            )
        ]
        total_replay_steps = 0
        for i in range(1, partition.n_chunks):
            window = 1
            while True:
                syms = partition.last_symbols_of(i - 1, window)
                ends = dfa.run_all_states(syms)
                total_replay_steps += len(syms)
                states, counts = np.unique(ends, return_counts=True)
                if states.size <= self.target_candidates or window >= self.max_window:
                    break
                window = min(self.max_window, window * 2)
            keys = tie_break(states) if tie_break is not None else states
            order = np.lexsort((keys, -counts))
            queues.append(
                SpeculationQueue(states=states[order], weights=counts[order])
            )
        if stats is not None:
            dev = device if device is not None else stats.device
            lanes = dfa.n_states
            total_lanes = dev.n_sms * dev.cores_per_sm
            rounds = -(-lanes // total_lanes)
            stats.charge(
                "predict",
                float(
                    rounds
                    * total_replay_steps
                    * (dev.shared_cycles + dev.transition_compute_cycles)
                ),
            )
        return Prediction(queues=queues)


class OraclePredictor(StartStatePredictor):
    """Perfect prediction: the ablation upper bound.

    Computes the true start states with a (free) sequential pass; the cost
    model charges nothing — this is deliberately unbuildable hardware.
    """

    name = "oracle"

    def predict(self, dfa, partition, start_state, *, stats=None, device=None, tie_break=None):
        truth = true_start_states(dfa, partition, start_state=start_state)
        queues = [
            SpeculationQueue(
                states=np.asarray([int(t)]), weights=np.asarray([dfa.n_states])
            )
            for t in truth
        ]
        return Prediction(queues=queues)


class UniformPredictor(StartStatePredictor):
    """No information: all states tie — enumeration's worst case."""

    name = "uniform"

    def predict(self, dfa, partition, start_state, *, stats=None, device=None, tie_break=None):
        all_states = np.arange(dfa.n_states)
        keys = tie_break(all_states) if tie_break is not None else all_states
        order = np.argsort(keys)
        queues: List[SpeculationQueue] = [
            SpeculationQueue(
                states=np.asarray([start_state]),
                weights=np.asarray([dfa.n_states]),
            )
        ]
        for _ in range(1, partition.n_chunks):
            queues.append(
                SpeculationQueue(
                    states=all_states[order].copy(),
                    weights=np.ones(dfa.n_states, dtype=np.int64),
                )
            )
        return Prediction(queues=queues)


PREDICTOR_REGISTRY = {
    "lookback-1": lambda: LookbackPredictor(1),
    "lookback-2": lambda: LookbackPredictor(2),
    "lookback-4": lambda: LookbackPredictor(4),
    "lookback-8": lambda: LookbackPredictor(8),
    "adaptive": AdaptiveLookbackPredictor,
    "oracle": OraclePredictor,
    "uniform": UniformPredictor,
}
