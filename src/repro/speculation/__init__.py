"""Speculation machinery: chunking, start-state prediction, record storage.

These are the shared moving parts of every speculative scheme: the input is
partitioned (:mod:`chunks`), the all-state lookback-2 predictor ranks start
candidates per chunk (:mod:`predictor`), and verification/recovery results
are stored in the bounded register/shared-memory hierarchy of Fig. 5
(:mod:`records`).
"""

from repro.speculation.chunks import Partition, partition_input
from repro.speculation.observations import LiveObservations
from repro.speculation.predictor import (
    LOOKBACK,
    Prediction,
    SpeculationQueue,
    predict_start_states,
    true_start_states,
)
from repro.speculation.predictors import (
    PREDICTOR_REGISTRY,
    AdaptiveLookbackPredictor,
    LookbackPredictor,
    OraclePredictor,
    StartStatePredictor,
    UniformPredictor,
)
from repro.speculation.records import (
    DEFAULT_OTHERS_CAPACITY,
    DEFAULT_OWN_CAPACITY,
    VRRecord,
    VRStore,
)

__all__ = [
    "AdaptiveLookbackPredictor",
    "DEFAULT_OTHERS_CAPACITY",
    "DEFAULT_OWN_CAPACITY",
    "LOOKBACK",
    "LiveObservations",
    "LookbackPredictor",
    "OraclePredictor",
    "PREDICTOR_REGISTRY",
    "StartStatePredictor",
    "UniformPredictor",
    "Partition",
    "Prediction",
    "SpeculationQueue",
    "VRRecord",
    "VRStore",
    "partition_input",
    "predict_start_states",
    "true_start_states",
]
