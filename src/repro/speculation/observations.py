"""Live speculation-quality observations: the runtime drift signal.

The offline profile (:mod:`repro.selector.features`) bakes speculation
accuracy into an immutable plan, but accuracy is a property of the *input
distribution*, not the FSM alone — when production traffic drifts, the
plan's anchors go stale while the plan never notices.  Every scheme run
already observes the ground truth at each chunk boundary (the verify phase
counts predictor hits and misses); :class:`LiveObservations` lifts those
counts into a structured record that rides on
:class:`~repro.schemes.base.SchemeResult` and feeds the serving tier's
:class:`~repro.serving.drift.DriftMonitor`.

The record is deliberately cheap: four counters from the run's
:class:`~repro.gpu.stats.KernelStats` ledger plus a symbol histogram
sketch (one ``np.bincount`` over the segment).  Misprediction-free runs
(``sfa``, ``seq``) carry zero boundary samples — they contribute traffic
shape but never accuracy evidence, so a pool that has already swapped to
SFA goes dormant instead of flapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class LiveObservations:
    """Speculation-quality evidence from one (or many merged) scheme runs.

    Attributes
    ----------
    scheme:
        Name of the scheme that produced the evidence (``"merged"`` after
        aggregating across heterogeneous runs).
    spec_k:
        Queue depth the speculative execution actually ran at — the depth
        ``spec_hits / (spec_hits + spec_misses)`` measures accuracy *for*.
        PM contributes its configured ``k``; the frontier schemes
        (sre/rr/nf) and spec-seq verify the front-of-queue candidate, so
        they observe spec-1.
    spec_hits / spec_misses:
        Chunk boundaries where the predictor's top-``spec_k`` candidates
        did / did not cover the verified true start state.
    recovery_rounds / recoveries_executed:
        Verify & recover effort behind the misses.
    segments / symbols:
        Traffic volume the evidence was gathered over.
    symbol_sketch:
        ``(n_symbols,)`` int64 histogram of the observed input — the
        distribution fingerprint a revised selection is provenanced with.
    """

    scheme: str = ""
    spec_k: int = 1
    segments: int = 0
    symbols: int = 0
    spec_hits: int = 0
    spec_misses: int = 0
    recovery_rounds: int = 0
    recoveries_executed: int = 0
    symbol_sketch: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def boundary_samples(self) -> int:
        """Chunk boundaries with accuracy evidence (0 for sfa/seq runs)."""
        return self.spec_hits + self.spec_misses

    @property
    def spec_accuracy(self) -> float:
        """Live top-``spec_k`` accuracy; NaN when no boundary was observed."""
        total = self.boundary_samples
        if total == 0:
            return float("nan")
        return self.spec_hits / total

    def absorb(self, other: "LiveObservations") -> None:
        """Merge ``other`` into this record in place (monitor aggregation).

        The merged ``spec_k`` keeps the depth of the accuracy evidence: a
        record with boundary samples wins over a sample-free one, so fused
        symbol-only stashes never dilute the anchor comparison.
        """
        if other.boundary_samples and not self.boundary_samples:
            self.spec_k = other.spec_k
        if self.scheme != other.scheme:
            self.scheme = self.scheme or other.scheme
            if other.scheme and other.scheme != self.scheme:
                self.scheme = "merged"
        self.segments += other.segments
        self.symbols += other.symbols
        self.spec_hits += other.spec_hits
        self.spec_misses += other.spec_misses
        self.recovery_rounds += other.recovery_rounds
        self.recoveries_executed += other.recoveries_executed
        if other.symbol_sketch is not None:
            if self.symbol_sketch is None:
                self.symbol_sketch = other.symbol_sketch.copy()
            elif self.symbol_sketch.shape == other.symbol_sketch.shape:
                self.symbol_sketch += other.symbol_sketch

    def copy(self) -> "LiveObservations":
        sketch = None if self.symbol_sketch is None else self.symbol_sketch.copy()
        return LiveObservations(
            scheme=self.scheme,
            spec_k=self.spec_k,
            segments=self.segments,
            symbols=self.symbols,
            spec_hits=self.spec_hits,
            spec_misses=self.spec_misses,
            recovery_rounds=self.recovery_rounds,
            recoveries_executed=self.recoveries_executed,
            symbol_sketch=sketch,
        )

    def summary(self) -> dict:
        """JSON-safe scalar view (plan provenance, stress reports)."""
        acc = self.spec_accuracy
        return {
            "scheme": self.scheme,
            "spec_k": int(self.spec_k),
            "segments": int(self.segments),
            "symbols": int(self.symbols),
            "boundary_samples": int(self.boundary_samples),
            "spec_accuracy": float(acc) if acc == acc else -1.0,
            "recovery_rounds": int(self.recovery_rounds),
            "recoveries_executed": int(self.recoveries_executed),
        }

    @classmethod
    def from_run(
        cls,
        stats,
        symbols,
        *,
        scheme: str,
        spec_k: int,
        n_symbols: int,
        boundary_evidence: bool = True,
    ):
        """Build the record for one scheme run from its ledger + input.

        ``stats`` is the run's :class:`~repro.gpu.stats.KernelStats`
        (matches/mismatches count verified chunk boundaries); ``symbols``
        the segment as a symbol array.  ``boundary_evidence=False`` keeps
        only the traffic shape: schemes whose ledger ``matches`` are
        exact-by-construction compositions rather than verified
        speculation boundaries (SFA) must not masquerade as accuracy-1.0
        evidence.
        """
        symbols = np.asarray(symbols)
        sketch = np.bincount(
            symbols.astype(np.int64, copy=False), minlength=int(n_symbols)
        ).astype(np.int64)
        return cls(
            scheme=scheme,
            spec_k=int(spec_k),
            segments=1,
            symbols=int(symbols.size),
            spec_hits=int(stats.matches) if boundary_evidence else 0,
            spec_misses=int(stats.mismatches) if boundary_evidence else 0,
            recovery_rounds=int(stats.recovery_rounds),
            recoveries_executed=int(stats.recoveries_executed),
            symbol_sketch=sketch,
        )
