"""Input-stream partitioning (``Π = partition(in, N)`` in Algorithm 2).

The stream is split into ``N`` equal chunks (the last one may be shorter).
For the lockstep executor the chunks are materialized as a dense
``(N, chunk_len)`` matrix with a per-chunk length vector, so a scheme can run
any thread→chunk assignment with one gather.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.automata.dfa import _as_symbol_array
from repro.errors import SchemeError


@dataclass(frozen=True)
class Partition:
    """An input stream split into ``n_chunks`` contiguous chunks.

    Attributes
    ----------
    chunks:
        ``(n_chunks, chunk_len)`` symbol matrix, zero-padded on the ragged
        tail chunk.
    lengths:
        ``(n_chunks,)`` effective chunk lengths.
    offsets:
        ``(n_chunks,)`` start offset of each chunk in the original stream.
    symbols:
        The full original stream (1-D).
    """

    chunks: np.ndarray
    lengths: np.ndarray
    offsets: np.ndarray
    symbols: np.ndarray

    @property
    def n_chunks(self) -> int:
        return int(self.chunks.shape[0])

    @property
    def chunk_len(self) -> int:
        return int(self.chunks.shape[1])

    @property
    def total_length(self) -> int:
        return int(self.symbols.size)

    def chunk(self, i: int) -> np.ndarray:
        """The ``i``-th chunk trimmed to its effective length."""
        return self.chunks[i, : self.lengths[i]]

    def last_symbols_of(self, i: int, k: int) -> np.ndarray:
        """The final ``k`` symbols of chunk ``i`` (fewer if the chunk is
        shorter) — the lookback window the predictor of chunk ``i+1`` uses."""
        length = int(self.lengths[i])
        k = min(k, length)
        return self.chunks[i, length - k : length]


def partition_input(data, n_chunks: int) -> Partition:
    """Split ``data`` into ``n_chunks`` equal contiguous chunks.

    Raises
    ------
    SchemeError
        If the stream is shorter than the number of chunks (every thread
        needs at least one symbol for chunk-level parallelism to make sense).
    """
    symbols = _as_symbol_array(data)
    n = int(symbols.size)
    if n_chunks <= 0:
        raise SchemeError(f"n_chunks must be positive, got {n_chunks}")
    if n < n_chunks:
        raise SchemeError(
            f"input of {n} symbols cannot be split into {n_chunks} chunks"
        )
    chunk_len = -(-n // n_chunks)
    padded = np.zeros(n_chunks * chunk_len, dtype=symbols.dtype)
    padded[:n] = symbols
    chunks = padded.reshape(n_chunks, chunk_len)
    offsets = np.arange(n_chunks, dtype=np.int64) * chunk_len
    lengths = np.clip(n - offsets, 0, chunk_len)
    if (lengths <= 0).any():
        # Equal split can starve trailing chunks when n is just above
        # n_chunks; fall back to a balanced split with sizes n//N or n//N+1.
        base = n // n_chunks
        extra = n % n_chunks
        sizes = np.full(n_chunks, base, dtype=np.int64)
        sizes[:extra] += 1
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        chunk_len = int(sizes.max())
        chunks = np.zeros((n_chunks, chunk_len), dtype=symbols.dtype)
        for i in range(n_chunks):
            chunks[i, : sizes[i]] = symbols[offsets[i] : offsets[i] + sizes[i]]
        lengths = sizes
    return Partition(chunks=chunks, lengths=lengths, offsets=offsets, symbols=symbols)
