"""Verification-record storage (``VR_i`` of Table I, hierarchy of Fig. 5).

Each chunk ``i`` accumulates records ``{start, end}`` of speculative
executions/recoveries performed on it.  On the GPU the paper splits storage:

* ``VR_i^end`` — records produced by the chunk's own thread, held in that
  thread's **registers** (fast, private);
* ``VR_i^others`` — records produced by *other* threads under aggressive
  speculative recovery, staged through **shared memory** and loaded back
  into a bounded set of registers.

The number of registers reserved for ``VR_i^others`` is the Fig. 7 tunable:
too few and recovery results are dropped (the work is wasted and may have to
be redone); too many and every verification round pays extra load/store and
check cycles.  :class:`VRStore` models both capacities and reports the
operation counts the cost model charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.stats import KernelStats
from repro.errors import SchemeError

#: Default register budget for each record class (paper finds 16 optimal).
DEFAULT_OWN_CAPACITY = 16
DEFAULT_OTHERS_CAPACITY = 16


@dataclass
class VRRecord:
    """One speculative execution/recovery record: ran chunk from ``start``,
    reached ``end``; ``own`` marks records produced by the chunk's thread."""

    start: int
    end: int
    own: bool


@dataclass
class VRStore:
    """Bounded per-chunk record storage with the Fig. 5 hierarchy.

    Parameters
    ----------
    n_chunks:
        Number of chunks (and threads).
    own_capacity:
        Register budget for ``VR_i^end`` (records by the owner thread).
    others_capacity:
        Register budget for ``VR_i^others`` (records forwarded from other
        threads through shared memory).  Records beyond capacity are
        **dropped** — the recovery work is lost, modeling register pressure.
    """

    n_chunks: int
    own_capacity: int = DEFAULT_OWN_CAPACITY
    others_capacity: int = DEFAULT_OTHERS_CAPACITY
    _records: List[List[VRRecord]] = field(default_factory=list)
    _index: List[dict] = field(default_factory=list)
    dropped_records: int = 0
    stores_to_shared: int = 0
    loads_from_shared: int = 0

    def __post_init__(self) -> None:
        if self.n_chunks <= 0:
            raise SchemeError("VRStore needs at least one chunk")
        if self.own_capacity < 1:
            raise SchemeError("own_capacity must be at least 1")
        if self.others_capacity < 0:
            raise SchemeError("others_capacity must be non-negative")
        self._records = [[] for _ in range(self.n_chunks)]
        self._index = [{} for _ in range(self.n_chunks)]

    # ------------------------------------------------------------------
    def add(self, chunk: int, start: int, end: int, *, own: bool) -> bool:
        """Record a (start, end) execution on ``chunk``.

        Returns True if the record was stored, False if capacity forced a
        drop.  Duplicate starts update nothing (the first result stands —
        executions are deterministic so they agree anyway).
        """
        records = self._records[chunk]
        if int(start) in self._index[chunk]:
            return True
        if own:
            used = sum(1 for r in records if r.own)
            if used >= self.own_capacity:
                self.dropped_records += 1
                return False
        else:
            used = sum(1 for r in records if not r.own)
            if used >= self.others_capacity:
                self.dropped_records += 1
                return False
            # Foreign records transit shared memory: one store by the
            # producer, one load by the owner at next verification.
            self.stores_to_shared += 1
            self.loads_from_shared += 1
        records.append(VRRecord(start=int(start), end=int(end), own=own))
        self._index[chunk][int(start)] = int(end)
        return True

    def lookup(self, chunk: int, start: int) -> Optional[int]:
        """End state recorded for running ``chunk`` from ``start`` (or None).

        The dict index models the register-file scan as O(1) for the
        *simulator's* wall clock; the simulated cost is still charged per
        record via :meth:`charge_check`.
        """
        return self._index[chunk].get(int(start))

    def count(self, chunk: int) -> int:
        """Number of stored records for ``chunk``."""
        return len(self._records[chunk])

    def others_full(self, chunk: int) -> bool:
        """True when ``VR_chunk^others`` has no free register slot.

        Capacity-aware recovery scheduling checks this before dequeuing a
        candidate: executing a recovery whose record cannot be stored is
        pure waste (the Fig. 7 trade-off's left arm comes from *capacity*
        limiting coverage, not from blindly dropping finished work).
        """
        used = sum(1 for r in self._records[chunk] if not r.own)
        return used >= self.others_capacity

    def records(self, chunk: int) -> Tuple[VRRecord, ...]:
        """Immutable view of ``chunk``'s records."""
        return tuple(self._records[chunk])

    def starts_tried(self, chunk: int) -> np.ndarray:
        """All start states already executed on ``chunk``."""
        return np.asarray([r.start for r in self._records[chunk]], dtype=np.int64)

    # ------------------------------------------------------------------
    def charge_check(self, stats: KernelStats, chunk: int, phase: str) -> None:
        """Charge one verification scan of ``chunk``'s records.

        The owner thread compares the forwarded end state against every
        stored record — ``count(chunk)`` compares — plus the shared-memory
        loads needed to refresh ``VR^others`` staged by other threads.
        """
        n = self.count(chunk)
        stats.charge_verify(phase, checks_per_thread=n, total_checks=n)

    def charge_shared_traffic(self, stats: KernelStats, phase: str, device: Optional[DeviceSpec] = None) -> None:
        """Charge accumulated shared-memory staging traffic and reset it."""
        dev = device if device is not None else stats.device
        ops = self.stores_to_shared + self.loads_from_shared
        if ops:
            stats.charge(phase, float(ops * dev.shared_cycles))
            stats.shared_accesses += ops
        self.stores_to_shared = 0
        self.loads_from_shared = 0
