"""The *all-state lookback-2* start-state predictor (paper §IV-A).

For every chunk boundary the predictor runs the DFA from **all** states over
the last two symbols of the predecessor chunk.  The state-convergence
property guarantees the true start state of the chunk is inside the produced
end-state set; ranking the set by how often each end state is produced gives
the speculation queue ``QS_i`` — most likely state first.

The queues drive every scheme: spec-1 takes ``QS_i.front()``, PM's spec-k
takes the top-k, and the RR/NF heuristics dequeue further candidates when
scheduling speculative recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.gpu.device import DeviceSpec
from repro.gpu.stats import KernelStats
from repro.speculation.chunks import Partition
from repro.errors import SchemeError

#: The paper's lookback window (symbols of the predecessor chunk replayed).
LOOKBACK = 2


@dataclass
class SpeculationQueue:
    """Ranked candidate start states for one chunk (``QS_i`` in Table I).

    ``states`` are ordered most-likely-first; ``weights`` are the appearance
    counts from the all-state replay.  ``dequeue`` pops the front — the
    concurrent-queue semantics the heuristics rely on (our simulator is
    single-threaded, so a plain cursor suffices for thread-safety).
    """

    states: np.ndarray
    weights: np.ndarray
    _cursor: int = 0

    def __post_init__(self) -> None:
        self.states = np.asarray(self.states, dtype=np.int64)
        self.weights = np.asarray(self.weights, dtype=np.int64)
        if self.states.shape != self.weights.shape:
            raise SchemeError("queue states/weights must align")

    @property
    def size(self) -> int:
        """Remaining (not yet dequeued) candidates."""
        return max(0, int(self.states.size - self._cursor))

    def front(self) -> int:
        """Most likely remaining candidate (raises when exhausted)."""
        if self.size == 0:
            raise SchemeError("speculation queue exhausted")
        return int(self.states[self._cursor])

    def dequeue(self) -> int:
        """Pop and return the front candidate."""
        state = self.front()
        self._cursor += 1
        return state

    def top_k(self, k: int) -> np.ndarray:
        """The first ``k`` candidates (fewer if the queue is shorter) —
        regardless of the cursor; used by spec-k which reads, not consumes."""
        return self.states[: min(k, self.states.size)].copy()

    def rank_of(self, state: int) -> Optional[int]:
        """Position of ``state`` in the ranked queue (None if absent)."""
        hits = np.flatnonzero(self.states == state)
        return int(hits[0]) if hits.size else None

    def reset(self) -> None:
        """Rewind the dequeue cursor (used between scheme runs)."""
        self._cursor = 0


@dataclass
class Prediction:
    """Output of the predictor: one queue per chunk.

    ``queues[0]`` is the degenerate queue containing only the real start
    state (chunk 0 never speculates).
    """

    queues: List[SpeculationQueue]

    @property
    def n_chunks(self) -> int:
        return len(self.queues)

    def front_states(self) -> np.ndarray:
        """spec-1 start state for every chunk."""
        return np.asarray([q.front() for q in self.queues], dtype=np.int64)

    def reset(self) -> None:
        for q in self.queues:
            q.reset()

    def accuracy_against(self, true_starts: np.ndarray, k: int = 1) -> float:
        """Fraction of speculated chunks whose true start is in the top-k.

        Chunk 0 is excluded (it is never speculated), matching the paper's
        ``accuracy(spec-k)`` definition in Table II.
        """
        true_starts = np.asarray(true_starts)
        if len(self.queues) != true_starts.size:
            raise SchemeError("true_starts must have one entry per chunk")
        if len(self.queues) <= 1:
            return 1.0
        hits = 0
        for i in range(1, len(self.queues)):
            if true_starts[i] in self.queues[i].top_k(k):
                hits += 1
        return hits / (len(self.queues) - 1)


def predict_start_states(
    dfa: DFA,
    partition: Partition,
    start_state: Optional[int] = None,
    *,
    lookback: int = LOOKBACK,
    stats: Optional[KernelStats] = None,
    device: Optional[DeviceSpec] = None,
    tie_break=None,
) -> Prediction:
    """Run all-state lookback prediction over every chunk boundary.

    Parameters
    ----------
    dfa:
        The automaton (in the same state space the schemes will execute in).
    partition:
        Chunked input.
    start_state:
        Real start state for chunk 0 (defaults to ``dfa.start``).
    lookback:
        Window length (2 in the paper).
    stats / device:
        When given, the (constant) prediction cost ``C`` is charged: the
        replay runs ``lookback`` lockstep steps for ``n_states`` lanes per
        boundary, spread over the whole device.
    tie_break:
        Optional vectorized mapping applied to candidate state ids before
        breaking frequency ties.  Schemes pass the exec→original translation
        here so queue order is invariant under the frequency transformation
        (otherwise the memory-layout ablation would silently change the
        speculation order too).
    """
    if start_state is None:
        start_state = dfa.start
    queues: List[SpeculationQueue] = [
        SpeculationQueue(
            states=np.asarray([start_state]),
            weights=np.asarray([dfa.n_states]),
        )
    ]
    for i in range(1, partition.n_chunks):
        window = partition.last_symbols_of(i - 1, lookback)
        ends = dfa.run_all_states(window)
        states, counts = np.unique(ends, return_counts=True)
        # Most frequent first; ties broken by (translated) state id for
        # determinism and layout invariance.
        keys = tie_break(states) if tie_break is not None else states
        order = np.lexsort((keys, -counts))
        queues.append(SpeculationQueue(states=states[order], weights=counts[order]))

    if stats is not None:
        dev = device if device is not None else stats.device
        lanes = dfa.n_states * max(0, partition.n_chunks - 1)
        total_lanes = dev.n_sms * dev.cores_per_sm
        rounds = -(-lanes // total_lanes) if lanes else 0
        # Each replay step is a (mostly-hot) table lookup; charge shared
        # latency — the prediction cost is the constant C of Eq. 1.
        cost = rounds * lookback * (dev.shared_cycles + dev.transition_compute_cycles)
        stats.charge("predict", float(cost))
    return Prediction(queues=queues)


def true_start_states(dfa: DFA, partition: Partition, start_state: Optional[int] = None) -> np.ndarray:
    """Ground-truth start state of every chunk (sequential reference run)."""
    if start_state is None:
        start_state = dfa.start
    starts = np.empty(partition.n_chunks, dtype=np.int64)
    state = int(start_state)
    for i in range(partition.n_chunks):
        starts[i] = state
        state = dfa.run(partition.chunk(i), start=state)
    return starts
