"""The immutable compile-once artifact: :class:`CompiledPlan`.

GSpecPal's pipeline is explicitly two-phase: *offline* profiling
(speculation accuracy, input sensitivity, convergence — Table II; the
frequency transformation — Fig. 4; the selector walk — Fig. 6) versus
*online* latency-sensitive execution.  A :class:`CompiledPlan` freezes
everything the offline phase decides into one serializable artifact so the
online phase — :meth:`repro.framework.GSpecPal.from_plan` and the
:mod:`repro.serving` layer — can execute with **zero profiling work**:

* the profiled :class:`~repro.selector.features.FSMFeatures` vector;
* the frequency-transformation permutation and hot-prefix size (or the
  raw hotness ordering for the hash-layout ablation);
* the trained lookback-2 predictor statistics measured on the training
  slice;
* the selector's decision plus the tree path that produced it, and the
  Eq. 1–4 cost estimates;
* a content :meth:`~repro.automata.dfa.DFA.fingerprint` and a
  configuration hash, so a plan can never silently be served against the
  wrong automaton or the wrong tunables.

Plans are value objects: compiling the same DFA on the same training input
under the same config yields an identical plan, and
``save_plan``/``load_plan`` round-trip them bit-exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.properties import StateFrequencyProfile
from repro.automata.transform import TransformedDFA, transformation_from_permutation
from repro.errors import PlanError
from repro.selector.features import FSMFeatures

#: Bump when the artifact layout changes incompatibly.
#: v2: adds the canonical (language-level) fingerprint and per-stage
#: compile timings.
#: v3: online adaptation — ``revision`` counter and ``live_provenance``
#: (the live-feature evidence behind a revised selection).  v2 artifacts
#: still load: the new fields default (see ``SUPPORTED_PLAN_VERSIONS``).
PLAN_FORMAT_VERSION = 3

#: Artifact versions ``load_plan`` accepts.  Older-but-supported versions
#: are upgraded on load by defaulting the fields they predate.
SUPPORTED_PLAN_VERSIONS = (2, 3)

#: GSpecPalConfig fields frozen into a plan.  Runtime-only knobs —
#: ``backend`` (execution engine) and ``selfcheck`` (audits) — are
#: deliberately excluded: they change how a plan is *served*, never what
#: was *compiled*.
_CONFIG_FIELDS = (
    "n_threads",
    "spec_k",
    "own_registers",
    "others_registers",
    "use_transformation",
    "training_fraction",
    "min_training_symbols",
)


def config_snapshot(config) -> Dict[str, Any]:
    """JSON-able snapshot of the compile-relevant configuration fields."""
    snap: Dict[str, Any] = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    snap["device"] = asdict(config.device)
    snap["thresholds"] = asdict(config.thresholds)
    return snap


def config_fingerprint(config) -> str:
    """Deterministic hash of :func:`config_snapshot` (the plan's config key)."""
    payload = json.dumps(config_snapshot(config), sort_keys=True)
    return hashlib.sha256(f"cfg/v1:{payload}".encode()).hexdigest()


def _config_from_snapshot(snapshot: Dict[str, Any], **overrides):
    """Rebuild a ``GSpecPalConfig`` from a stored snapshot."""
    from repro.framework.config import GSpecPalConfig
    from repro.gpu.device import DeviceSpec
    from repro.selector.decision_tree import SelectorThresholds

    kwargs = {name: snapshot[name] for name in _CONFIG_FIELDS}
    kwargs["device"] = DeviceSpec(**snapshot["device"])
    kwargs["thresholds"] = SelectorThresholds(**snapshot["thresholds"])
    kwargs.update(overrides)
    return GSpecPalConfig(**kwargs)


@dataclass(frozen=True)
class CompiledPlan:
    """Everything the offline phase decided, frozen for serving.

    Attributes
    ----------
    dfa:
        The automaton the plan was compiled for (embedded so the artifact
        is self-contained — ship the plan, serve anywhere).
    fingerprint:
        ``dfa.fingerprint()`` at compile time; re-verified on load and on
        every cache lookup.
    canonical_fingerprint:
        ``dfa.canonical_fingerprint()`` at compile time — the fingerprint
        of the minimal, BFS-renumbered canonical form, identical for all
        language-equivalent DFAs.  The serving cache keys plan dedupe and
        single-flight on this; re-verified on load like the content
        fingerprint.
    config_hash:
        :func:`config_fingerprint` of the compile-time configuration.
    config:
        The :func:`config_snapshot` the hash covers (kept readable so
        operators can inspect what a plan was compiled under).
    features:
        The profiled Table-II feature vector.
    scheme / decision_path:
        The Fig. 6 selector's pick and the tree nodes it visited.
    cost_estimates:
        ``CostModel.estimate_all`` output at compile time (cycles per
        selectable scheme on the training-sized input).
    frequency_counts / frequency_order / training_symbols:
        The state-frequency profile (hotness ordering) and the number of
        training symbols it was collected over.
    permutation:
        The frequency-transformation mapping ``to_new`` (``None`` when the
        plan was compiled with ``use_transformation=False``).
    hot_state_count:
        Hot-prefix size: leading states resident in shared memory under
        the RANK layout, or the hash-layout hot-set size otherwise.
    predictor_stats:
        Trained lookback-2 statistics: window, per-k accuracies and the
        candidate-queue geometry measured on the training boundaries.
    stage_timings_ms:
        Wall-clock milliseconds per compile-pipeline stage
        (``normalize``/``canonicalize``/``profile``/``select``/
        ``transform``/``train``, plus ``revise`` on revised plans), as
        measured when this plan was built.  Observability metadata only —
        excluded from plan equality so compiling the same inputs still
        yields value-equal plans.
    revision:
        How many times this plan has been revised from live observations
        (0 = the offline compile).  ``revise_plan`` increments it; the
        serving cache never lets a lower revision overwrite a higher one.
    live_provenance:
        Scalar summary of the live evidence the latest revision was made
        from (live accuracy, boundary samples, traffic volume, the scheme
        that gathered it, and the prior scheme/revision) — empty on
        offline compiles and on loaded v2 artifacts.
    """

    dfa: DFA
    fingerprint: str
    canonical_fingerprint: str
    config_hash: str
    config: Dict[str, Any]
    features: FSMFeatures
    scheme: str
    decision_path: Tuple[str, ...]
    cost_estimates: Dict[str, float]
    frequency_counts: np.ndarray
    frequency_order: np.ndarray
    training_symbols: int
    permutation: Optional[np.ndarray]
    hot_state_count: int
    predictor_stats: Dict[str, float] = field(default_factory=dict)
    stage_timings_ms: Dict[str, float] = field(default_factory=dict, compare=False)
    revision: int = 0
    live_provenance: Dict[str, Any] = field(default_factory=dict)
    version: int = PLAN_FORMAT_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "frequency_counts",
            np.ascontiguousarray(self.frequency_counts, dtype=np.int64),
        )
        object.__setattr__(
            self,
            "frequency_order",
            np.ascontiguousarray(self.frequency_order, dtype=np.int64),
        )
        if self.permutation is not None:
            object.__setattr__(
                self,
                "permutation",
                np.ascontiguousarray(self.permutation, dtype=np.int64),
            )
        object.__setattr__(self, "decision_path", tuple(self.decision_path))

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self, dfa: Optional[DFA] = None) -> None:
        """Check the plan still matches its automaton (and optionally
        another DFA a caller wants to serve with it).

        Raises :class:`~repro.errors.PlanError` on any mismatch — the
        invalidation rule of the plan lifecycle: a plan is valid exactly
        as long as the DFA's behaviourally relevant content is unchanged.
        """
        actual = self.dfa.fingerprint()
        if actual != self.fingerprint:
            raise PlanError(
                f"plan fingerprint mismatch: artifact says {self.fingerprint[:12]}…, "
                f"embedded DFA hashes to {actual[:12]}… (corrupt or tampered plan)"
            )
        actual_canonical = self.dfa.canonical_fingerprint()
        if actual_canonical != self.canonical_fingerprint:
            raise PlanError(
                "plan canonical fingerprint mismatch: artifact says "
                f"{self.canonical_fingerprint[:12]}…, embedded DFA canonicalizes "
                f"to {actual_canonical[:12]}… (corrupt or tampered plan)"
            )
        if dfa is not None and dfa.fingerprint() != self.fingerprint:
            raise PlanError(
                f"plan was compiled for fingerprint {self.fingerprint[:12]}… "
                f"but DFA {dfa.name!r} hashes to {dfa.fingerprint()[:12]}…; "
                "recompile the plan for this automaton"
            )

    def verify_config(self, config) -> None:
        """Ensure ``config`` matches the plan's compile-time configuration."""
        actual = config_fingerprint(config)
        if actual != self.config_hash:
            raise PlanError(
                "configuration does not match the plan's compile-time config "
                f"(plan {self.config_hash[:12]}…, given {actual[:12]}…); "
                "recompile, or serve with the plan's own config"
            )

    # ------------------------------------------------------------------
    # executable artifacts
    # ------------------------------------------------------------------
    def frequency_profile(self) -> StateFrequencyProfile:
        """The stored hotness profile (no training bytes needed)."""
        return StateFrequencyProfile(
            counts=self.frequency_counts,
            order=self.frequency_order,
            sample_length=int(self.training_symbols),
        )

    def transformation(self) -> Optional[TransformedDFA]:
        """Rebuild the frequency transformation from the stored permutation
        (one vectorized renumbering; ``None`` for hash-layout plans)."""
        if self.permutation is None:
            return None
        return transformation_from_permutation(
            self.dfa, self.permutation, self.hot_state_count
        )

    def build_config(self, *, backend: Optional[str] = None, selfcheck=None):
        """The compile-time ``GSpecPalConfig``, with runtime knobs applied."""
        return _config_from_snapshot(self.config, backend=backend, selfcheck=selfcheck)

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Operator-facing one-screen description (used by ``repro compile``)."""
        lines = [
            f"plan for  : {self.dfa.name} ({self.dfa.n_states} states, "
            f"{self.dfa.n_symbols} symbols)",
            f"fingerprint: {self.fingerprint}",
            f"canonical  : {self.canonical_fingerprint}",
            f"config     : {self.config_hash[:16]}… "
            f"(n_threads={self.config['n_threads']}, "
            f"spec_k={self.config['spec_k']}, "
            f"device={self.config['device']['name']})",
            f"scheme     : {self.scheme}  (path: {' -> '.join(self.decision_path)})"
            + (f"  [revision {self.revision}]" if self.revision else ""),
            f"hot states : {self.hot_state_count}"
            + (
                " (RANK layout)"
                if self.permutation is not None
                else " (HASH layout)"
            ),
            f"trained on : {self.training_symbols} symbols",
        ]
        lines.append("features   :")
        for key, value in self.features.as_dict().items():
            lines.append(f"  {key:22s} {value}")
        lines.append("cost model :")
        for name, cycles in sorted(self.cost_estimates.items(), key=lambda kv: kv[1]):
            lines.append(f"  {name:6s} {cycles:14.0f} cycles")
        return "\n".join(lines)
