"""The offline compile phase: ``compile_plan``.

The compile path is an explicit staged pipeline; every expensive per-FSM
step runs exactly once, inside a named stage, and the results are frozen
into a :class:`~repro.plan.artifact.CompiledPlan`:

``normalize``
    Validate inputs, apply config defaults, coerce the training stream.
``canonicalize``
    Compute the language-level identity: minimize + BFS-renumber the DFA
    and hash the canonical form (:meth:`DFA.canonical_fingerprint`).  The
    plan keeps executing the *submitted* DFA — canonicalization only
    establishes identity, it never rewrites state numbering under a tenant.
``profile``
    The Table-II feature vector on the training slice.
``select``
    The Fig. 6 decision-tree walk.
``transform``
    State-frequency profiling and the Fig. 4 frequency transformation.
``train``
    Cost-model evaluation (Eq. 1–4) and lookback-2 predictor training,
    as ``cost_model`` / ``predictor`` sub-steps.

Every stage is traced (one ``compile`` span with one child per stage),
timed (wall-clock milliseconds recorded in the plan's
``stage_timings_ms`` and, when a :class:`MetricsRegistry` is supplied, in
``compile.stage.<name>_ms`` histograms), and the canonical fingerprint is
stored alongside the content fingerprint so the serving tier can dedupe
language-equivalent submissions.  Compile spans carry no cycle source
(this is host-side work, not simulated kernel time), so the scheme-run
cycle tiling is untouched.

``revise_plan`` is the *online* counterpart: it re-runs the cheap back
half of the pipeline (select → train) from live
:class:`~repro.speculation.observations.LiveObservations` folded into the
plan's feature vector — no DFA re-profiling, no frequency re-counting —
inside one traced ``compile.revise`` stage.  The serving tier's drift
monitor calls it when production accuracy diverges from the profiled
anchors (see ``docs/architecture.md``, *Online adaptation*).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

import numpy as np

from repro.automata.dfa import DFA, _as_symbol_array
from repro.automata.minimize import canonical_form
from repro.automata.properties import profile_state_frequencies
from repro.automata.transform import frequency_transform
from repro.errors import PlanError
from repro.observability import NULL_TRACER
from repro.plan.artifact import (
    PLAN_FORMAT_VERSION,
    CompiledPlan,
    config_fingerprint,
    config_snapshot,
)
from repro.selector.cost_model import CostModel, CostModelInputs
from repro.selector.decision_tree import DecisionTreeSelector
from repro.selector.features import profile_features
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import LOOKBACK, predict_start_states

#: Stage names, in execution order (the contract `repro compile --stats`
#: and the docs expose).
COMPILE_STAGES = (
    "normalize",
    "canonicalize",
    "profile",
    "select",
    "transform",
    "train",
)

#: The one stage online revision adds on top of :data:`COMPILE_STAGES`.
REVISE_STAGE = "revise"


def _predictor_stats(dfa: DFA, symbols: np.ndarray, n_chunks: int, features) -> dict:
    """Trained lookback-2 statistics: accuracies plus queue geometry.

    The queue sizes measure how many candidate states the all-state replay
    leaves alive per boundary — the quantity that decides how much work
    enumerative recovery (RR/NF) has to burn per mis-speculation.
    """
    partition = partition_input(symbols, n_chunks)
    prediction = predict_start_states(dfa, partition)
    sizes = np.asarray(
        [q.states.size for q in prediction.queues[1:]], dtype=np.int64
    )
    return {
        "predictor": f"lookback-{LOOKBACK}",
        "lookback": int(LOOKBACK),
        "boundaries": int(sizes.size),
        "spec1_accuracy": float(features.spec1_accuracy),
        "spec4_accuracy": float(features.spec4_accuracy),
        "spec16_accuracy": float(features.spec16_accuracy),
        "mean_queue_size": float(sizes.mean()) if sizes.size else 1.0,
        "max_queue_size": int(sizes.max()) if sizes.size else 1,
    }


def compile_plan(
    dfa: DFA,
    training_input,
    config=None,
    *,
    tracer=None,
    metrics=None,
) -> CompiledPlan:
    """Compile ``dfa`` against ``training_input`` into an immutable plan.

    Parameters
    ----------
    dfa:
        The automaton to compile for.
    training_input:
        Representative sample stream (the paper's ~0.5% profiling slice).
        Must be long enough for feature profiling.
    config:
        Compile-time tunables (defaults to ``GSpecPalConfig()``).  The
        plan records a config hash; serving verifies it.
    tracer:
        Optional span sink; the phase emits one ``compile`` span tree with
        one child span per pipeline stage.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; each stage
        observes its wall-clock duration into ``compile.stage.<name>_ms``.
    """
    from repro.framework.config import GSpecPalConfig

    tracer = tracer if tracer is not None else NULL_TRACER
    timings: Dict[str, float] = {}

    @contextmanager
    def stage(name: str, **attrs):
        t0 = time.perf_counter()
        with tracer.span(name, **attrs) as span:
            yield span
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        timings[name] = elapsed_ms
        if metrics is not None:
            metrics.histogram(f"compile.stage.{name}_ms").observe(elapsed_ms)

    with tracer.span("compile", fsm=dfa.name) as cspan:
        with stage("normalize"):
            if config is None:
                config = GSpecPalConfig()
            symbols = _as_symbol_array(training_input)
            if symbols.size == 0:
                raise PlanError("compile_plan needs a non-empty training input")
            n_chunks = min(64, config.n_threads)

        with stage("canonicalize") as cnspan:
            canonical = canonical_form(dfa)
            canonical_fp = canonical.fingerprint()
            if cnspan:
                cnspan.set_attr("canonical_states", canonical.n_states)
                cnspan.set_attr("canonical_fingerprint", canonical_fp[:16])

        with stage("profile"):
            features = profile_features(dfa, symbols, n_chunks=n_chunks)

        selector = DecisionTreeSelector(config.thresholds)
        with stage("select") as sspan:
            scheme, path = selector.decide(features)
            if sspan:
                sspan.set_attr("decision", scheme)
                sspan.set_attr("path", path)

        with stage("transform") as tspan:
            freq = profile_state_frequencies(dfa, symbols)
            if config.use_transformation:
                transformed = frequency_transform(
                    dfa,
                    freq,
                    shared_memory_entries=config.device.shared_table_entries,
                )
                permutation = transformed.to_new
                hot = transformed.hot_state_count
            else:
                permutation = None
                hot = min(
                    dfa.n_states,
                    config.device.shared_table_entries // max(1, dfa.n_symbols),
                )
            if tspan:
                tspan.set_attr("layout", "rank" if permutation is not None else "hash")
                tspan.set_attr("hot_states", int(hot))

        with stage("train"):
            with tracer.span("cost_model"):
                estimates = CostModel(config.device).estimate_all(
                    features,
                    CostModelInputs(
                        input_length=int(symbols.size),
                        n_threads=config.n_threads,
                        k=config.spec_k,
                        others_capacity=config.others_registers,
                    ),
                )
            with tracer.span("predictor"):
                predictor_stats = _predictor_stats(dfa, symbols, n_chunks, features)

        plan = CompiledPlan(
            dfa=dfa,
            fingerprint=dfa.fingerprint(),
            canonical_fingerprint=canonical_fp,
            config_hash=config_fingerprint(config),
            config=config_snapshot(config),
            features=features,
            scheme=scheme,
            decision_path=tuple(path),
            cost_estimates={k: float(v) for k, v in estimates.items()},
            frequency_counts=freq.counts,
            frequency_order=freq.order,
            training_symbols=int(symbols.size),
            permutation=permutation,
            hot_state_count=int(hot),
            predictor_stats=predictor_stats,
            stage_timings_ms=dict(timings),
        )
        if cspan:
            cspan.set_attr("training_symbols", int(symbols.size))
            cspan.set_attr("fingerprint", plan.fingerprint)
            cspan.set_attr("canonical_fingerprint", plan.canonical_fingerprint)
            cspan.set_attr("scheme", plan.scheme)
    return plan


def revise_plan(
    plan: CompiledPlan,
    observations,
    *,
    tracer=None,
    metrics=None,
) -> CompiledPlan:
    """Re-select and re-train ``plan`` from live observations, no re-profiling.

    The expensive compile stages — canonicalize, profile, transform,
    predictor training — are carried over verbatim (the FSM and its
    frequency structure have not changed; only the input distribution
    has), so a revision costs one decision-tree walk plus one cost-model
    evaluation.  The revised plan keeps both fingerprints and the config
    hash, bumps ``revision``, and records the evidence in
    ``live_provenance``.

    Parameters
    ----------
    plan:
        The artifact to revise (any revision; offline or already revised).
    observations:
        Aggregated :class:`~repro.speculation.observations.LiveObservations`.
        With zero boundary samples the plan is returned unchanged — there
        is no accuracy evidence to revise from.
    tracer / metrics:
        Same sinks as :func:`compile_plan`; the work lands in one traced
        ``compile.revise`` stage and a ``compile.stage.revise_ms``
        histogram.
    """
    import dataclasses

    if observations is None or observations.boundary_samples == 0:
        return plan
    tracer = tracer if tracer is not None else NULL_TRACER

    t0 = time.perf_counter()
    with tracer.span(
        f"compile.{REVISE_STAGE}",
        fsm=plan.dfa.name,
        fingerprint=plan.fingerprint[:16],
        revision=plan.revision + 1,
    ) as rspan:
        config = plan.build_config()
        features = plan.features.update_from_observations(observations)

        with tracer.span("select") as sspan:
            scheme, path = DecisionTreeSelector(config.thresholds).decide(features)
            if sspan:
                sspan.set_attr("decision", scheme)
                sspan.set_attr("path", path)

        with tracer.span("train"):
            estimates = CostModel(config.device).estimate_all(
                features,
                CostModelInputs(
                    input_length=int(plan.training_symbols),
                    n_threads=config.n_threads,
                    k=config.spec_k,
                    others_capacity=config.others_registers,
                ),
            )

        if rspan:
            rspan.set_attr("scheme", scheme)
            rspan.set_attr("prior_scheme", plan.scheme)
            rspan.set_attr("live_accuracy", float(observations.spec_accuracy))

    elapsed_ms = (time.perf_counter() - t0) * 1e3
    if metrics is not None:
        metrics.histogram(f"compile.stage.{REVISE_STAGE}_ms").observe(elapsed_ms)
    timings = dict(plan.stage_timings_ms)
    timings[REVISE_STAGE] = elapsed_ms

    provenance = dict(observations.summary())
    provenance["prior_scheme"] = plan.scheme
    provenance["prior_revision"] = int(plan.revision)
    return dataclasses.replace(
        plan,
        features=features,
        scheme=scheme,
        decision_path=tuple(path),
        cost_estimates={k: float(v) for k, v in estimates.items()},
        stage_timings_ms=timings,
        revision=plan.revision + 1,
        live_provenance=provenance,
        version=PLAN_FORMAT_VERSION,
    )
