"""The offline compile phase: ``compile_plan``.

Runs every expensive per-FSM step exactly once — feature profiling, the
selector walk, the frequency transformation, the Eq. 1–4 cost model and the
lookback-2 predictor training — and freezes the results into a
:class:`~repro.plan.artifact.CompiledPlan`.

With tracing enabled the whole phase sits under one ``compile`` span with
``profile`` / ``select`` / ``transform`` / ``cost_model`` / ``predictor``
children, so the offline cost is as observable as the online one.  Compile
spans carry no cycle source (this is host-side work, not simulated kernel
time), so the scheme-run cycle tiling is untouched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.automata.dfa import DFA, _as_symbol_array
from repro.automata.properties import profile_state_frequencies
from repro.automata.transform import frequency_transform
from repro.errors import PlanError
from repro.observability import NULL_TRACER
from repro.plan.artifact import CompiledPlan, config_fingerprint, config_snapshot
from repro.selector.cost_model import CostModel, CostModelInputs
from repro.selector.decision_tree import DecisionTreeSelector
from repro.selector.features import profile_features
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import LOOKBACK, predict_start_states


def _predictor_stats(dfa: DFA, symbols: np.ndarray, n_chunks: int, features) -> dict:
    """Trained lookback-2 statistics: accuracies plus queue geometry.

    The queue sizes measure how many candidate states the all-state replay
    leaves alive per boundary — the quantity that decides how much work
    enumerative recovery (RR/NF) has to burn per mis-speculation.
    """
    partition = partition_input(symbols, n_chunks)
    prediction = predict_start_states(dfa, partition)
    sizes = np.asarray(
        [q.states.size for q in prediction.queues[1:]], dtype=np.int64
    )
    return {
        "predictor": f"lookback-{LOOKBACK}",
        "lookback": int(LOOKBACK),
        "boundaries": int(sizes.size),
        "spec1_accuracy": float(features.spec1_accuracy),
        "spec4_accuracy": float(features.spec4_accuracy),
        "spec16_accuracy": float(features.spec16_accuracy),
        "mean_queue_size": float(sizes.mean()) if sizes.size else 1.0,
        "max_queue_size": int(sizes.max()) if sizes.size else 1,
    }


def compile_plan(
    dfa: DFA,
    training_input,
    config=None,
    *,
    tracer=None,
) -> CompiledPlan:
    """Compile ``dfa`` against ``training_input`` into an immutable plan.

    Parameters
    ----------
    dfa:
        The automaton to compile for.
    training_input:
        Representative sample stream (the paper's ~0.5% profiling slice).
        Must be long enough for feature profiling.
    config:
        Compile-time tunables (defaults to ``GSpecPalConfig()``).  The
        plan records a config hash; serving verifies it.
    tracer:
        Optional span sink; the phase emits one ``compile`` span tree.
    """
    from repro.framework.config import GSpecPalConfig

    if config is None:
        config = GSpecPalConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    symbols = _as_symbol_array(training_input)
    if symbols.size == 0:
        raise PlanError("compile_plan needs a non-empty training input")
    n_chunks = min(64, config.n_threads)

    with tracer.span(
        "compile", fsm=dfa.name, training_symbols=int(symbols.size)
    ) as cspan:
        with tracer.span("profile"):
            features = profile_features(dfa, symbols, n_chunks=n_chunks)

        selector = DecisionTreeSelector(config.thresholds)
        with tracer.span("select") as sspan:
            scheme, path = selector.decide(features)
            if sspan:
                sspan.set_attr("decision", scheme)
                sspan.set_attr("path", path)

        with tracer.span("transform") as tspan:
            freq = profile_state_frequencies(dfa, symbols)
            if config.use_transformation:
                transformed = frequency_transform(
                    dfa,
                    freq,
                    shared_memory_entries=config.device.shared_table_entries,
                )
                permutation = transformed.to_new
                hot = transformed.hot_state_count
            else:
                permutation = None
                hot = min(
                    dfa.n_states,
                    config.device.shared_table_entries // max(1, dfa.n_symbols),
                )
            if tspan:
                tspan.set_attr("layout", "rank" if permutation is not None else "hash")
                tspan.set_attr("hot_states", int(hot))

        with tracer.span("cost_model"):
            estimates = CostModel(config.device).estimate_all(
                features,
                CostModelInputs(
                    input_length=int(symbols.size),
                    n_threads=config.n_threads,
                    k=config.spec_k,
                    others_capacity=config.others_registers,
                ),
            )

        with tracer.span("predictor"):
            predictor_stats = _predictor_stats(dfa, symbols, n_chunks, features)

        plan = CompiledPlan(
            dfa=dfa,
            fingerprint=dfa.fingerprint(),
            config_hash=config_fingerprint(config),
            config=config_snapshot(config),
            features=features,
            scheme=scheme,
            decision_path=tuple(path),
            cost_estimates={k: float(v) for k, v in estimates.items()},
            frequency_counts=freq.counts,
            frequency_order=freq.order,
            training_symbols=int(symbols.size),
            permutation=permutation,
            hot_state_count=int(hot),
            predictor_stats=predictor_stats,
        )
        if cspan:
            cspan.set_attr("fingerprint", plan.fingerprint)
            cspan.set_attr("scheme", plan.scheme)
    return plan
