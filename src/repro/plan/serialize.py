"""Plan (de)serialization: JSON metadata + NPZ arrays, one file.

Follows the DFA serializer's container choice (NumPy ``.npz``) so plans
need no new dependencies: dense arrays (transition table, accepting set,
frequency profile, permutation) are stored as compressed arrays, and every
scalar decision — features, selection, cost estimates, predictor stats,
config snapshot and both hashes — rides in one embedded JSON document.

``load_plan`` re-verifies both the content fingerprint and the canonical
(language-level) fingerprint of the embedded DFA against the stored ones,
so a corrupted or hand-edited artifact is rejected before it can serve a
single byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.automata.dfa import DFA, STATE_DTYPE
from repro.errors import PlanError
from repro.plan.artifact import (
    PLAN_FORMAT_VERSION,
    SUPPORTED_PLAN_VERSIONS,
    CompiledPlan,
)
from repro.selector.features import FSMFeatures


def save_plan(plan: CompiledPlan, path: Union[str, Path]) -> Path:
    """Write ``plan`` to ``path`` (``.npz``); returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = json.dumps(
        {
            "version": PLAN_FORMAT_VERSION,
            "fingerprint": plan.fingerprint,
            "canonical_fingerprint": plan.canonical_fingerprint,
            "stage_timings_ms": plan.stage_timings_ms,
            "config_hash": plan.config_hash,
            "config": plan.config,
            "features": plan.features.as_dict(),
            "scheme": plan.scheme,
            "decision_path": list(plan.decision_path),
            "cost_estimates": plan.cost_estimates,
            "predictor_stats": plan.predictor_stats,
            "training_symbols": plan.training_symbols,
            "hot_state_count": plan.hot_state_count,
            "has_permutation": plan.permutation is not None,
            "revision": plan.revision,
            "live_provenance": plan.live_provenance,
            "dfa": {"name": plan.dfa.name, "start": plan.dfa.start},
        },
        sort_keys=True,
    )
    arrays = {
        "table": plan.dfa.table,
        "accepting": np.asarray(sorted(plan.dfa.accepting), dtype=np.int64),
        "frequency_counts": plan.frequency_counts,
        "frequency_order": plan.frequency_order,
        "meta": np.asarray(meta),
    }
    if plan.permutation is not None:
        arrays["permutation"] = plan.permutation
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz when the suffix is missing; report reality.
    return path if path.exists() else path.with_suffix(path.suffix + ".npz")


def load_plan(path: Union[str, Path]) -> CompiledPlan:
    """Load and verify a plan previously written by :func:`save_plan`.

    Raises
    ------
    PlanError
        When the file is missing, the format version is unsupported, or
        the embedded DFA no longer hashes to the stored fingerprint.
    """
    path = Path(path)
    if not path.exists():
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise PlanError(f"no plan file at {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"]))
        except (KeyError, json.JSONDecodeError) as exc:
            raise PlanError(f"malformed plan metadata in {path}: {exc}") from exc
        if meta.get("version") not in SUPPORTED_PLAN_VERSIONS:
            raise PlanError(
                f"unsupported plan version {meta.get('version')!r} in {path} "
                f"(this build reads versions {SUPPORTED_PLAN_VERSIONS})"
            )
        dfa = DFA(
            table=data["table"].astype(STATE_DTYPE),
            start=int(meta["dfa"]["start"]),
            accepting=frozenset(int(s) for s in data["accepting"]),
            name=str(meta["dfa"]["name"]),
        )
        plan = CompiledPlan(
            dfa=dfa,
            fingerprint=str(meta["fingerprint"]),
            canonical_fingerprint=str(meta["canonical_fingerprint"]),
            config_hash=str(meta["config_hash"]),
            config=meta["config"],
            features=FSMFeatures(**meta["features"]),
            scheme=str(meta["scheme"]),
            decision_path=tuple(meta["decision_path"]),
            cost_estimates={k: float(v) for k, v in meta["cost_estimates"].items()},
            frequency_counts=data["frequency_counts"],
            frequency_order=data["frequency_order"],
            training_symbols=int(meta["training_symbols"]),
            permutation=data["permutation"] if meta["has_permutation"] else None,
            hot_state_count=int(meta["hot_state_count"]),
            predictor_stats=meta["predictor_stats"],
            stage_timings_ms={
                k: float(v) for k, v in meta.get("stage_timings_ms", {}).items()
            },
            # v2 artifacts predate online adaptation: default the revision
            # counter and provenance (upgrade-on-load; saved back as v3).
            revision=int(meta.get("revision", 0)),
            live_provenance=meta.get("live_provenance", {}) or {},
        )
    # Fingerprint verification on load: a plan whose embedded automaton no
    # longer hashes to what the compiler recorded must never serve.
    plan.verify()
    return plan
