"""Compile-once / serve-many: the immutable plan artifact layer.

``compile_plan`` runs the paper's whole offline phase (profiling, selector,
transformation, cost model, predictor training) once and freezes the result
into a :class:`CompiledPlan`; ``save_plan``/``load_plan`` round-trip it to
disk with fingerprint verification; ``GSpecPal.from_plan`` and
:mod:`repro.serving` execute from it with zero profiling work.
"""

from repro.plan.artifact import (
    PLAN_FORMAT_VERSION,
    SUPPORTED_PLAN_VERSIONS,
    CompiledPlan,
    config_fingerprint,
    config_snapshot,
)
from repro.plan.compile import compile_plan, revise_plan
from repro.plan.serialize import load_plan, save_plan

__all__ = [
    "PLAN_FORMAT_VERSION",
    "SUPPORTED_PLAN_VERSIONS",
    "CompiledPlan",
    "compile_plan",
    "config_fingerprint",
    "config_snapshot",
    "load_plan",
    "revise_plan",
    "save_plan",
]
