"""Shared scaffolding for all parallelization schemes.

A scheme is constructed around a :class:`~repro.gpu.kernel.GpuSimulator`
(which fixes the device, the table layout, and the optional frequency
transformation) plus a thread count.  ``run(data)`` executes the three-phase
pipeline of the paper — predict, speculative parallel execution, verify &
recover — and returns a :class:`SchemeResult` carrying both the functional
answer (end state / accept decision, guaranteed equal to the sequential
reference) and the :class:`~repro.gpu.stats.KernelStats` cost ledger.
"""

from __future__ import annotations

import abc
import functools
import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.engine import ExecutionBackend
from repro.gpu.device import RTX3090, DeviceSpec
from repro.gpu.kernel import GpuSimulator, KernelPhase
from repro.gpu.stats import KernelStats
from repro.observability import NULL_TRACER
from repro.speculation.chunks import Partition, partition_input
from repro.speculation.observations import LiveObservations
from repro.speculation.predictor import Prediction, predict_start_states
from repro.speculation.records import VRStore
from repro.selfcheck.audit import selfcheck_enabled
from repro.errors import MissingTrainingInputWarning, SchemeError


@dataclass
class SchemeResult:
    """Outcome of one scheme execution.

    Attributes
    ----------
    end_state:
        Final DFA state in the *original* (untransformed) numbering.
    accepts:
        Whether the end state is accepting.
    stats:
        Cycle/operation ledger of the simulated kernel.
    scheme:
        Name of the scheme that produced this result.
    n_chunks:
        Number of chunks/threads used.
    chunk_ends:
        Optional ``(n_chunks,)`` array of *verified* end states per chunk
        (original numbering).  Filled by schemes that materialize the chain;
        enables post-hoc queries like first-match offsets without a rescan.
    observations:
        :class:`~repro.speculation.observations.LiveObservations` for this
        run — predictor hits/misses at the scheme's spec-k, recovery effort
        and a symbol-histogram sketch.  Attached universally by the run
        wrapper; the serving tier feeds it to the drift monitor.
    """

    end_state: int
    accepts: bool
    stats: KernelStats
    scheme: str
    n_chunks: int
    chunk_ends: Optional[np.ndarray] = None
    observations: Optional[LiveObservations] = None

    @property
    def cycles(self) -> float:
        return self.stats.cycles

    @property
    def time_ms(self) -> float:
        return self.stats.time_ms


def _wrap_run_with_audit(run):
    """Wrap a scheme's ``run`` so the selfcheck audit fires after it and
    the run's :class:`LiveObservations` are attached to the result.

    Applied once per class by ``Scheme.__init_subclass__``; the audit half
    is skipped when :attr:`Scheme.selfcheck` is off, but the observation
    record is attached on every path — it is the serving tier's drift
    signal, not a debugging aid.
    """

    @functools.wraps(run)
    def audited_run(self, data, start_state=None):
        if not self.selfcheck:
            result = run(self, data, start_state)
            _attach_observations(self, data, result)
            return result
        from repro.selfcheck.audit import audit_scheme_run

        self._audit_stash = {}
        try:
            result = run(self, data, start_state)
            audit_scheme_run(self, data, start_state, result)
        finally:
            self._audit_stash = None
        _attach_observations(self, data, result)
        return result

    audited_run._selfcheck_wrapped = True
    return audited_run


def _attach_observations(scheme, data, result) -> None:
    """Fill ``result.observations`` from the run's ledger and input.

    The spec-k of the evidence is the depth the scheme actually verified
    at: PM exposes its configured ``k``; every other speculative scheme
    checks the front-of-queue candidate first, i.e. spec-1.  Schemes
    without boundary verification (sfa, seq) naturally carry zero samples.
    """
    if result is None or getattr(result, "observations", None) is not None:
        return
    from repro.automata.dfa import _as_symbol_array

    result.observations = LiveObservations.from_run(
        result.stats,
        _as_symbol_array(data),
        scheme=scheme.name,
        spec_k=getattr(scheme, "k", 1),
        n_symbols=scheme.sim.dfa.n_symbols,
        boundary_evidence=scheme.boundary_evidence,
    )


class Scheme(abc.ABC):
    """Base class: owns the simulator, the thread count, and phase 1–2.

    Parameters
    ----------
    sim:
        The automaton loaded on the simulated device.  Use
        :meth:`Scheme.for_dfa` to build both in one call.
    n_threads:
        Number of GPU threads == number of input chunks ``N``.
    """

    name: str = "abstract"
    #: whether this scheme's ledger ``matches``/``mismatches`` count
    #: *verified speculation boundaries*.  Misprediction-free schemes
    #: whose matches are exact by construction (SFA's mapping
    #: compositions) set this False so their runs carry traffic shape
    #: but zero accuracy evidence — the drift monitor's dormancy
    #: contract depends on it.
    boundary_evidence: bool = True

    def __init__(
        self, sim: GpuSimulator, n_threads: int = 256, predictor=None, tracer=None
    ):
        if n_threads < 1:
            raise SchemeError(f"n_threads must be >= 1, got {n_threads}")
        self.sim = sim
        self.n_threads = int(n_threads)
        self.predictor = predictor  # None -> the paper's lookback-2
        #: span sink; the no-op default keeps tracing opt-in and free.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: runtime invariant audits (repro.selfcheck); defaults to the
        #: ``REPRO_SELFCHECK`` environment variable, overridable per
        #: instance (GSpecPal threads its config's flag through here).
        self.selfcheck = selfcheck_enabled()
        #: per-run scratch the audit reads; a dict only while an audited
        #: run is in flight (see ``_stash_audit``), ``None`` otherwise.
        self._audit_stash = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "_selfcheck_wrapped", False):
            cls.run = _wrap_run_with_audit(run)

    def _stash_audit(self, **kw) -> None:
        """Expose run internals (partition/prediction/vr/…) to the audit.

        No-op unless an audited run is in flight, so un-audited runs pay
        nothing.
        """
        if self._audit_stash is not None:
            self._audit_stash.update(kw)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> ExecutionBackend:
        """The execution backend every transition step routes through."""
        return self.sim.engine

    # ------------------------------------------------------------------
    @classmethod
    def for_dfa(
        cls,
        dfa: DFA,
        *,
        n_threads: int = 256,
        device: DeviceSpec = RTX3090,
        training_input=None,
        use_transformation: bool = True,
        metrics=None,
        backend: Optional[str] = None,
        **kwargs,
    ) -> "Scheme":
        """Convenience constructor: load ``dfa`` on a device and build the
        scheme.  ``training_input`` feeds the frequency profile; when absent
        the transformation is skipped (hash layout with a trivial profile)
        and a :class:`~repro.errors.MissingTrainingInputWarning` is emitted.
        ``metrics`` attaches a registry to the executor; ``backend`` selects
        the execution engine (``"sim"``/``"fast"``, default per
        ``$REPRO_BACKEND``); a ``tracer`` kwarg is forwarded to the scheme."""
        if training_input is None and use_transformation:
            use_transformation = False
            warnings.warn(
                f"{cls.__name__}.for_dfa: no training_input to profile state "
                "frequencies, so the frequency transformation is disabled "
                "(falling back to the hash hot layout); pass a training "
                "input, or use_transformation=False to silence this",
                MissingTrainingInputWarning,
                stacklevel=2,
            )
            if metrics is not None:
                metrics.counter("scheme.transformation_auto_disabled").inc()
        sim = GpuSimulator(
            dfa=dfa,
            device=device,
            use_transformation=use_transformation,
            training_input=bytes(training_input) if training_input is not None else None,
            metrics=metrics,
            backend=backend,
        )
        return cls(sim, n_threads=n_threads, **kwargs)

    # ------------------------------------------------------------------
    # tracing helpers
    # ------------------------------------------------------------------
    def _phase_span(self, name: str, stats: KernelStats, **attrs):
        """A cycle-stamped span using the run's ledger as its clock, so the
        span's ``cycles`` is exactly what was charged while it was open."""
        return self.tracer.span(name, cycle_source=stats, **attrs)

    def _scheme_span(self, stats: KernelStats, **attrs):
        """Root span of one ``run()``: opens at cycle 0 so it covers the
        launch overhead ``new_stats`` pre-charged before tracing began."""
        return self.tracer.span(
            f"scheme:{self.name}",
            cycle_source=stats,
            cycle_start=0.0,
            scheme=self.name,
            n_threads=self.n_threads,
            **attrs,
        )

    def _launch_span(self, stats: KernelStats):
        """Zero-width span claiming the pre-charged kernel-launch cycles, so
        sibling phase spans tile the ledger exactly."""
        return self.tracer.span(
            KernelPhase.LAUNCH, cycle_source=stats, cycle_start=0.0
        )

    # ------------------------------------------------------------------
    # shared phases
    # ------------------------------------------------------------------
    def _partition(self, data) -> Partition:
        return partition_input(data, self.n_threads)

    def _predict(
        self,
        partition: Partition,
        stats: KernelStats,
        exec_start: Optional[int] = None,
    ) -> Prediction:
        """Phase 1: all-state lookback-2 prediction (cost = the constant C).

        Frequency ties are broken in *original* state space so speculation
        order does not depend on whether the frequency transformation is on.
        A custom :class:`~repro.speculation.predictors.StartStatePredictor`
        set on the scheme replaces the paper's lookback-2 default.
        """
        start = exec_start if exec_start is not None else self.sim.exec_start_state
        if self.predictor is not None:
            return self.predictor.predict(
                self.sim.exec_dfa,
                partition,
                start,
                stats=stats,
                device=self.sim.device,
                tie_break=self.sim.to_user_states,
            )
        return predict_start_states(
            self.sim.exec_dfa,
            partition,
            start_state=start,
            stats=stats,
            device=self.sim.device,
            tie_break=self.sim.to_user_states,
        )

    def _speculative_execution(
        self,
        partition: Partition,
        prediction: Prediction,
        stats: KernelStats,
        vr: VRStore,
    ) -> np.ndarray:
        """Phase 2 (spec-1 flavour): every thread runs its own chunk from the
        front of its speculation queue; records land in ``VR_i^end``.

        The front candidate is *dequeued* so later recovery scheduling
        enumerates genuinely new states.
        """
        starts = np.asarray(
            [prediction.queues[i].dequeue() for i in range(partition.n_chunks)],
            dtype=np.int64,
        )
        ends = self.engine.run_batch(
            partition.chunks,
            starts,
            stats=stats,
            phase=KernelPhase.SPECULATIVE_EXECUTION,
            lengths=partition.lengths,
        )
        for i in range(partition.n_chunks):
            vr.add(i, int(starts[i]), int(ends[i]), own=True)
        stats.charge_sync(KernelPhase.SPECULATIVE_EXECUTION)
        return ends

    def _finish(
        self,
        end_state_exec: int,
        stats: KernelStats,
        chunk_ends_exec: Optional[np.ndarray] = None,
    ) -> SchemeResult:
        """Translate the end state back to user space and wrap up."""
        end_user = self.sim.to_user_state(int(end_state_exec))
        chunk_ends = (
            self.sim.to_user_states(np.asarray(chunk_ends_exec, dtype=np.int64))
            if chunk_ends_exec is not None
            else None
        )
        return SchemeResult(
            end_state=end_user,
            accepts=end_user in self.sim.dfa.accepting,
            stats=stats,
            scheme=self.name,
            n_chunks=self.n_threads,
            chunk_ends=chunk_ends,
        )

    def _exec_start(self, start_state: Optional[int]) -> int:
        """Executor-space start state (defaults to the DFA's q0)."""
        if start_state is None:
            return self.sim.exec_start_state
        return self.sim.to_exec_state(int(start_state))

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, data, start_state: "Optional[int]" = None) -> SchemeResult:
        """Execute the scheme over ``data`` from ``start_state`` (default
        the DFA's initial state) and return the result."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_threads={self.n_threads}, dfa={self.sim.dfa.name!r})"
