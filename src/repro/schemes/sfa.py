"""SFA: misprediction-free parallelization via simultaneous finite automata.

Sin'ya & Matsuzaki's simultaneous finite automata (arXiv:1405.0562) sidestep
speculation entirely: instead of guessing each chunk's start state, every
chunk computes its *full* state→state transition function — the end state
from **every** possible start — as a ``(n_states,)`` mapping row.  The
mappings then compose left-to-right (function composition is associative,
so the combine parallelizes into a ``log N`` tree like PM's merge), and the
answer is exact with **zero** recovery rounds: there is no mispredict path
because nothing was predicted.

The price is construction cost: each chunk runs ``n_states`` lanes instead
of one, so SFA only wins where speculation accuracy is so low that the four
speculative schemes degrade toward their sequential worst case.  Two
levers keep the cost bounded:

* **Rabin-fingerprint deduplication** (the arXiv:1512.09228 SDFA trick):
  chunks are grouped by a polynomial rolling fingerprint of their content
  (with an exact content compare inside each bucket, so hash collisions can
  never change the answer) and one mapping is built per *unique* chunk —
  periodic or low-entropy inputs collapse to a handful of constructions.
* **Reachable-width pruning happens naturally**: after a few symbols the
  image of the full state set typically collapses to a small set of
  surviving states, which is why the cost model prices SFA with the
  profiled ``reachable_width`` feature rather than ``n_states``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.gpu.kernel import KernelPhase
from repro.schemes.base import Scheme, SchemeResult
from repro.speculation.chunks import Partition

#: Rabin fingerprint modulus/base.  ``MOD`` is the Mersenne prime 2^31-1 and
#: ``BASE`` < 2^20, so ``fp * BASE + sym`` stays well inside int64 for byte
#: alphabets — the rolling update needs no 128-bit arithmetic.
FINGERPRINT_MOD = (1 << 31) - 1
FINGERPRINT_BASE = 1_000_003


def fingerprint_chunks(
    chunks: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Rabin polynomial fingerprint of every chunk's live prefix.

    Vectorized across chunks: one rolling-hash update per input position
    advances all chunk fingerprints together (symbols are offset by one so
    a chunk of zeros does not hash like an empty chunk).
    """
    chunks = np.asarray(chunks)
    lens = np.asarray(lengths, dtype=np.int64)
    n, chunk_len = chunks.shape
    fp = np.zeros(n, dtype=np.int64)
    if n == 0 or chunk_len == 0:
        return fp
    syms = chunks.astype(np.int64, copy=False)
    max_len = int(lens.max(initial=0))
    for j in range(max_len):
        live = j < lens
        if not live.any():
            break
        fp[live] = (
            fp[live] * FINGERPRINT_BASE + syms[live, j] + 1
        ) % FINGERPRINT_MOD
    return fp


def dedupe_chunks(
    chunks: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Group identical chunks: ``(representatives, inverse)``.

    ``representatives[g]`` is the chunk index whose content defines group
    ``g``; ``inverse[i]`` maps every chunk to its group.  Grouping keys on
    the ``(fingerprint, length)`` pair but membership is decided by an
    exact content compare against the representative, so a fingerprint
    collision costs one extra mapping instead of a wrong answer.
    """
    chunks = np.asarray(chunks)
    lens = np.asarray(lengths, dtype=np.int64)
    fingerprints = fingerprint_chunks(chunks, lens)
    n = chunks.shape[0]
    buckets: dict = {}
    reps: list = []
    inverse = np.empty(n, dtype=np.int64)
    for i in range(n):
        key = (int(fingerprints[i]), int(lens[i]))
        gid = None
        for candidate in buckets.get(key, ()):
            r = reps[candidate]
            if np.array_equal(chunks[i, : lens[i]], chunks[r, : lens[r]]):
                gid = candidate
                break
        if gid is None:
            gid = len(reps)
            reps.append(i)
            buckets.setdefault(key, []).append(gid)
        inverse[i] = gid
    return np.asarray(reps, dtype=np.int64), inverse


class SFAScheme(Scheme):
    """Simultaneous-finite-automata execution: exact, speculation-free.

    Three phases replace the predict/speculate/recover pipeline:

    1. **dedupe** — Rabin-fingerprint the chunks and keep one
       representative per distinct content;
    2. **mapping** — build each unique chunk's full state→state mapping on
       the execution backend (``run_mappings``: ``n_states`` lanes per
       chunk advance in lockstep);
    3. **compose** — chain the mappings left-to-right through the carried
       state, charging the ``log N`` parallel combine the SFA paper's tree
       reduction would run on the device.
    """

    name = "sfa"
    #: the ledger's ``matches`` are exact mapping compositions, not
    #: verified speculation boundaries — never accuracy evidence.
    boundary_evidence = False

    def run(self, data, start_state=None) -> SchemeResult:
        partition: Partition = self._partition(data)
        n = partition.n_chunks
        stats = self.sim.new_stats(n_threads=self.n_threads)
        n_states = self.sim.exec_dfa.n_states
        with self._scheme_span(stats, n_chunks=n, n_states=n_states):
            with self._launch_span(stats):
                pass
            exec_start = self._exec_start(start_state)

            # --- phase 1: fingerprint dedupe (host-side, cheap) ---------
            with self._phase_span(
                KernelPhase.PREDICT, stats, kind="fingerprint"
            ):
                reps, inverse = dedupe_chunks(
                    partition.chunks, partition.lengths
                )
                # One rolling-hash pass over the input, pipelined across
                # chunks: charge it like a predictor replay, not a kernel.
                stats.charge(
                    KernelPhase.PREDICT,
                    2.0 * self.sim.device.transition_compute_cycles,
                )
            n_unique = int(reps.size)

            # --- phase 2: mapping construction (the expensive part) -----
            with self._phase_span(
                KernelPhase.MAPPING, stats, unique_chunks=n_unique
            ):
                mappings = self.engine.run_mappings(
                    partition.chunks[reps],
                    lengths=partition.lengths[reps],
                    stats=stats,
                    phase=KernelPhase.MAPPING,
                    chunk_ids=reps,
                )
                stats.charge_sync(KernelPhase.MAPPING)

            # --- phase 3: log-depth mapping composition -----------------
            # The device combine is a PM-style two-level tree (intra-warp
            # shuffles, then inter-warp rounds through shared memory), but
            # each merge forwards a full mapping — ``width`` states — not a
            # scalar.  ``width`` is the realized image size, which the
            # state-convergence collapse keeps far below ``n_states``.
            dev = self.sim.device
            width = (
                int(
                    np.mean(
                        [len(np.unique(mappings[g])) for g in range(n_unique)]
                    )
                )
                if n_unique
                else 1
            )
            width = max(1, width)
            with self._phase_span(KernelPhase.MERGE, stats, width=width):
                intra_rounds = (
                    math.ceil(math.log2(min(n, dev.warp_size))) if n > 1 else 0
                )
                n_warps = -(-n // dev.warp_size)
                inter_rounds = (
                    math.ceil(math.log2(n_warps)) if n_warps > 1 else 0
                )
                for _ in range(intra_rounds):
                    stats.comm_ops += width * n
                    stats.charge(
                        KernelPhase.MERGE, width * dev.shuffle_cycles
                    )
                for _ in range(inter_rounds):
                    stats.comm_ops += width * n_warps
                    stats.charge(KernelPhase.MERGE, dev.comm_cycles)
                    stats.charge(
                        KernelPhase.MERGE, (width - 1) * dev.shuffle_cycles
                    )
                    stats.charge_sync(KernelPhase.MERGE)

                # Functional chain through the carried state: exact by
                # construction, no verification and no recovery ever.
                chunk_ends = np.empty(n, dtype=np.int64)
                state = int(exec_start)
                for i in range(n):
                    state = int(mappings[inverse[i], state])
                    chunk_ends[i] = state
                stats.matches += n

            # Every lane beyond the ground-truth path was insurance work.
            useful_transitions = int(partition.lengths.sum())
            stats.redundant_transitions += max(
                0, stats.transitions - useful_transitions
            )

            self._stash_audit(
                partition=partition,
                exec_start=exec_start,
                sfa_mappings=mappings,
                sfa_reps=reps,
                sfa_inverse=inverse,
            )
            self._record_metrics(n, n_unique, n_states, width)
            result = self._finish(state, stats, chunk_ends_exec=chunk_ends)
        return result

    def _record_metrics(
        self, n_chunks: int, n_unique: int, n_states: int, width: int
    ) -> None:
        metrics = getattr(self.sim, "metrics", None)
        if metrics is None:
            return
        metrics.counter("sfa.mappings_built").inc(n_unique)
        metrics.counter("sfa.mappings_deduped").inc(n_chunks - n_unique)
        metrics.histogram("sfa.mapping_width").observe(width)
        metrics.histogram("sfa.mapping_lanes").observe(n_unique * n_states)
