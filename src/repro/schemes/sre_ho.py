"""SRE-HO: higher-order speculative recovery (extension).

Qiu et al. (ASPLOS'21) — the SRE source — also propose *higher-order
speculation*: speculate not only on the predecessor's current end state but
on its *other* speculative results too.  GSpecPal cites the idea as the
motivation for breaking the thread↔chunk binding; this extension implements
the intermediate point between SRE and RR/NF:

* threads keep the one-to-one binding (like SRE),
* but when the forwarded end state finds no record, a thread also works
  through the **ends recorded by its predecessor's other speculations** —
  each such end is a second-order candidate for this chunk's start.

It needs no speculation-queue access and no cross-chunk scheduling, so its
hardware footprint matches SRE's; its accuracy sits between SRE and RR.
"""

from __future__ import annotations

from typing import List

from repro.schemes.recovery_common import (
    Assignment,
    FrontierLoopScheme,
    RecoveryPolicy,
    RoundContext,
)


class HigherOrderSREPolicy(RecoveryPolicy):
    """SRE plus second-order candidates from the predecessor's records."""

    def schedule(self, ctx: RoundContext) -> List[Assignment]:
        assignments: List[Assignment] = []
        n = ctx.partition.n_chunks
        for t in range(ctx.frontier, n):
            if ctx.found[t]:
                continue
            if t == ctx.frontier or ctx.stable[t]:
                # First order: the forwarded end state.
                assignments.append((t, t, int(ctx.end_p[t])))
            elif t > 0:
                # Second order: an untried end recorded on the predecessor.
                for record in ctx.vr.records(t - 1):
                    if ctx.vr.lookup(t, record.end) is None:
                        assignments.append((t, t, int(record.end)))
                        break
        return assignments


class SREHOScheme(FrontierLoopScheme):
    """Higher-order SRE: forwarded ends plus predecessors' alternate ends."""

    name = "sre-ho"
    policy = HigherOrderSREPolicy()
