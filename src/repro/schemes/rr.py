"""RR: Round-Robin based speculative recovery (Algorithm 4).

The aggressive design: when the frontier hits a must-be-done recovery, the
one-to-one thread↔chunk binding is broken.  *Rear* threads (assigned chunk at
or after the frontier) behave like SRE — they recover their own chunk from
the forwarded end state.  *Non-rear* threads (their chunks are already
verified, so they would otherwise idle) are spread over the unverified chunks
``f+1 … N-1`` in round-robin order, each dequeuing the next-ranked candidate
from that chunk's speculation queue ``QS_cid`` and executing a speculative
recovery from it.  The paper's bound — at most ``1 + ceil((f-1)/(N-f))``
threads per chunk — falls out of the modular assignment.
"""

from __future__ import annotations

from typing import List

from repro.schemes.recovery_common import (
    Assignment,
    FrontierLoopScheme,
    RecoveryPolicy,
    RoundContext,
)


class RRPolicy(RecoveryPolicy):
    """Rear threads act like SRE; idle threads round-robin over rear chunks."""

    def schedule(self, ctx: RoundContext) -> List[Assignment]:
        assignments: List[Assignment] = []
        n = ctx.partition.n_chunks
        f = ctx.frontier

        # Rear threads (tid >= f): stay on their own chunk (Alg. 4 ll.19-21).
        for t in range(f, n):
            if ctx.found[t]:
                continue
            if t == f or ctx.stable[t]:
                assignments.append((t, t, int(ctx.end_p[t])))

        # Non-rear threads: round-robin over chunks f+1 .. n-1 (ll.22-25).
        n_rear_chunks = n - 1 - f
        if n_rear_chunks <= 0:
            return assignments
        for t in range(f):
            cid = (f + 1) + (t % n_rear_chunks)
            queue = ctx.prediction.queues[cid]
            if ctx.vr.others_full(cid):
                continue  # no register slot left for a foreign record
            # Skip candidates already executed on this chunk.
            st = None
            while queue.size > 0:
                candidate = queue.dequeue()
                if ctx.vr.lookup(cid, candidate) is None:
                    st = candidate
                    break
            if st is None:
                continue  # queue exhausted: the thread idles this round
            assignments.append((t, cid, int(st)))
        return assignments


class RRScheme(FrontierLoopScheme):
    """Algorithm 4: aggressive recovery with round-robin scheduling."""

    name = "rr"
    policy = RRPolicy()
