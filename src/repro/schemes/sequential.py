"""Sequential reference execution (one thread, the whole stream).

This is the ground truth every parallel scheme is checked against, and the
baseline for "speedup over sequential" reporting.  On the simulated device it
occupies a single lane of a single warp — the embarrassingly sequential
regime the paper sets out to break.
"""

from __future__ import annotations

import numpy as np

from repro.automata.dfa import _as_symbol_array
from repro.gpu.kernel import KernelPhase
from repro.schemes.base import Scheme, SchemeResult


class SequentialScheme(Scheme):
    """Single-thread DFA processing (Algorithm 1's FSM_Processing)."""

    name = "seq"

    def run(self, data, start_state=None) -> SchemeResult:
        symbols = _as_symbol_array(data)
        stats = self.sim.new_stats(n_threads=1)
        with self._scheme_span(stats, n_chunks=1):
            with self._launch_span(stats):
                pass
            start = np.asarray([self._exec_start(start_state)], dtype=np.int64)
            with self._phase_span(KernelPhase.SPECULATIVE_EXECUTION, stats):
                ends = self.engine.run_batch(
                    symbols.reshape(1, -1),
                    start,
                    stats=stats,
                    phase=KernelPhase.SPECULATIVE_EXECUTION,
                )
            with self._phase_span(KernelPhase.MERGE, stats):
                result = self._finish(int(ends[0]), stats, chunk_ends_exec=ends)
        return result
