"""PM: Parallel Merge with enumerative speculation (Xia et al. PPoPP'20).

The state of the art GSpecPal is measured against, and the paper's baseline
(with ``spec-4``).  Each thread runs its chunk from the top-``k`` states of
its speculation queue, maintaining ``k`` transition paths (``spec-k``).
Verification is a parallel tree-like merge over ``log N`` rounds; when a
forwarded end state matches none of a chunk's speculative start states, PM
*delays* the recovery (marking paths invalid) and only re-executes when the
mismatch turns out to affect the ground truth — the must-be-done recoveries,
which run **sequentially**, one idle-GPU chunk at a time.  That sequential
tail is exactly the bottleneck the paper's speculative recovery removes.

Cost model follows Eq. 2:
``T_PM = C + T_p1·α_k + Σ_{log N}(T_comm(k) + T_ver(k))
       + Σ_i P_i·(T_comm(1) + T_ver(k) + T_p1)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.kernel import KernelPhase
from repro.schemes.base import Scheme, SchemeResult
from repro.speculation.records import VRStore
from repro.errors import SchemeError


class PMScheme(Scheme):
    """Parallel Merge with spec-k enumerative speculation.

    Parameters
    ----------
    k:
        Number of speculative paths each thread maintains (the paper's
        baseline uses ``k = 4``).
    adaptive:
        Extension (motivated by §II-C's critique that a static ``k`` wastes
        resources on easy chunks and under-covers hard ones): choose each
        chunk's path count as the smallest queue prefix whose lookback
        weights cover ``adaptive_mass`` of the probability mass, capped at
        ``k``.  Easy chunks then run 1 path; hard chunks use the full k.
    """

    name = "pm"

    def __init__(
        self,
        sim,
        n_threads: int = 256,
        *,
        k: int = 4,
        adaptive: bool = False,
        adaptive_mass: float = 0.9,
        predictor=None,
        tracer=None,
    ):
        super().__init__(sim, n_threads=n_threads, predictor=predictor, tracer=tracer)
        if k < 1:
            raise SchemeError(f"spec-k needs k >= 1, got {k}")
        if not (0.0 < adaptive_mass <= 1.0):
            raise SchemeError("adaptive_mass must be in (0, 1]")
        self.k = k
        self.adaptive = adaptive
        self.adaptive_mass = adaptive_mass
        self.name = f"pm-adaptive{k}" if adaptive else f"pm-spec{k}"

    def _paths_for_chunk(self, queue) -> np.ndarray:
        """Candidate start states this chunk will run (spec-k or adaptive)."""
        if not self.adaptive:
            return queue.top_k(self.k)
        weights = queue.weights[: self.k].astype(np.float64)
        total = float(queue.weights.sum())
        if total <= 0:
            return queue.top_k(self.k)
        covered = np.cumsum(weights) / total
        needed = int(np.searchsorted(covered, self.adaptive_mass) + 1)
        return queue.top_k(max(1, min(self.k, needed)))

    # ------------------------------------------------------------------
    def run(self, data, start_state=None) -> SchemeResult:
        partition = self._partition(data)
        n = partition.n_chunks
        stats = self.sim.new_stats(n_threads=self.n_threads)
        with self._scheme_span(stats, n_chunks=n, k=self.k):
            with self._launch_span(stats):
                pass
            exec_start = self._exec_start(start_state)
            with self._phase_span(KernelPhase.PREDICT, stats):
                prediction = self._predict(partition, stats, exec_start=exec_start)
            vr = VRStore(n_chunks=n, own_capacity=max(self.k, 16))
            self._stash_audit(
                partition=partition,
                prediction=prediction,
                vr=vr,
                exec_start=exec_start,
            )

            # --- spec-k parallel execution (α_k ≈ k serialized paths) ---
            with self._phase_span(KernelPhase.SPECULATIVE_EXECUTION, stats):
                top_k = [
                    self._paths_for_chunk(prediction.queues[i]) for i in range(n)
                ]
                paths_run = np.asarray([t.size for t in top_k], dtype=np.int64)
                for j in range(self.k):
                    active = paths_run > j
                    if not active.any():
                        break
                    starts = np.asarray(
                        [
                            int(top_k[i][j]) if paths_run[i] > j else 0
                            for i in range(n)
                        ],
                        dtype=np.int64,
                    )
                    ends = self.engine.run_batch(
                        partition.chunks,
                        starts,
                        stats=stats,
                        phase=KernelPhase.SPECULATIVE_EXECUTION,
                        lengths=partition.lengths,
                        active=active,
                    )
                    for i in range(n):
                        if active[i]:
                            vr.add(i, int(starts[i]), int(ends[i]), own=True)
                stats.charge_sync(KernelPhase.SPECULATIVE_EXECUTION)

            # --- stage 1: parallel tree-like verification & merge -------
            # Two levels, as in the paper's Fig. 2: ① intra-warp
            # verification first (register shuffles between neighbouring
            # lanes), then ② inter-warp rounds through shared memory with
            # barriers.
            dev = self.sim.device
            with self._phase_span(KernelPhase.MERGE, stats):
                intra_rounds = (
                    math.ceil(math.log2(min(n, dev.warp_size))) if n > 1 else 0
                )
                n_warps = -(-n // dev.warp_size)
                inter_rounds = (
                    math.ceil(math.log2(n_warps)) if n_warps > 1 else 0
                )
                for _ in range(intra_rounds):
                    stats.comm_ops += self.k * n
                    stats.charge(KernelPhase.MERGE, dev.shuffle_cycles)
                    stats.charge_verify(
                        KernelPhase.MERGE,
                        checks_per_thread=self.k,
                        total_checks=self.k * n,
                    )
                for _ in range(inter_rounds):
                    stats.comm_ops += self.k * n_warps
                    stats.charge(KernelPhase.MERGE, dev.comm_cycles)
                    stats.charge_verify(
                        KernelPhase.MERGE,
                        checks_per_thread=self.k,
                        total_checks=self.k * n_warps,
                    )
                    stats.charge_sync(KernelPhase.MERGE)

            # --- stage 2: sequential verification and must-be-done
            # recovery --------------------------------------------------
            end_p = vr.records(0)[0].end  # chunk 0 ran from the real start state
            chunk_ends = np.empty(n, dtype=np.int64)
            chunk_ends[0] = end_p
            matched_path_len = int(partition.lengths[0])
            useful_transitions = matched_path_len
            for i in range(1, n):
                recorded = vr.lookup(i, int(end_p))
                if recorded is not None:
                    stats.matches += 1
                    end_p = int(recorded)
                    chunk_ends[i] = end_p
                    useful_transitions += int(partition.lengths[i])
                    continue
                with self._phase_span(
                    "verify_recover.round",
                    stats,
                    frontier=i,
                    matched=False,
                    active_threads=1,
                ):
                    stats.mismatches += 1
                    stats.record_recovery_round(active_threads=1)
                    stats.recoveries_executed += 1
                    stats.charge_comm(KernelPhase.VERIFY_RECOVER, 1)
                    stats.charge_verify(
                        KernelPhase.VERIFY_RECOVER,
                        checks_per_thread=self.k,
                        total_checks=self.k,
                    )
                    recovery_start = int(end_p)
                    before = stats.phase_cycles.get(
                        KernelPhase.VERIFY_RECOVER, 0.0
                    )
                    ends = self.engine.run_batch(
                        partition.chunks[i : i + 1],
                        np.asarray([recovery_start], dtype=np.int64),
                        stats=stats,
                        phase=KernelPhase.VERIFY_RECOVER,
                        lengths=partition.lengths[i : i + 1],
                        chunk_ids=np.asarray([i]),
                    )
                    stats.recovery_exec_cycles += (
                        stats.phase_cycles.get(KernelPhase.VERIFY_RECOVER, 0.0)
                        - before
                    )
                    end_p = int(ends[0])
                    chunk_ends[i] = end_p
                    vr.add(i, recovery_start, end_p, own=True)
                    useful_transitions += int(partition.lengths[i])

            # Everything executed beyond the ground-truth path was redundant.
            stats.redundant_transitions += max(
                0, stats.transitions - useful_transitions
            )
            result = self._finish(end_p, stats, chunk_ends_exec=chunk_ends)
        return result
