"""The frontier verification/recovery loop shared by SRE, RR and NF.

All three schemes follow Algorithm 3's skeleton: a frontier ``f`` sweeps the
chunks left to right, one round per chunk.  Each round every thread receives
its predecessor's current end state (speculative data forwarding), scans its
chunk's verification records for a match, and — when the *frontier* check
mismatches (``mark == false``) — recovery work is scheduled.  The schemes
differ only in **who** recovers **which chunk** from **which start state**,
which is captured by the :meth:`RecoveryPolicy.schedule` hook.

Timing semantics per round:

* one end-state forward (``comm``), one record scan (``verify`` ×
  max-records, lockstep), one barrier (``sync``);
* when recovery runs, one parallel chunk execution whose time the lockstep
  executor computes from the actual states visited (memory divergence,
  hot/cold placement, input-fetch coalescing).

Fidelity note (documented deviation): Algorithm 3 as printed would let every
unverified thread re-execute from its forwarded end state in *every*
mismatch round, which on non-converging FSMs degenerates into an all-threads
systolic pipeline — contradicting the paper's own Table III, where SRE shows
1–2 active threads on those FSMs.  Following the event-driven design of the
original SRE work (forward-on-finish), our SRE re-executes a chunk from a
forwarded end state only when that end state is **stable** (its producer did
not change it in the previous round); the must-be-done frontier recovery is
always executed.  This reproduces both Table III regimes: ~1 active thread
on non-converging FSMs, a burst then quiet on converging ones.  RR/NF
schedule *all* threads each mismatch round, as Algorithms 4–5 prescribe.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.gpu.kernel import KernelPhase
from repro.gpu.stats import KernelStats
from repro.schemes.base import Scheme, SchemeResult
from repro.speculation.chunks import Partition
from repro.speculation.predictor import Prediction
from repro.speculation.records import VRStore


@dataclass
class RoundContext:
    """Everything a scheduling policy may inspect in one frontier round."""

    frontier: int  # chunk being truly verified this round (f)
    end_p: np.ndarray  # forwarded predecessor end state per thread
    found: np.ndarray  # did thread t's scan match a record?
    stable: np.ndarray  # was thread t's forwarded state unchanged last round?
    partition: Partition
    prediction: Prediction
    vr: VRStore


#: A scheduled recovery task: (thread, chunk, start_state).
Assignment = Tuple[int, int, int]


@dataclass(frozen=True)
class RoundTrace:
    """Observability record of one frontier round (``keep_trace=True``)."""

    frontier: int
    matched: bool
    active_threads: int
    end_c: np.ndarray  # post-round end states (executor space)


class RecoveryPolicy(abc.ABC):
    """Scheme-specific answer to "which chunk, from which state?"."""

    @abc.abstractmethod
    def schedule(self, ctx: RoundContext) -> List[Assignment]:
        """Return the recovery tasks for a ``mark == false`` round.

        Must include the must-be-done frontier recovery
        ``(f, f, end_p[f])`` when the frontier thread found no match.
        """


class FrontierLoopScheme(Scheme):
    """Base class running the Algorithm-3 style loop with a pluggable policy.

    Subclasses set :attr:`policy` and :attr:`name`.
    """

    policy: RecoveryPolicy

    def __init__(
        self,
        sim,
        n_threads: int = 256,
        *,
        own_capacity: int = 16,
        others_capacity: int = 16,
        predictor=None,
        keep_trace: bool = False,
        tracer=None,
    ):
        super().__init__(sim, n_threads=n_threads, predictor=predictor, tracer=tracer)
        self.own_capacity = own_capacity
        self.others_capacity = others_capacity
        #: observability: when True, ``last_trace`` records one
        #: ``RoundTrace`` per frontier round of the most recent run.
        self.keep_trace = keep_trace
        self.last_trace: List["RoundTrace"] = []

    # ------------------------------------------------------------------
    def run(self, data, start_state=None) -> SchemeResult:
        partition = self._partition(data)
        n = partition.n_chunks
        stats = self.sim.new_stats(n_threads=self.n_threads)
        with self._scheme_span(stats, n_chunks=n):
            with self._launch_span(stats):
                pass
            exec_start = self._exec_start(start_state)
            with self._phase_span(KernelPhase.PREDICT, stats):
                prediction = self._predict(partition, stats, exec_start=exec_start)
            vr = VRStore(
                n_chunks=n,
                own_capacity=self.own_capacity,
                others_capacity=self.others_capacity,
            )
            self._stash_audit(
                partition=partition,
                prediction=prediction,
                vr=vr,
                exec_start=exec_start,
            )
            oracle_ends = None
            if self._audit_stash is not None:
                # Exec-space ground truth per chunk, computed once: the
                # frontier invariant says round f leaves chunk f verified.
                from repro.selfcheck.audit import oracle_chunk_ends

                oracle_ends = oracle_chunk_ends(self, partition, exec_start)
            with self._phase_span(KernelPhase.SPECULATIVE_EXECUTION, stats):
                end_c = self._speculative_execution(partition, prediction, stats, vr)
            end_c = end_c.astype(np.int64)

            phase = KernelPhase.VERIFY_RECOVER
            prev_snapshot = end_c.copy()
            last_change_round = np.zeros(n, dtype=np.int64)  # round a thread's end last changed
            self.last_trace = []

            for f in range(n):
                with self._phase_span(
                    "verify_recover.round", stats, frontier=f
                ) as round_span:
                    # --- communication: forward predecessor end states ---
                    end_p = np.empty(n, dtype=np.int64)
                    end_p[0] = exec_start
                    end_p[1:] = prev_snapshot[:-1]
                    stats.charge_comm(phase, n - 1 if n > 1 else 0)

                    # --- verification scan -------------------------------
                    found = np.zeros(n, dtype=bool)
                    scan_depth = 0
                    new_end = end_c.copy()
                    for t in range(n):
                        scan_depth = max(scan_depth, vr.count(t))
                        hit = vr.lookup(t, int(end_p[t]))
                        if hit is not None:
                            found[t] = True
                            new_end[t] = hit
                    stats.charge_verify(
                        phase,
                        checks_per_thread=scan_depth,
                        total_checks=sum(vr.count(t) for t in range(n)),
                    )
                    changed = new_end != end_c
                    end_c = new_end

                    mark = bool(found[f])
                    if mark:
                        stats.matches += 1
                    else:
                        stats.mismatches += 1
                    stats.charge_sync(phase)

                    # stability: a forwarded state is stable when its
                    # producer's end state did not change in the previous
                    # round.
                    stable = np.ones(n, dtype=bool)
                    stable[1:] = last_change_round[:-1] < f  # changed this round ⇒ unstable next
                    last_change_round[changed] = f + 1

                    n_active = 0
                    if not mark:
                        ctx = RoundContext(
                            frontier=f,
                            end_p=end_p,
                            found=found,
                            stable=stable,
                            partition=partition,
                            prediction=prediction,
                            vr=vr,
                        )
                        assignments = self.policy.schedule(ctx)
                        n_active = len(assignments)
                        if assignments:
                            end_c = self._execute_recoveries(
                                assignments, partition, end_c, vr, stats, f
                            )
                            last_change_round[
                                [t for t, cid, _ in assignments if cid == t]
                            ] = f + 1
                        else:
                            stats.record_recovery_round(active_threads=0)
                    vr.charge_shared_traffic(stats, phase)
                    prev_snapshot = end_c.copy()
                    if oracle_ends is not None and int(end_c[f]) != int(
                        oracle_ends[f]
                    ):
                        from repro.errors import SelfCheckError

                        raise SelfCheckError(
                            f"frontier chunk end {int(end_c[f])} != oracle "
                            f"{int(oracle_ends[f])} after its verification "
                            "round",
                            invariant="frontier_oracle",
                            scheme=self.name,
                            backend=self.engine.name,
                            frontier=f,
                            lanes=[f],
                        )
                    if round_span:
                        round_span.set_attr("matched", mark)
                        round_span.set_attr("active_threads", n_active)
                    if self.keep_trace:
                        self.last_trace.append(
                            RoundTrace(
                                frontier=f,
                                matched=mark,
                                active_threads=n_active,
                                end_c=end_c.copy(),
                            )
                        )

            with self._phase_span(KernelPhase.MERGE, stats):
                result = self._finish(int(end_c[n - 1]), stats, chunk_ends_exec=end_c)
        return result

    # ------------------------------------------------------------------
    def _execute_recoveries(
        self,
        assignments: List[Assignment],
        partition: Partition,
        end_c: np.ndarray,
        vr: VRStore,
        stats: KernelStats,
        frontier: int,
    ) -> np.ndarray:
        """Run one parallel recovery batch and fold results into state."""
        n = partition.n_chunks
        phase = KernelPhase.VERIFY_RECOVER
        active = np.zeros(n, dtype=bool)
        cids = np.arange(n, dtype=np.int64)
        starts = np.zeros(n, dtype=np.int64)
        non_own = np.zeros(n, dtype=bool)
        for t, cid, st in assignments:
            active[t] = True
            cids[t] = cid
            starts[t] = st
            non_own[t] = cid != t
        stats.record_recovery_round(active_threads=len(assignments))
        stats.recoveries_executed += len(assignments)

        before = stats.phase_cycles.get(phase, 0.0)
        ends = self.engine.run_gathered(
            partition.chunks,
            cids,
            starts,
            stats=stats,
            phase=phase,
            lengths=partition.lengths[cids],
            active=active,
            # Enumeration on other chunks is aggressive speculation: count
            # it as (potentially) redundant work for the redundancy metric.
            count_redundant=non_own,
        )
        stats.recovery_exec_cycles += stats.phase_cycles.get(phase, 0.0) - before
        for t, cid, st in assignments:
            end = int(ends[t])
            vr.add(cid, int(st), end, own=(cid == t))
            if cid == t:
                end_c[t] = end
        stats.charge_sync(phase)
        return end_c
