"""A throughput-oriented GPU NFA engine (the §II-B prior-art baseline).

Most pre-GSpecPal GPU automata engines (iNFAnt lineage) execute **NFAs**
with *state-level parallelism*: one thread per NFA state, all threads
consuming the same input symbol each step, the new active set assembled with
bitwise ORs in shared memory.  Per-symbol work parallelizes beautifully —
but symbols are strictly sequential, so single-stream latency is
``O(stream length)`` no matter how many threads the GPU has.  That is
exactly the gap GSpecPal's chunk parallelism attacks; this engine exists so
the benchmarks can measure the contrast on equal footing.

Cost model per symbol:

* every *active* state's successor-mask row is fetched — shared memory when
  the masks fit, global otherwise (NFAs are famously compact, one of the
  reasons engines preferred them);
* the OR-reduction and the active-set broadcast cost a shared access plus a
  barrier;
* lanes beyond the active count idle (the low thread-utilization issue
  Liu et al. [18] analyze).
"""

from __future__ import annotations


import numpy as np

from repro.automata.bitset import BitsetNFA
from repro.automata.dfa import _as_symbol_array
from repro.automata.nfa import NFA
from repro.gpu.device import RTX3090, DeviceSpec
from repro.gpu.stats import KernelStats
from repro.errors import SchemeError


class NFAEngineResult:
    """Result of one NFA-engine scan."""

    def __init__(self, accepts: bool, active_mask: np.ndarray, stats: KernelStats):
        self.accepts = accepts
        self.active_mask = active_mask
        self.stats = stats

    @property
    def cycles(self) -> float:
        return self.stats.cycles

    @property
    def time_ms(self) -> float:
        return self.stats.time_ms


class NFAEngine:
    """State-parallel NFA execution with the simulated-GPU cost model.

    Parameters
    ----------
    nfa:
        The automaton (ε-transitions are eliminated internally).
    device:
        Simulated GPU.
    """

    name = "nfa-engine"

    def __init__(self, nfa: NFA, device: DeviceSpec = RTX3090):
        if nfa.n_states == 0:
            raise SchemeError("NFA engine needs at least one state")
        self.bitset = BitsetNFA.from_nfa(nfa)
        self.device = device
        # Real engines store NFAs sparsely (edge lists): that compact form
        # is what decides shared-memory residency and is the footprint the
        # literature's "NFAs are memory efficient" claim refers to.  The
        # dense bitset matrix is only this simulator's execution vehicle.
        from repro.automata.nfa import EPSILON

        n_edges = sum(
            len(dsts)
            for edges in nfa.transitions
            for sym, dsts in edges.items()
            if sym != EPSILON
        )
        self.table_bytes = 8 * n_edges + 8 * nfa.n_states  # packed edges + index
        self.masks_in_shared = self.table_bytes <= (
            device.shared_memory_bytes_per_sm - 8 * 1024
        )

    # ------------------------------------------------------------------
    def run(self, data) -> NFAEngineResult:
        symbols = _as_symbol_array(data)
        stats = KernelStats(device=self.device, n_threads=self.bitset.n_states)
        stats.charge("launch", self.device.launch_overhead_cycles)

        mask, counts = self.bitset.run_counting(symbols)
        dev = self.device
        ws = dev.warp_size
        fetch = dev.shared_cycles if self.masks_in_shared else dev.global_cycles
        issue = 0 if self.masks_in_shared else dev.global_issue_cycles

        # Per step: ceil(active/warp) warps fetch mask rows (serialized
        # transactions within a warp when global), one OR/broadcast through
        # shared memory, one barrier.  Steps are strictly sequential.
        active = counts.astype(np.float64)
        warps_needed = np.ceil(np.maximum(active, 1.0) / ws)
        per_step = (
            fetch
            + np.maximum(0.0, np.minimum(active, ws) - 1.0) * issue
            + dev.shared_cycles  # OR-reduce + active-set publish
            + dev.sync_cycles
            + dev.transition_compute_cycles
        ) * np.maximum(1.0, warps_needed / max(1, dev.n_sms))
        stats.charge("state_parallel_scan", float(per_step.sum()))
        stats.transitions += int(active.sum())
        if self.masks_in_shared:
            stats.shared_accesses += int(active.sum())
        else:
            stats.global_accesses += int(active.sum())
        stats.sync_ops += len(symbols)

        accepts = bool((mask & self.bitset.accept_mask).any())
        return NFAEngineResult(accepts=accepts, active_mask=mask, stats=stats)

    # ------------------------------------------------------------------
    @property
    def memory_footprint_bytes(self) -> int:
        """The engine's table size — NFAs' headline advantage over DFAs."""
        return self.table_bytes
