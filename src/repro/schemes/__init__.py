"""Parallelization schemes.

* :class:`SequentialScheme` — the single-thread reference (``seq``).
* :class:`SpecSequentialScheme` — Algorithm 2: speculation + strictly
  sequential verification/recovery (``spec-seq``).
* :class:`PMScheme` — Parallel Merge with spec-k enumerative speculation,
  the state-of-the-art baseline (``pm-spec4`` by default).
* :class:`SREScheme` — Algorithm 3: immediate speculative recovery from
  forwarded predecessor end states (``sre``).
* :class:`RRScheme` — Algorithm 4: aggressive recovery, round-robin
  scheduling of idle threads over rear chunks (``rr``).
* :class:`NFScheme` — Algorithm 5: aggressive recovery, nearest-frontier
  queue draining (``nf``).
* :class:`EnumerativeScheme` — all-states enumeration baseline (``enum``).
* :class:`SFAScheme` — simultaneous finite automata: misprediction-free
  full state→state mapping composition (``sfa``).

Every scheme's :meth:`~repro.schemes.base.Scheme.run` returns a
:class:`~repro.schemes.base.SchemeResult` whose ``end_state`` provably equals
the sequential reference — speculation changes cost, never answers.
"""

from typing import Dict, Type

from repro.schemes.base import Scheme, SchemeResult
from repro.schemes.enumerative import EnumerativeScheme
from repro.schemes.nf import NFScheme
from repro.schemes.pm import PMScheme
from repro.schemes.rr import RRScheme
from repro.schemes.sequential import SequentialScheme
from repro.schemes.sfa import SFAScheme
from repro.schemes.spec_seq import SpecSequentialScheme
from repro.schemes.sre import SREScheme
from repro.schemes.sre_ho import SREHOScheme

SCHEME_REGISTRY: Dict[str, Type[Scheme]] = {
    "seq": SequentialScheme,
    "spec-seq": SpecSequentialScheme,
    "pm": PMScheme,
    "sre": SREScheme,
    "sre-ho": SREHOScheme,
    "rr": RRScheme,
    "nf": NFScheme,
    "enum": EnumerativeScheme,
    "sfa": SFAScheme,
}


def get_scheme(name: str) -> Type[Scheme]:
    """Look up a scheme class by its registry name (see SCHEME_REGISTRY)."""
    try:
        return SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(SCHEME_REGISTRY)}"
        ) from None


__all__ = [
    "EnumerativeScheme",
    "NFScheme",
    "PMScheme",
    "RRScheme",
    "SCHEME_REGISTRY",
    "SFAScheme",
    "Scheme",
    "SchemeResult",
    "SequentialScheme",
    "SpecSequentialScheme",
    "SREHOScheme",
    "SREScheme",
    "get_scheme",
]
