"""Enumerative DFA parallelization (Mytkowicz et al. ASPLOS'14 flavour).

Every chunk is executed from **all** DFA states, computing the chunk's full
transition *function* ``Q → Q``; the ground truth is then a chain of
function applications (or a parallel prefix composition).  No speculation, no
recovery — but the redundancy factor is the state count, which is why the
speculation-centric schemes exist.  Included as the classical baseline and
used by tests as an independently-computed oracle.

On the simulated GPU the chunk×state grid maps to ``N × |Q|`` lanes in one
launch; when that exceeds the device's resident-warp capacity the cost
model's concurrency factor serializes the excess, which is exactly the
redundancy penalty the paper attributes to enumeration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.kernel import KernelPhase
from repro.schemes.base import Scheme, SchemeResult


class EnumerativeScheme(Scheme):
    """All-states enumeration per chunk + composition of chunk functions."""

    name = "enum"

    def run(self, data, start_state=None) -> SchemeResult:
        partition = self._partition(data)
        n = partition.n_chunks
        n_states = self.sim.exec_dfa.n_states
        stats = self.sim.new_stats(n_threads=self.n_threads * n_states)
        with self._scheme_span(stats, n_chunks=n, n_states=n_states):
            with self._launch_span(stats):
                pass
            # Lane layout: lane (i * n_states + s) runs chunk i from state s.
            with self._phase_span(KernelPhase.SPECULATIVE_EXECUTION, stats):
                chunk_ids = np.repeat(np.arange(n, dtype=np.int64), n_states)
                starts = np.tile(np.arange(n_states, dtype=np.int64), n)
                ends = self.engine.run_gathered(
                    partition.chunks,
                    chunk_ids,
                    starts,
                    stats=stats,
                    phase=KernelPhase.SPECULATIVE_EXECUTION,
                    lengths=partition.lengths[chunk_ids],
                )
                stats.charge_sync(KernelPhase.SPECULATIVE_EXECUTION)
            chunk_fn = ends.reshape(n, n_states)
            # All but one path per chunk is off the ground truth.
            stats.redundant_transitions += int(partition.lengths.sum()) * (
                n_states - 1
            )

            # Compose: log-depth pairwise function composition (prefix "sum").
            with self._phase_span(KernelPhase.MERGE, stats):
                rounds = max(0, math.ceil(math.log2(n))) if n > 1 else 0
                for _ in range(rounds):
                    stats.charge(
                        KernelPhase.MERGE, self.sim.device.shared_cycles * 2
                    )
                    stats.charge_sync(KernelPhase.MERGE)

                state = self._exec_start(start_state)
                chunk_ends = np.empty(n, dtype=np.int64)
                for i in range(n):
                    state = int(chunk_fn[i, state])
                    chunk_ends[i] = state
                result = self._finish(state, stats, chunk_ends_exec=chunk_ends)
        return result
