"""Default speculative DFA parallelization (Algorithm 2).

Spec-1 parallel execution followed by strictly sequential verification and
recovery: walk the chunks in order, re-executing any chunk whose speculated
start state disagrees with the verified end of its predecessor.  Each
recovery occupies one thread while all others idle — the under-utilization
the paper's speculative recovery removes.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import KernelPhase
from repro.schemes.base import Scheme, SchemeResult
from repro.speculation.records import VRStore


class SpecSequentialScheme(Scheme):
    """Algorithm 2: speculation + sequential verification and recovery."""

    name = "spec-seq"

    def run(self, data, start_state=None) -> SchemeResult:
        partition = self._partition(data)
        n = partition.n_chunks
        stats = self.sim.new_stats(n_threads=self.n_threads)
        with self._scheme_span(stats, n_chunks=n):
            with self._launch_span(stats):
                pass
            exec_start = self._exec_start(start_state)
            with self._phase_span(KernelPhase.PREDICT, stats):
                prediction = self._predict(partition, stats, exec_start=exec_start)
            vr = VRStore(n_chunks=n)
            self._stash_audit(
                partition=partition,
                prediction=prediction,
                vr=vr,
                exec_start=exec_start,
            )
            with self._phase_span(KernelPhase.SPECULATIVE_EXECUTION, stats):
                self._speculative_execution(partition, prediction, stats, vr)

            # Sequential verification and recovery (lines 8-14 of Alg. 2).
            end_p = vr.records(0)[0].end  # chunk 0 started from the real state
            chunk_ends = np.empty(n, dtype=np.int64)
            chunk_ends[0] = end_p
            for i in range(1, n):
                with self._phase_span(
                    "verify_recover.round", stats, frontier=i
                ) as round_span:
                    stats.charge_comm(KernelPhase.VERIFY_RECOVER, 1)
                    vr.charge_check(stats, i, KernelPhase.VERIFY_RECOVER)
                    recorded = vr.lookup(i, int(end_p))
                    if recorded is None:
                        stats.mismatches += 1
                        stats.record_recovery_round(active_threads=1)
                        stats.recoveries_executed += 1
                        before = stats.phase_cycles.get(
                            KernelPhase.VERIFY_RECOVER, 0.0
                        )
                        # One thread re-executes chunk i from the verified
                        # state; everyone else idles — this is the
                        # sequential bottleneck.
                        ends = self.engine.run_batch(
                            partition.chunks[i : i + 1],
                            np.asarray([end_p], dtype=np.int64),
                            stats=stats,
                            phase=KernelPhase.VERIFY_RECOVER,
                            lengths=partition.lengths[i : i + 1],
                            chunk_ids=np.asarray([i]),
                        )
                        stats.recovery_exec_cycles += (
                            stats.phase_cycles.get(KernelPhase.VERIFY_RECOVER, 0.0)
                            - before
                        )
                        end_c = int(ends[0])
                        vr.add(i, int(end_p), end_c, own=True)
                    else:
                        stats.matches += 1
                        end_c = int(recorded)
                    if round_span:
                        round_span.set_attr("matched", recorded is not None)
                        round_span.set_attr(
                            "active_threads", 0 if recorded is not None else 1
                        )
                    end_p = end_c
                    chunk_ends[i] = end_c
            with self._phase_span(KernelPhase.MERGE, stats):
                vr.charge_shared_traffic(stats, KernelPhase.VERIFY_RECOVER)
                result = self._finish(end_p, stats, chunk_ends_exec=chunk_ends)
        return result
