"""NF: Nearest-First based speculative recovery (Algorithm 5).

Like RR, the one-to-one thread↔chunk binding is broken in mismatch rounds —
but instead of spreading idle threads evenly, NF concentrates them on the
chunks **nearest the frontier**: all non-rear threads first drain the
speculation queue of chunk ``f+1``, then ``f+2``, and so on (``NF_Sched``,
Alg. 5 ll.25-34).  The rationale: the chunks right after the frontier are the
ones whose verification is due soonest, and on input-sensitive FSMs they may
need many candidates tried before one matches.  A side benefit the paper
measures (Fig. 9): many threads running the *same* chunk fetch the same
input stream, which reduces divergence and improves locality — modeled here
by the executor's input-fetch coalescing.
"""

from __future__ import annotations

from typing import List

from repro.schemes.recovery_common import (
    Assignment,
    FrontierLoopScheme,
    RecoveryPolicy,
    RoundContext,
)


class NFPolicy(RecoveryPolicy):
    """Rear threads act like SRE; idle threads drain the nearest queues."""

    def schedule(self, ctx: RoundContext) -> List[Assignment]:
        assignments: List[Assignment] = []
        n = ctx.partition.n_chunks
        f = ctx.frontier

        # Rear threads (tid >= f): stay on their own chunk (Alg. 5 ll.26-27).
        for t in range(f, n):
            if ctx.found[t]:
                continue
            if t == f or ctx.stable[t]:
                assignments.append((t, t, int(ctx.end_p[t])))

        # Non-rear threads: nearest-first queue draining (ll.28-34).
        if f >= n - 1:
            return assignments
        cid = f + 1
        pending = {cid: 0}  # records scheduled this round but not yet stored
        for t in range(f):
            st = None
            while cid < n:
                queue = ctx.prediction.queues[cid]
                scheduled = pending.get(cid, 0)
                # Capacity-aware draining: once a chunk's VR^others slots
                # (plus this round's pending writes) are spoken for, move on
                # — enumerating past capacity would drop the result.
                room = (
                    not ctx.vr.others_full(cid)
                    and scheduled < ctx.vr.others_capacity
                )
                if room:
                    while queue.size > 0:
                        candidate = queue.dequeue()
                        if ctx.vr.lookup(cid, candidate) is None:
                            st = candidate
                            break
                if st is not None:
                    pending[cid] = scheduled + 1
                    break
                cid += 1  # drained or full; move to the next chunk
                pending.setdefault(cid, 0)
            if st is None:
                break  # every rear queue is exhausted: remaining threads idle
            assignments.append((t, cid, int(st)))
        return assignments


class NFScheme(FrontierLoopScheme):
    """Algorithm 5: aggressive recovery concentrated near the frontier."""

    name = "nf"
    policy = NFPolicy()
