"""SRE: Speculative Recovery activated by the Ending state from the
predecessor (Algorithm 3, after Qiu et al. ASPLOS'21).

Threads forward their end states; a thread re-executes its own chunk from the
forwarded state when that state is new to it (no matching record).  Per the
fidelity note in :mod:`repro.schemes.recovery_common`, a non-frontier thread
only does so when the forwarded state is *stable* — its producer did not
change it in the previous round — while the frontier's must-be-done recovery
always runs.  One-to-one thread↔chunk binding is preserved: SRE never
re-executes somebody else's chunk, which is exactly the utilization ceiling
RR/NF later break.
"""

from __future__ import annotations

from typing import List

from repro.schemes.recovery_common import (
    Assignment,
    FrontierLoopScheme,
    RecoveryPolicy,
    RoundContext,
)


class SREPolicy(RecoveryPolicy):
    """Recover own chunk from the forwarded end state (when stable)."""

    def schedule(self, ctx: RoundContext) -> List[Assignment]:
        assignments: List[Assignment] = []
        n = ctx.partition.n_chunks
        for t in range(ctx.frontier, n):
            if ctx.found[t]:
                continue
            if t == ctx.frontier or ctx.stable[t]:
                assignments.append((t, t, int(ctx.end_p[t])))
        return assignments


class SREScheme(FrontierLoopScheme):
    """Algorithm 3 with end-state-forwarded speculative recovery."""

    name = "sre"
    policy = SREPolicy()
