"""Declarative traffic scenarios: seeded YAML/JSON documents.

A scenario describes one repeatable burst of multi-tenant serving
traffic — who connects, which automata they submit, how fast streams
arrive, how long they live — plus the regression gates CI holds the run
to.  The schema follows the seeded-workload / JSONL-results pattern of
the animica benchmark harness (SNIPPETS.md snippet 2): a small document,
a ``seed`` making the whole workload reproducible, and structured
per-request results suitable for time-series tracking.

Example (YAML and JSON are interchangeable; YAML needs PyYAML)::

    id: smoke
    label: "2-tenant poisson mix over the TCP gateway"
    seed: 42
    clients: 4                 # concurrent client connections
    requests: 48               # measured stream lifecycles
    warmup_requests: 8         # excluded from latency/throughput stats
    arrival:
      kind: poisson            # poisson | uniform | bursty
      rate_per_s: 200
    tenants:
      - name: kw-token
        weight: 0.6
        fsm: {kind: keyword, keyword: token}
      - name: div7
        weight: 0.4
        fsm: {kind: divisibility, modulus: 7}
    segments: {min_len: 32, max_len: 160,
               per_stream_min: 1, per_stream_max: 4}
    pool: {max_streams: 32, open_timeout: 0.5}
    gates: {p99_feed_ms: 500.0, min_throughput_sym_per_s: 1000.0}

Tenant ``fsm`` specs name :mod:`repro.workloads.classic` generators
(``keyword`` / ``divisibility`` / ``parity`` / ``cyclic_rotator`` /
``drifting_phase``), so a scenario file fully determines every automaton
without shipping transition tables.  Validation failures raise
:class:`~repro.errors.ScenarioError` naming the offending field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as _dc_replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.automata.dfa import DFA
from repro.errors import ScenarioError
from repro.workloads import classic

ARRIVAL_KINDS = ("poisson", "uniform", "bursty")
FSM_KINDS = (
    "keyword",
    "divisibility",
    "parity",
    "cyclic_rotator",
    "drifting_phase",
)


def _require(mapping: Mapping, key: str, context: str) -> Any:
    if key not in mapping:
        raise ScenarioError(f"{context}: missing required field {key!r}")
    return mapping[key]


def _reject_unknown(mapping: Mapping, allowed, context: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"{context}: unknown field(s) {', '.join(map(repr, unknown))} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop request arrival process.

    ``poisson`` draws exponential inter-arrival gaps at ``rate_per_s``;
    ``uniform`` spaces arrivals evenly; ``bursty`` releases
    ``burst_size`` back-to-back arrivals then pauses ``burst_pause_s``.
    ``jitter`` multiplies every gap by ``U(1-j, 1+j)``.
    """

    kind: str = "poisson"
    rate_per_s: float = 100.0
    jitter: float = 0.0
    burst_size: int = 8
    burst_pause_s: float = 0.05

    @classmethod
    def from_dict(cls, data: Mapping) -> "ArrivalSpec":
        _reject_unknown(
            data,
            ("kind", "rate_per_s", "jitter", "burst_size", "burst_pause_s"),
            "arrival",
        )
        kind = str(data.get("kind", "poisson"))
        if kind not in ARRIVAL_KINDS:
            raise ScenarioError(
                f"arrival.kind must be one of {ARRIVAL_KINDS}, got {kind!r}"
            )
        spec = cls(
            kind=kind,
            rate_per_s=float(data.get("rate_per_s", 100.0)),
            jitter=float(data.get("jitter", 0.0)),
            burst_size=int(data.get("burst_size", 8)),
            burst_pause_s=float(data.get("burst_pause_s", 0.05)),
        )
        if spec.rate_per_s <= 0:
            raise ScenarioError(
                f"arrival.rate_per_s must be > 0, got {spec.rate_per_s}"
            )
        if not (0.0 <= spec.jitter < 1.0):
            raise ScenarioError(
                f"arrival.jitter must be in [0, 1), got {spec.jitter}"
            )
        if spec.kind == "bursty" and spec.burst_size < 1:
            raise ScenarioError(
                f"arrival.burst_size must be >= 1, got {spec.burst_size}"
            )
        return spec


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class: an FSM spec, a traffic weight, an optional
    forced scheme."""

    name: str
    fsm: Mapping[str, Any]
    weight: float = 1.0
    scheme: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Mapping, index: int) -> "TenantSpec":
        context = f"tenants[{index}]"
        _reject_unknown(data, ("name", "fsm", "weight", "scheme"), context)
        fsm = _require(data, "fsm", context)
        if not isinstance(fsm, Mapping):
            raise ScenarioError(f"{context}.fsm must be an object")
        kind = fsm.get("kind")
        if kind not in FSM_KINDS:
            raise ScenarioError(
                f"{context}.fsm.kind must be one of {FSM_KINDS}, got {kind!r}"
            )
        spec = cls(
            name=str(data.get("name", f"tenant-{index}")),
            fsm=dict(fsm),
            weight=float(data.get("weight", 1.0)),
            scheme=data.get("scheme"),
        )
        if spec.weight <= 0:
            raise ScenarioError(
                f"{context}.weight must be > 0, got {spec.weight}"
            )
        return spec

    def build_dfa(self) -> DFA:
        """Instantiate the tenant's automaton from its FSM spec."""
        fsm = dict(self.fsm)
        kind = fsm.pop("kind")
        try:
            if kind == "keyword":
                keyword = fsm.pop("keyword")
                if isinstance(keyword, str):
                    keyword = keyword.encode("utf-8")
                return classic.keyword_scanner(bytes(keyword), **fsm)
            if kind == "divisibility":
                return classic.divisibility(int(fsm.pop("modulus")), **fsm)
            if kind == "parity":
                return classic.parity(**fsm)
            if kind == "cyclic_rotator":
                return classic.cyclic_rotator(int(fsm.pop("n_states")), **fsm)
            if kind == "drifting_phase":
                return classic.drifting_phase(**fsm)
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(
                f"tenant {self.name!r}: invalid fsm spec for kind "
                f"{kind!r}: {exc}"
            ) from exc
        raise ScenarioError(f"tenant {self.name!r}: unknown fsm kind {kind!r}")


@dataclass(frozen=True)
class SegmentsSpec:
    """Per-stream segmentation: how many segments, how long each."""

    min_len: int = 32
    max_len: int = 160
    per_stream_min: int = 1
    per_stream_max: int = 4

    @classmethod
    def from_dict(cls, data: Mapping) -> "SegmentsSpec":
        _reject_unknown(
            data,
            ("min_len", "max_len", "per_stream_min", "per_stream_max"),
            "segments",
        )
        spec = cls(
            min_len=int(data.get("min_len", 32)),
            max_len=int(data.get("max_len", 160)),
            per_stream_min=int(data.get("per_stream_min", 1)),
            per_stream_max=int(data.get("per_stream_max", 4)),
        )
        if not (1 <= spec.min_len <= spec.max_len):
            raise ScenarioError(
                "segments: need 1 <= min_len <= max_len, got "
                f"{spec.min_len}..{spec.max_len}"
            )
        if not (1 <= spec.per_stream_min <= spec.per_stream_max):
            raise ScenarioError(
                "segments: need 1 <= per_stream_min <= per_stream_max, got "
                f"{spec.per_stream_min}..{spec.per_stream_max}"
            )
        return spec


@dataclass(frozen=True)
class PoolSpec:
    """Serving-pool knobs for the embedded gateway."""

    max_streams: int = 32
    open_timeout: Optional[float] = 0.5
    fused: bool = False
    cache_capacity: int = 16

    @classmethod
    def from_dict(cls, data: Mapping) -> "PoolSpec":
        _reject_unknown(
            data,
            ("max_streams", "open_timeout", "fused", "cache_capacity"),
            "pool",
        )
        spec = cls(
            max_streams=int(data.get("max_streams", 32)),
            open_timeout=(
                None
                if data.get("open_timeout", 0.5) is None
                else float(data.get("open_timeout", 0.5))
            ),
            fused=bool(data.get("fused", False)),
            cache_capacity=int(data.get("cache_capacity", 16)),
        )
        if spec.max_streams < 1:
            raise ScenarioError(
                f"pool.max_streams must be >= 1, got {spec.max_streams}"
            )
        return spec


@dataclass(frozen=True)
class RetrySpec:
    """Client reaction to retryable ``capacity`` rejects."""

    max_attempts: int = 4
    backoff_s: float = 0.02

    @classmethod
    def from_dict(cls, data: Mapping) -> "RetrySpec":
        _reject_unknown(data, ("max_attempts", "backoff_s"), "retry")
        spec = cls(
            max_attempts=int(data.get("max_attempts", 4)),
            backoff_s=float(data.get("backoff_s", 0.02)),
        )
        if spec.max_attempts < 1:
            raise ScenarioError(
                f"retry.max_attempts must be >= 1, got {spec.max_attempts}"
            )
        return spec


@dataclass(frozen=True)
class GateSpec:
    """CI regression gates evaluated over the measure window.

    ``None`` disables a gate.  Oracle exactness and error-freedom are
    always enforced — gates only bound the performance envelope.
    """

    p99_open_ms: Optional[float] = None
    p99_feed_ms: Optional[float] = None
    min_throughput_sym_per_s: Optional[float] = None
    min_throughput_req_per_s: Optional[float] = None
    max_reject_rate: Optional[float] = None

    @classmethod
    def from_dict(cls, data: Mapping) -> "GateSpec":
        allowed = (
            "p99_open_ms",
            "p99_feed_ms",
            "min_throughput_sym_per_s",
            "min_throughput_req_per_s",
            "max_reject_rate",
        )
        _reject_unknown(data, allowed, "gates")
        values = {
            key: (None if data.get(key) is None else float(data[key]))
            for key in allowed
        }
        return cls(**values)


@dataclass(frozen=True)
class Scenario:
    """One validated traffic scenario (see module docstring)."""

    id: str
    label: str = ""
    seed: int = 0
    clients: int = 4
    requests: int = 32
    warmup_requests: int = 0
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    tenants: Tuple[TenantSpec, ...] = ()
    segments: SegmentsSpec = field(default_factory=SegmentsSpec)
    pool: PoolSpec = field(default_factory=PoolSpec)
    retry: RetrySpec = field(default_factory=RetrySpec)
    gates: GateSpec = field(default_factory=GateSpec)
    backend: Optional[str] = None
    n_threads: int = 8
    training_len: int = 512
    require_all_completed: bool = True

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ScenarioError("a scenario must be a mapping/object")
        allowed = (
            "id",
            "label",
            "seed",
            "clients",
            "requests",
            "warmup_requests",
            "arrival",
            "tenants",
            "segments",
            "pool",
            "retry",
            "gates",
            "backend",
            "n_threads",
            "training_len",
            "require_all_completed",
        )
        _reject_unknown(data, allowed, "scenario")
        tenants_data = _require(data, "tenants", "scenario")
        if not isinstance(tenants_data, (list, tuple)) or not tenants_data:
            raise ScenarioError("scenario.tenants must be a non-empty list")
        backend = data.get("backend")
        if backend is not None and backend not in ("sim", "fast"):
            raise ScenarioError(
                f"scenario.backend must be 'sim', 'fast' or null, got "
                f"{backend!r}"
            )
        scenario = cls(
            id=str(_require(data, "id", "scenario")),
            label=str(data.get("label", "")),
            seed=int(data.get("seed", 0)),
            clients=int(data.get("clients", 4)),
            requests=int(data.get("requests", 32)),
            warmup_requests=int(data.get("warmup_requests", 0)),
            arrival=ArrivalSpec.from_dict(data.get("arrival", {})),
            tenants=tuple(
                TenantSpec.from_dict(t, i)
                for i, t in enumerate(tenants_data)
            ),
            segments=SegmentsSpec.from_dict(data.get("segments", {})),
            pool=PoolSpec.from_dict(data.get("pool", {})),
            retry=RetrySpec.from_dict(data.get("retry", {})),
            gates=GateSpec.from_dict(data.get("gates", {})),
            backend=backend,
            n_threads=int(data.get("n_threads", 8)),
            training_len=int(data.get("training_len", 512)),
            require_all_completed=bool(data.get("require_all_completed", True)),
        )
        if scenario.clients < 1:
            raise ScenarioError(
                f"scenario.clients must be >= 1, got {scenario.clients}"
            )
        if scenario.requests < 1:
            raise ScenarioError(
                f"scenario.requests must be >= 1, got {scenario.requests}"
            )
        if scenario.warmup_requests < 0:
            raise ScenarioError(
                "scenario.warmup_requests must be >= 0, got "
                f"{scenario.warmup_requests}"
            )
        return scenario

    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        """Warmup + measured stream lifecycles."""
        return self.warmup_requests + self.requests

    def replace(self, **overrides: Any) -> "Scenario":
        """A copy with ``overrides`` applied (e.g. backend/seed flips)."""
        return _dc_replace(self, **overrides)

    def tenant_weights(self) -> np.ndarray:
        weights = np.asarray([t.weight for t in self.tenants], dtype=float)
        return weights / weights.sum()

    def build_fleet(self) -> Tuple[Tuple[DFA, ...], Tuple[bytes, ...]]:
        """``(dfas, trainings)``, one per tenant, seeded by the scenario.

        ``drifting_phase`` tenants train on calm traffic (matching the
        drift-workload convention); everything else trains on seeded
        lowercase bytes.
        """
        dfas = tuple(t.build_dfa() for t in self.tenants)
        trainings = []
        for i, (tenant, dfa) in enumerate(zip(self.tenants, dfas)):
            if tenant.fsm.get("kind") == "drifting_phase":
                trainings.append(
                    classic.drifting_phase_input(
                        max(self.training_len, 256),
                        drift_at=1.0,
                        seed=self.seed * 31 + i,
                    )
                )
            else:
                rng = np.random.default_rng(self.seed * 31 + i)
                trainings.append(
                    bytes(
                        rng.integers(
                            97, 123, size=self.training_len
                        ).astype(np.uint8)
                    )
                )
        return dfas, tuple(trainings)


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def scenario_from_text(text: str, *, source: str = "<string>") -> Scenario:
    """Parse scenario text: JSON always, YAML when PyYAML is available."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{source}: invalid JSON: {exc}") from exc
    else:
        try:
            import yaml  # optional dependency, gated on purpose
        except ImportError as exc:  # pragma: no cover - env dependent
            raise ScenarioError(
                f"{source}: YAML scenarios need PyYAML (pip install pyyaml) "
                "— or write the scenario as JSON"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"{source}: invalid YAML: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{source}: scenario must be a mapping/object")
    return Scenario.from_dict(data)


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load and validate a scenario document from ``path``."""
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"no scenario file at {path}")
    return scenario_from_text(path.read_text(), source=str(path))


# ----------------------------------------------------------------------
# builtins (the CI regression scenarios; gates sized with generous
# headroom so shared runners do not flake)
# ----------------------------------------------------------------------
BUILTIN_SCENARIOS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "id": "smoke",
        "label": "2-tenant poisson mix, end-to-end over localhost",
        "seed": 42,
        "clients": 4,
        "requests": 32,
        "warmup_requests": 8,
        "arrival": {"kind": "poisson", "rate_per_s": 400.0},
        "tenants": [
            {
                "name": "kw-token",
                "weight": 0.6,
                "fsm": {"kind": "keyword", "keyword": "token"},
            },
            {
                "name": "div7",
                "weight": 0.4,
                "fsm": {"kind": "divisibility", "modulus": 7},
            },
        ],
        "segments": {
            "min_len": 32,
            "max_len": 128,
            "per_stream_min": 1,
            "per_stream_max": 3,
        },
        "pool": {"max_streams": 32, "open_timeout": 1.0},
        "gates": {
            "p99_open_ms": 5_000.0,
            "p99_feed_ms": 2_000.0,
            "min_throughput_sym_per_s": 200.0,
        },
    },
    "capacity": {
        "id": "capacity",
        "label": "admission backpressure: tiny pool, bursty arrivals, retries",
        "seed": 7,
        "clients": 6,
        "requests": 36,
        "warmup_requests": 0,
        "arrival": {
            "kind": "bursty",
            "rate_per_s": 600.0,
            "burst_size": 6,
            "burst_pause_s": 0.02,
        },
        "tenants": [
            {
                "name": "kw-flood",
                "weight": 1.0,
                "fsm": {"kind": "keyword", "keyword": "flood"},
            }
        ],
        "segments": {
            "min_len": 24,
            "max_len": 64,
            "per_stream_min": 1,
            "per_stream_max": 2,
        },
        "pool": {"max_streams": 2, "open_timeout": 0.0},
        "retry": {"max_attempts": 16, "backoff_s": 0.01},
        "gates": {"max_reject_rate": 0.95},
        "require_all_completed": False,
    },
    "bursty-mix": {
        "id": "bursty-mix",
        "label": "4-tenant bursty mix incl. a drifting-phase class",
        "seed": 1234,
        "clients": 6,
        "requests": 40,
        "warmup_requests": 8,
        "arrival": {
            "kind": "bursty",
            "rate_per_s": 300.0,
            "burst_size": 5,
            "burst_pause_s": 0.03,
            "jitter": 0.2,
        },
        "tenants": [
            {
                "name": "kw-alpha",
                "weight": 0.35,
                "fsm": {"kind": "keyword", "keyword": "alpha"},
            },
            {
                "name": "div11",
                "weight": 0.25,
                "fsm": {"kind": "divisibility", "modulus": 11},
            },
            {
                "name": "rotator",
                "weight": 0.2,
                "fsm": {"kind": "cyclic_rotator", "n_states": 48},
            },
            {
                "name": "drifty",
                "weight": 0.2,
                "fsm": {"kind": "drifting_phase", "n_states": 64},
            },
        ],
        "segments": {
            "min_len": 48,
            "max_len": 192,
            "per_stream_min": 2,
            "per_stream_max": 5,
        },
        "pool": {"max_streams": 48, "open_timeout": 1.0},
        "gates": {
            "p99_feed_ms": 3_000.0,
            "min_throughput_sym_per_s": 200.0,
        },
    },
}


def builtin_scenario(name: str) -> Scenario:
    """A validated copy of one of :data:`BUILTIN_SCENARIOS`."""
    if name not in BUILTIN_SCENARIOS:
        raise ScenarioError(
            f"unknown builtin scenario {name!r} "
            f"(have: {', '.join(sorted(BUILTIN_SCENARIOS))})"
        )
    return Scenario.from_dict(BUILTIN_SCENARIOS[name])


__all__ = [
    "ARRIVAL_KINDS",
    "BUILTIN_SCENARIOS",
    "FSM_KINDS",
    "ArrivalSpec",
    "GateSpec",
    "PoolSpec",
    "RetrySpec",
    "Scenario",
    "SegmentsSpec",
    "TenantSpec",
    "builtin_scenario",
    "load_scenario",
    "scenario_from_text",
]
