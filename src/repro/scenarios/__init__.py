"""Seeded traffic scenarios for the network gateway.

A *scenario* is a declarative YAML/JSON document describing a serving
workload — tenant×FSM mix, arrival process (poisson / uniform / bursty),
segment-length distribution, pool sizing, retry policy, warmup/measure
windows and CI regression gates.  The same document with the same seed
always produces the same request schedule, so results are comparable
across runs and backends.

* :mod:`repro.scenarios.schema` — frozen dataclasses + validation
  (:class:`Scenario` and friends), file/text loaders, and the named
  :data:`BUILTIN_SCENARIOS` used by CI;
* :mod:`repro.scenarios.runner` — :func:`run_scenario`, the asyncio
  client fleet that drives a gateway over real sockets, audits every
  closed stream against the ``dfa.run`` oracle, writes JSONL results
  and returns a gated :class:`ScenarioReport`.
"""

from repro.scenarios.runner import (
    RequestRecord,
    ScenarioReport,
    build_schedule,
    run_scenario,
)
from repro.scenarios.schema import (
    ARRIVAL_KINDS,
    BUILTIN_SCENARIOS,
    FSM_KINDS,
    ArrivalSpec,
    GateSpec,
    PoolSpec,
    RetrySpec,
    Scenario,
    SegmentsSpec,
    TenantSpec,
    builtin_scenario,
    load_scenario,
    scenario_from_text,
)

__all__ = [
    "ARRIVAL_KINDS",
    "BUILTIN_SCENARIOS",
    "FSM_KINDS",
    "ArrivalSpec",
    "GateSpec",
    "PoolSpec",
    "RequestRecord",
    "RetrySpec",
    "Scenario",
    "ScenarioReport",
    "SegmentsSpec",
    "TenantSpec",
    "build_schedule",
    "builtin_scenario",
    "load_scenario",
    "run_scenario",
    "scenario_from_text",
]
