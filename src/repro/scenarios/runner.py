"""Drive a traffic scenario through the TCP gateway over real sockets.

:func:`run_scenario` turns a validated :class:`~repro.scenarios.Scenario`
into live wire traffic: an open-loop arrival process releases stream
lifecycles (open → N feeds → close) into a fleet of concurrent
:class:`~repro.gateway.GatewayClient` connections, against either an
embedded :class:`~repro.gateway.GatewayServer` on localhost (the
default — one process, but every byte still crosses a real socket) or an
external gateway at ``host:port``.

Every lifecycle is audited client-side against the ``dfa.run`` oracle —
the runner knows exactly which bytes it sent, so a closed stream's
``end_state``/``accepts`` must match the sequential truth regardless of
how the server interleaved, fused, or hot-swapped execution.  Rejected
opens (the retryable ``capacity`` backpressure signal) are retried with
backoff per the scenario's retry policy and counted.

Results follow the JSONL pattern of the animica harness: one structured
line per request (``out_path``), plus a :class:`ScenarioReport` summary
with p50/p99 open/feed latency, throughput over the measure window, and
the scenario's CI gate verdicts.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServingError
from repro.framework.config import GSpecPalConfig
from repro.gateway.client import GatewayClient
from repro.gateway.server import GatewayServer
from repro.observability import MetricsRegistry
from repro.scenarios.schema import Scenario
from repro.serving.cache import PlanCache
from repro.serving.pool import MatcherPool


@dataclass
class _RequestSpec:
    """One precomputed stream lifecycle (fully seeded, socket-free)."""

    index: int
    phase: str  # "warmup" | "measure"
    tenant_index: int
    segments: Tuple[bytes, ...]
    gap_s: float  # inter-arrival gap *before* this request


@dataclass
class RequestRecord:
    """Outcome of one stream lifecycle (one JSONL line)."""

    index: int
    phase: str
    tenant: str
    stream: Optional[int] = None
    ok: bool = False
    rejects: int = 0
    segments: int = 0
    symbols: int = 0
    open_ms: float = 0.0
    feed_ms: List[float] = field(default_factory=list)
    end_state: Optional[int] = None
    accepts: Optional[bool] = None
    oracle_ok: Optional[bool] = None
    t_start_s: float = 0.0
    t_end_s: float = 0.0
    error: Optional[str] = None

    def to_json(self, scenario_id: str) -> Dict[str, Any]:
        return {
            "scenario": scenario_id,
            "request": self.index,
            "phase": self.phase,
            "tenant": self.tenant,
            "stream": self.stream,
            "ok": self.ok,
            "rejects": self.rejects,
            "segments": self.segments,
            "symbols": self.symbols,
            "open_ms": round(self.open_ms, 3),
            "feed_ms_mean": (
                round(float(np.mean(self.feed_ms)), 3) if self.feed_ms else 0.0
            ),
            "feed_ms_max": (
                round(float(np.max(self.feed_ms)), 3) if self.feed_ms else 0.0
            ),
            "end_state": self.end_state,
            "accepts": self.accepts,
            "oracle_ok": self.oracle_ok,
            "t_start_s": round(self.t_start_s, 6),
            "t_end_s": round(self.t_end_s, 6),
            "error": self.error,
        }


@dataclass
class ScenarioReport:
    """Summary of one :func:`run_scenario` invocation."""

    scenario_id: str
    backend: str
    seed: int
    requests: int
    total_requests: int
    completed: int = 0
    failed: int = 0
    reject_attempts: int = 0
    reject_rate: float = 0.0
    oracle_failures: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    gate_failures: List[str] = field(default_factory=list)
    p50_open_ms: float = 0.0
    p99_open_ms: float = 0.0
    p50_feed_ms: float = 0.0
    p99_feed_ms: float = 0.0
    throughput_req_per_s: float = 0.0
    throughput_sym_per_s: float = 0.0
    elapsed_s: float = 0.0
    measure_elapsed_s: float = 0.0
    drain_stragglers: int = 0
    require_all_completed: bool = True
    gateway_stats: Dict[str, Any] = field(default_factory=dict)
    out_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the run is answer-exact and inside every gate: no
        worker errors, every closed stream oracle-identical, no revise
        stragglers after the drain, all gates green — and, unless the
        scenario opted out, every request completed."""
        return (
            not self.errors
            and not self.oracle_failures
            and not self.gate_failures
            and self.drain_stragglers == 0
            and (not self.require_all_completed or self.failed == 0)
        )

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario_id}: {self.total_requests} requests "
            f"({self.requests} measured) over backend={self.backend}, "
            f"seed={self.seed}",
            f"  completed  : {self.completed} ({self.failed} failed, "
            f"{self.reject_attempts} capacity rejects, "
            f"reject rate {self.reject_rate:.1%})",
            f"  open       : p50 {self.p50_open_ms:.2f} ms / "
            f"p99 {self.p99_open_ms:.2f} ms",
            f"  feed       : p50 {self.p50_feed_ms:.2f} ms / "
            f"p99 {self.p99_feed_ms:.2f} ms",
            f"  throughput : {self.throughput_req_per_s:.1f} req/s, "
            f"{self.throughput_sym_per_s:.0f} sym/s "
            f"(measure window {self.measure_elapsed_s:.2f}s of "
            f"{self.elapsed_s:.2f}s)",
            f"  oracle     : {len(self.oracle_failures)} mismatches",
            f"  errors     : {len(self.errors)}",
        ]
        if self.gate_failures:
            for failure in self.gate_failures:
                lines.append(f"    gate!   {failure}")
        else:
            lines.append("  gates      : all green")
        for failure in self.oracle_failures[:5]:
            lines.append(f"    oracle! {failure}")
        for error in self.errors[:5]:
            lines.append(f"    error!  {error}")
        if self.out_path:
            lines.append(f"  results    : {self.out_path}")
        lines.append("  verdict    : " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# schedule generation (pure, seeded — no sockets)
# ----------------------------------------------------------------------
def build_schedule(scenario: Scenario) -> List[_RequestSpec]:
    """The scenario's full request schedule, derived from its seed.

    Same scenario document ⇒ same tenants, segment bytes and arrival
    gaps, whatever the network does at run time — which is what makes
    the oracle audit and the JSONL results comparable across runs.
    """
    rng = np.random.default_rng(scenario.seed)
    weights = scenario.tenant_weights()
    seg = scenario.segments
    arrival = scenario.arrival
    specs: List[_RequestSpec] = []
    for index in range(scenario.total_requests):
        tenant_index = int(rng.choice(len(weights), p=weights))
        n_segments = int(
            rng.integers(seg.per_stream_min, seg.per_stream_max + 1)
        )
        segments = tuple(
            bytes(
                rng.integers(
                    97,
                    123,
                    size=int(rng.integers(seg.min_len, seg.max_len + 1)),
                ).astype(np.uint8)
            )
            for _ in range(n_segments)
        )
        if arrival.kind == "poisson":
            gap = float(rng.exponential(1.0 / arrival.rate_per_s))
        elif arrival.kind == "uniform":
            gap = 1.0 / arrival.rate_per_s
        else:  # bursty: burst_size back-to-back, then a pause
            gap = (
                arrival.burst_pause_s
                if index % arrival.burst_size == 0 and index > 0
                else 0.0
            )
        if arrival.jitter > 0:
            gap *= float(
                rng.uniform(1.0 - arrival.jitter, 1.0 + arrival.jitter)
            )
        specs.append(
            _RequestSpec(
                index=index,
                phase=(
                    "warmup"
                    if index < scenario.warmup_requests
                    else "measure"
                ),
                tenant_index=tenant_index,
                segments=segments,
                gap_s=gap,
            )
        )
    return specs


# ----------------------------------------------------------------------
# the async drive
# ----------------------------------------------------------------------
async def _lifecycle(
    scenario: Scenario,
    client: GatewayClient,
    spec: _RequestSpec,
    dfas,
    trainings,
    epoch: float,
) -> RequestRecord:
    """One stream lifecycle: open (with capacity retries) → feeds → close."""
    tenant = scenario.tenants[spec.tenant_index]
    record = RequestRecord(
        index=spec.index,
        phase=spec.phase,
        tenant=tenant.name,
        t_start_s=perf_counter() - epoch,
    )
    dfa = dfas[spec.tenant_index]
    # -- open, honoring the wire backpressure contract ------------------
    sid = None
    attempt = 0
    while True:
        started = perf_counter()
        try:
            sid = await client.open(
                dfa,
                training=trainings[spec.tenant_index],
                scheme=tenant.scheme,
            )
            record.open_ms = (perf_counter() - started) * 1e3
            break
        except ServingError as exc:
            if exc.code == "capacity" and exc.retryable:
                record.rejects += 1
                attempt += 1
                if attempt < scenario.retry.max_attempts:
                    await asyncio.sleep(scenario.retry.backoff_s * attempt)
                    continue
                record.error = "capacity retries exhausted"
            else:
                record.error = f"open failed: {exc}"
            record.t_end_s = perf_counter() - epoch
            return record
    record.stream = sid
    # -- feeds ----------------------------------------------------------
    fed = bytearray()
    try:
        for segment in spec.segments:
            started = perf_counter()
            await client.feed(sid, segment)
            record.feed_ms.append((perf_counter() - started) * 1e3)
            fed.extend(segment)
            record.segments += 1
            record.symbols += len(segment)
        summary = await client.close_stream(sid)
    except ServingError as exc:
        record.error = f"{type(exc).__name__}: {exc}"
        record.t_end_s = perf_counter() - epoch
        return record
    # -- client-side oracle audit --------------------------------------
    record.end_state = int(summary["end_state"])
    record.accepts = bool(summary["accepts"])
    expected = int(dfa.run(bytes(fed)))
    record.oracle_ok = (
        record.end_state == expected
        and record.accepts == (expected in dfa.accepting)
        and int(summary["total_symbols"]) == len(fed)
        and int(summary["segments"]) == record.segments
    )
    record.ok = True
    record.t_end_s = perf_counter() - epoch
    return record


async def _drive(
    scenario: Scenario, host: str, port: int, epoch: float
) -> Tuple[List[RequestRecord], List[str]]:
    """Arrival producer + client-fleet consumers over real sockets."""
    schedule = build_schedule(scenario)
    dfas, trainings = scenario.build_fleet()
    records: List[RequestRecord] = []
    errors: List[str] = []
    queue: "asyncio.Queue[Optional[_RequestSpec]]" = asyncio.Queue()

    async def producer() -> None:
        for spec in schedule:
            if spec.gap_s > 0:
                await asyncio.sleep(spec.gap_s)
            await queue.put(spec)
        for _ in range(scenario.clients):
            await queue.put(None)

    async def consumer(worker_index: int) -> None:
        try:
            client = await GatewayClient.connect(host, port)
        except OSError as exc:
            errors.append(f"client {worker_index}: connect failed: {exc}")
            # Drain my share of the queue so the producer can finish.
            while await queue.get() is not None:
                pass
            return
        try:
            while True:
                spec = await queue.get()
                if spec is None:
                    return
                try:
                    record = await _lifecycle(
                        scenario, client, spec, dfas, trainings, epoch
                    )
                except Exception as exc:  # noqa: BLE001 - audit collects
                    errors.append(
                        f"request {spec.index}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                else:
                    records.append(record)
        finally:
            await client.aclose()

    await asyncio.gather(
        producer(), *(consumer(i) for i in range(scenario.clients))
    )
    return records, errors


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


def run_scenario(
    scenario: Scenario,
    *,
    host: Optional[str] = None,
    port: Optional[int] = None,
    out_path: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    log=None,
) -> ScenarioReport:
    """Run ``scenario`` and return its audited report.

    With ``host``/``port`` unset an embedded gateway is started on a free
    localhost port (pool built from the scenario's ``pool`` / ``backend``
    / ``n_threads`` fields) and gracefully drained afterwards; otherwise
    the traffic targets an already-running external gateway and the
    scenario's pool knobs are ignored.  ``out_path`` writes one JSONL
    line per request.
    """
    from repro.engine import resolve_backend_name

    async def main() -> Tuple[List[RequestRecord], List[str], Dict, int]:
        server = None
        target_host, target_port = host, port
        if target_host is None:
            registry = metrics if metrics is not None else MetricsRegistry()
            config = GSpecPalConfig(n_threads=scenario.n_threads)
            pool = MatcherPool(
                PlanCache(
                    capacity=scenario.pool.cache_capacity,
                    config=config,
                    metrics=registry,
                ),
                config=config,
                backend=scenario.backend,
                max_streams=scenario.pool.max_streams,
                open_timeout=scenario.pool.open_timeout,
                fused=scenario.pool.fused,
                metrics=registry,
            )
            server = GatewayServer(pool, metrics=registry, log=log)
            await server.start()
            target_host, target_port = server.host, server.port
        elif target_port is None:
            raise ValueError("an external gateway needs both host and port")
        epoch = perf_counter()
        try:
            records, errors = await _drive(
                scenario, target_host, target_port, epoch
            )
        finally:
            gateway_stats: Dict[str, Any] = {}
            stragglers = 0
            if server is not None:
                gateway_stats = server.stats()
                stragglers = await server.stop()
        return records, errors, gateway_stats, stragglers

    started = perf_counter()
    records, errors, gateway_stats, stragglers = asyncio.run(main())
    elapsed = perf_counter() - started
    records.sort(key=lambda r: r.index)

    # -- audits ---------------------------------------------------------
    oracle_failures = [
        f"request {r.index} ({r.tenant}): end_state {r.end_state} / "
        f"accepts {r.accepts} does not match dfa.run oracle"
        for r in records
        if r.ok and r.oracle_ok is False
    ]
    if len(records) != scenario.total_requests:
        errors = errors + [
            f"lost records: {len(records)} of {scenario.total_requests}"
        ]

    measured = [r for r in records if r.phase == "measure"]
    completed = [r for r in measured if r.ok]
    failed = [r for r in measured if not r.ok]
    open_latencies = [r.open_ms for r in completed]
    feed_latencies = [ms for r in completed for ms in r.feed_ms]
    reject_attempts = sum(r.rejects for r in records)
    open_attempts = reject_attempts + sum(1 for r in records if r.stream is not None)
    window = (
        max(r.t_end_s for r in measured) - min(r.t_start_s for r in measured)
        if measured
        else 0.0
    )
    symbols = sum(r.symbols for r in completed)

    report = ScenarioReport(
        scenario_id=scenario.id,
        backend=resolve_backend_name(scenario.backend),
        seed=scenario.seed,
        requests=scenario.requests,
        total_requests=scenario.total_requests,
        completed=len(completed),
        failed=len(failed),
        reject_attempts=reject_attempts,
        reject_rate=(
            reject_attempts / open_attempts if open_attempts else 0.0
        ),
        oracle_failures=oracle_failures,
        errors=errors,
        p50_open_ms=_percentile(open_latencies, 50),
        p99_open_ms=_percentile(open_latencies, 99),
        p50_feed_ms=_percentile(feed_latencies, 50),
        p99_feed_ms=_percentile(feed_latencies, 99),
        throughput_req_per_s=(len(completed) / window if window > 0 else 0.0),
        throughput_sym_per_s=(symbols / window if window > 0 else 0.0),
        elapsed_s=elapsed,
        measure_elapsed_s=window,
        drain_stragglers=stragglers,
        require_all_completed=scenario.require_all_completed,
        gateway_stats=gateway_stats,
        out_path=out_path,
    )

    # -- gates ----------------------------------------------------------
    gates = scenario.gates
    checks = (
        ("p99_open_ms", gates.p99_open_ms, report.p99_open_ms, "<="),
        ("p99_feed_ms", gates.p99_feed_ms, report.p99_feed_ms, "<="),
        (
            "min_throughput_sym_per_s",
            gates.min_throughput_sym_per_s,
            report.throughput_sym_per_s,
            ">=",
        ),
        (
            "min_throughput_req_per_s",
            gates.min_throughput_req_per_s,
            report.throughput_req_per_s,
            ">=",
        ),
        ("max_reject_rate", gates.max_reject_rate, report.reject_rate, "<="),
    )
    for name, bound, actual, op in checks:
        if bound is None:
            continue
        passed = actual <= bound if op == "<=" else actual >= bound
        if not passed:
            report.gate_failures.append(
                f"{name}: {actual:.3f} violates {op} {bound:.3f}"
            )

    # -- JSONL export ---------------------------------------------------
    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for record in records:
                handle.write(
                    json.dumps(record.to_json(scenario.id)) + "\n"
                )

    if log is not None:
        log(report.summary())
    return report


__all__ = [
    "RequestRecord",
    "ScenarioReport",
    "build_schedule",
    "run_scenario",
]
