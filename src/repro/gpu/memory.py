"""Transition-table placement and the memory-hierarchy cost model.

Two layouts from the paper are modeled:

* :attr:`TableLayout.HASH` — the PM approach: the hot rows live in shared
  memory behind a hash table, so *every* transition pays one extra shared
  access plus a hash computation just to decide where to look.
* :attr:`TableLayout.RANK` — the paper's frequency-based transformation:
  state ids are hotness ranks, so the hotness test is ``state < H`` (a
  register compare) and hot lookups go straight to shared memory.
* :attr:`TableLayout.GLOBAL_ONLY` — no caching at all; every lookup pays the
  global-memory latency (the pathological baseline the paper motivates
  against).

The :class:`MemoryModel` answers, for a batch of current states, which
lookups are hot and what per-step overhead the layout imposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.errors import SimulationError


class TableLayout(enum.Enum):
    """How the hot part of the transition table is found at runtime."""

    RANK = "rank"  # frequency-transformed: hotness == state id < H
    HASH = "hash"  # PM-style: hash table in shared memory guards the cache
    GLOBAL_ONLY = "global"  # nothing cached


@dataclass(frozen=True)
class MemoryModel:
    """Cost model for transition-table lookups under a given layout.

    Parameters
    ----------
    device:
        The simulated GPU.
    hot_state_count:
        Number of (hottest-ranked) states whose rows are resident in shared
        memory.  With :attr:`TableLayout.RANK` the hot states are exactly the
        ids ``< hot_state_count``; with :attr:`TableLayout.HASH` the same hot
        *set* is assumed (both layouts cache by frequency; they differ in the
        runtime check, not the selection).
    layout:
        The runtime hotness-check strategy.
    hot_state_ids:
        Only for :attr:`TableLayout.HASH` on *untransformed* DFAs: the actual
        set of cached state ids.  When omitted, ids ``< hot_state_count`` are
        assumed (i.e. the table was already rank-ordered).
    """

    device: DeviceSpec
    hot_state_count: int
    layout: TableLayout = TableLayout.RANK
    hot_state_ids: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.hot_state_count < 0:
            raise SimulationError("hot_state_count must be non-negative")

    @classmethod
    def for_dfa(
        cls,
        device: DeviceSpec,
        n_states: int,
        n_symbols: int,
        layout: TableLayout = TableLayout.RANK,
        hot_state_ids: Optional[frozenset] = None,
    ) -> "MemoryModel":
        """Build a model sizing the hot region to the device's shared memory."""
        if n_symbols <= 0:
            raise SimulationError("alphabet must be non-empty")
        hot = min(n_states, device.shared_table_entries // n_symbols)
        return cls(
            device=device,
            hot_state_count=hot,
            layout=layout,
            hot_state_ids=hot_state_ids,
        )

    # ------------------------------------------------------------------
    def hot_mask(self, states: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``states``' next lookups hit shared memory."""
        states = np.asarray(states)
        if self.layout is TableLayout.GLOBAL_ONLY or self.hot_state_count == 0:
            return np.zeros(states.shape, dtype=bool)
        if self.layout is TableLayout.HASH and self.hot_state_ids is not None:
            if len(self.hot_state_ids) == 0:
                return np.zeros(states.shape, dtype=bool)
            ids = np.fromiter(self.hot_state_ids, dtype=np.int64)
            return np.isin(states, ids)
        return states < self.hot_state_count

    @property
    def per_step_overhead_cycles(self) -> float:
        """Layout overhead added to *every* transition regardless of hotness.

        HASH pays a shared-memory probe plus the hash computation (the cost
        the Fig. 4 transformation removes); RANK pays a register compare,
        which we fold into the transition-compute constant (0 extra).
        """
        if self.layout is TableLayout.HASH:
            return float(self.device.shared_cycles + self.device.hash_compute_cycles)
        return 0.0

    def lookup_cycles(self, hot: np.ndarray) -> np.ndarray:
        """Per-lane lookup latency for a hotness mask."""
        return np.where(
            np.asarray(hot, dtype=bool),
            float(self.device.shared_cycles),
            float(self.device.global_cycles),
        )

    def shared_bytes_used(self, n_symbols: int, entry_bytes: int = 4) -> int:
        """Shared-memory footprint of the cached rows."""
        return self.hot_state_count * n_symbols * entry_bytes

    # ------------------------------------------------------------------
    def observe(self, registry, *, shared_hits: int, global_hits: int) -> None:
        """Record one batch's table-lookup traffic into a metrics registry.

        Counter names (``memory.*``) are part of the observability
        contract — see ``docs/observability.md``.
        """
        registry.counter("memory.shared_accesses").inc(shared_hits)
        registry.counter("memory.global_accesses").inc(global_hits)
        registry.gauge("memory.hot_state_count").set(self.hot_state_count)
        registry.gauge("memory.layout_overhead_cycles").set(
            self.per_step_overhead_cycles
        )
        total = shared_hits + global_hits
        if total:
            registry.gauge("memory.hot_access_fraction").set(shared_hits / total)
