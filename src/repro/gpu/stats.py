"""Kernel-level accounting: the cycle ledger every scheme reports through.

:class:`KernelStats` is both the counter set the executor charges into and
the result object benchmarks read.  It deliberately exposes exactly the
quantities the paper reports: kernel time (simulated cycles / ms), transition
counts (total and redundant), memory-access breakdown, verification and
communication operation counts, recovery rounds, and the average number of
threads active during recovery (Table III's last columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.gpu.device import DeviceSpec
from repro.errors import SimulationError


@dataclass
class KernelStats:
    """Mutable cycle/operation ledger for one scheme execution.

    Attributes
    ----------
    cycles:
        Total simulated kernel cycles (the primary metric).
    phase_cycles:
        Per-phase breakdown, keyed by phase name (``"predict"``,
        ``"speculative_execution"``, ``"verify_recover"`` …).
    transitions:
        Total state transitions executed (useful work + redundant).
    redundant_transitions:
        Transitions that did not end up on the ground-truth path (spec-k
        extra paths, discarded recoveries…).
    shared_accesses / global_accesses:
        Transition-table lookups served by shared vs. global memory.
    comm_ops / verify_ops / sync_ops:
        Inter-thread end-state forwards, record checks, barriers.
    recovery_rounds:
        Number of frontier-advance (or sequential-recovery) rounds executed.
    active_thread_samples:
        One entry per recovery round: number of threads that executed a
        recovery task that round.  ``avg_active_threads`` averages it.
    """

    device: DeviceSpec
    n_threads: int = 0
    cycles: float = 0.0
    phase_cycles: Dict[str, float] = field(default_factory=dict)
    transitions: int = 0
    redundant_transitions: int = 0
    shared_accesses: int = 0
    global_accesses: int = 0
    comm_ops: int = 0
    verify_ops: int = 0
    sync_ops: int = 0
    recovery_rounds: int = 0
    recoveries_executed: int = 0
    #: cycles spent purely on recovery chunk re-execution (no comm/verify)
    recovery_exec_cycles: float = 0.0
    active_thread_samples: List[int] = field(default_factory=list)
    mismatches: int = 0
    matches: int = 0

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge(self, phase: str, cycles: float) -> None:
        """Add ``cycles`` to the total and to ``phase``'s bucket."""
        if cycles < 0:
            raise SimulationError(f"negative cycle charge: {cycles}")
        self.cycles += cycles
        self.phase_cycles[phase] = self.phase_cycles.get(phase, 0.0) + cycles

    def charge_sync(self, phase: str, count: int = 1) -> None:
        """Charge ``count`` barrier synchronizations."""
        self.sync_ops += count
        self.charge(phase, count * self.device.sync_cycles)

    def charge_comm(self, phase: str, count: int) -> None:
        """Charge ``count`` inter-thread end-state forwards (they overlap
        across threads, so time is one comm latency; volume is counted)."""
        self.comm_ops += count
        if count > 0:
            self.charge(phase, self.device.comm_cycles)

    def charge_verify(self, phase: str, checks_per_thread: int, total_checks: int) -> None:
        """Charge record verification: lockstep threads each run
        ``checks_per_thread`` compares; ``total_checks`` is the op count."""
        self.verify_ops += total_checks
        if checks_per_thread > 0:
            self.charge(phase, checks_per_thread * self.device.verify_cycles)

    def record_recovery_round(self, active_threads: int) -> None:
        """Record one verification/recovery round and its thread activity."""
        self.recovery_rounds += 1
        self.active_thread_samples.append(int(active_threads))

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def time_ms(self) -> float:
        """Simulated kernel time in milliseconds."""
        return self.device.cycles_to_ms(self.cycles)

    @property
    def recovery_cycles_per_round(self) -> float:
        """Recovery execution time per frontier round — the latency one
        recovered chunk adds to the critical path (Fig. 9's quantity)."""
        if self.recovery_rounds == 0:
            return 0.0
        return self.recovery_exec_cycles / self.recovery_rounds

    @property
    def avg_active_threads(self) -> float:
        """Average #threads active per recovery round (Table III)."""
        if not self.active_thread_samples:
            return 0.0
        return sum(self.active_thread_samples) / len(self.active_thread_samples)

    @property
    def total_memory_accesses(self) -> int:
        return self.shared_accesses + self.global_accesses

    @property
    def hot_access_fraction(self) -> float:
        """Fraction of table lookups served from shared memory."""
        total = self.total_memory_accesses
        return self.shared_accesses / total if total else 0.0

    @property
    def runtime_speculation_accuracy(self) -> float:
        """Match frequency observed during verification (Table III)."""
        total = self.matches + self.mismatches
        return self.matches / total if total else 1.0

    @property
    def redundancy_ratio(self) -> float:
        """Redundant transitions / total transitions."""
        return self.redundant_transitions / self.transitions if self.transitions else 0.0

    def merge_phase_breakdown(self) -> Dict[str, float]:
        """Copy of the per-phase cycle breakdown."""
        return dict(self.phase_cycles)

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics (handy for tables/benchmarks)."""
        return {
            "cycles": self.cycles,
            "time_ms": self.time_ms,
            "transitions": float(self.transitions),
            "redundant_transitions": float(self.redundant_transitions),
            "shared_accesses": float(self.shared_accesses),
            "global_accesses": float(self.global_accesses),
            "recovery_rounds": float(self.recovery_rounds),
            "avg_active_threads": self.avg_active_threads,
            "speculation_accuracy": self.runtime_speculation_accuracy,
        }
