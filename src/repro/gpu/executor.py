"""The vectorized lockstep executor.

This is the simulated GPU's compute engine: it advances *all* simulated
threads through their chunks one symbol position at a time, exactly like a
warp executes ``state = table[state][symbol]`` in lockstep.  Per step it
charges each warp the latency of its slowest lane (memory divergence) and
counts shared/global accesses, so a single call yields both the functional
result (end states) and the cost-model result (cycles into a
:class:`~repro.gpu.stats.KernelStats`).

Design notes (per the HPC guides): the python loop runs over chunk positions
only — every thread-level operation is a vectorized numpy gather/compare —
and all arrays are C-contiguous with threads padded to a warp multiple once,
up front, to keep the inner loop allocation-free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.automata.dfa import STATE_DTYPE
from repro.engine.base import validate_batch_inputs
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import MemoryModel
from repro.gpu.stats import KernelStats
from repro.errors import SimulationError


def distinct_chunks_per_warp(
    lane_chunk: np.ndarray, n_warps: int, warp_size: int
) -> np.ndarray:
    """Count distinct non-negative chunk ids within each warp's lanes.

    One row-wise sort of the ``(n_warps, warp_size)`` lane matrix followed
    by a segmented adjacent-difference count, instead of a python loop
    running ``np.unique`` per warp — the input-fetch coalescing setup this
    feeds runs once per batch and the loop dominated it on wide launches.
    """
    lanes = np.asarray(lane_chunk, dtype=np.int64).reshape(n_warps, warp_size)
    ordered = np.sort(lanes, axis=1)  # invalid (-1) lanes sort to the front
    valid = ordered >= 0
    # A lane starts a new run when it is valid and differs from its left
    # neighbour; -1 neighbours differ from any valid id by construction.
    new_run = np.empty_like(valid)
    new_run[:, 0] = valid[:, 0]
    new_run[:, 1:] = valid[:, 1:] & (ordered[:, 1:] != ordered[:, :-1])
    return new_run.sum(axis=1, dtype=np.int64)


class LockstepExecutor:
    """Executes chunk batches on the simulated device with cycle accounting.

    Parameters
    ----------
    table:
        ``(n_states, n_symbols)`` dense transition table (already transformed
        if the RANK layout is used).
    memory:
        The :class:`MemoryModel` describing hot-row placement.
    device:
        The simulated GPU.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when
        attached, each batch records executor counters (batches,
        transitions, warp-step divergence) and the memory model records its
        access traffic.  ``None`` (the default) skips all recording.
    """

    def __init__(
        self,
        table: np.ndarray,
        memory: MemoryModel,
        device: DeviceSpec,
        metrics=None,
    ):
        self.table = np.ascontiguousarray(np.asarray(table, dtype=STATE_DTYPE))
        if self.table.ndim != 2:
            raise SimulationError("transition table must be 2-D")
        self.memory = memory
        self.device = device
        self.metrics = metrics

    # ------------------------------------------------------------------
    def run(
        self,
        chunks: np.ndarray,
        starts: np.ndarray,
        *,
        stats: Optional[KernelStats] = None,
        phase: str = "execution",
        lengths: Optional[np.ndarray] = None,
        active: Optional[np.ndarray] = None,
        count_redundant: Optional[np.ndarray] = None,
        chunk_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run one lockstep batch and charge its cost.

        Parameters
        ----------
        chunks:
            ``(n_threads, chunk_len)`` symbol matrix.
        starts:
            ``(n_threads,)`` start states.
        stats:
            Ledger to charge; pass ``None`` for a pure functional run.
        phase:
            Ledger bucket name.
        lengths:
            Optional per-thread effective lengths (ragged tail chunk).
        active:
            Optional boolean mask; inactive lanes do no work, keep their
            start state, and cost nothing — but they do *not* shorten their
            warp (idle lanes are the utilization loss the paper targets).
        count_redundant:
            Optional boolean mask; transitions executed by these lanes are
            additionally counted as redundant work.
        chunk_ids:
            Optional per-lane chunk assignment used for the input-fetch
            coalescing model: lanes of one warp reading the *same* chunk
            share one stream fetch per step, so a warp pays
            ``input_fetch_cycles × (#distinct chunks among its active
            lanes)``.  Defaults to every lane reading its own chunk.

        Returns
        -------
        ``(n_threads,)`` end states (inactive lanes return their start).
        """
        chunks = np.ascontiguousarray(chunks)
        if chunks.ndim != 2:
            raise SimulationError(f"chunks must be 2-D, got shape {chunks.shape}")
        n_threads, chunk_len = chunks.shape
        states = np.asarray(starts, dtype=STATE_DTYPE).copy()
        if states.shape != (n_threads,):
            raise SimulationError("starts must match the number of threads")

        if active is None:
            active_mask = np.ones(n_threads, dtype=bool)
        else:
            active_mask = np.asarray(active, dtype=bool).copy()
        if lengths is None:
            lens = np.full(n_threads, chunk_len, dtype=np.int64)
        else:
            lens = np.asarray(lengths, dtype=np.int64)
            if lens.shape != (n_threads,):
                raise SimulationError("lengths must match the number of threads")
            if (lens < 0).any() or (lens > chunk_len).any():
                raise SimulationError("lengths out of range")

        n_states, n_symbols = self.table.shape
        validate_batch_inputs(
            chunks,
            states,
            n_states=n_states,
            n_symbols=n_symbols,
            lengths=None if lengths is None else lens,
            active=active_mask,
            backend="sim",
        )

        if chunk_len == 0 or not active_mask.any():
            if self.metrics is not None:
                self.metrics.counter("executor.batches").inc()
                self.metrics.counter("executor.empty_batches").inc()
            return states

        device = self.device
        ws = device.warp_size
        n_warps = -(-n_threads // ws)

        per_warp_cycles = np.zeros(n_warps, dtype=np.float64)

        # Input-fetch coalescing: constant per step for a fixed assignment.
        lane_chunk = np.full(n_warps * ws, -1, dtype=np.int64)
        if chunk_ids is None:
            lane_chunk[:n_threads][active_mask] = np.flatnonzero(active_mask)
        else:
            cid = np.asarray(chunk_ids, dtype=np.int64)
            if cid.shape != (n_threads,):
                raise SimulationError("chunk_ids must match the number of threads")
            lane_chunk[:n_threads][active_mask] = cid[active_mask]
        distinct = distinct_chunks_per_warp(lane_chunk, n_warps, ws)
        per_warp_fetch = np.where(
            distinct > 0,
            device.input_fetch_cycles
            + np.maximum(distinct - 1, 0) * device.input_issue_cycles,
            0.0,
        )
        shared_hits = 0
        global_hits = 0
        total_transitions = 0
        redundant = 0
        overhead = self.memory.per_step_overhead_cycles
        compute = device.transition_compute_cycles
        table = self.table

        # Pre-pad the working-lane mask once; padding lanes cost nothing.
        lane_working = np.zeros(n_warps * ws, dtype=bool)

        lane_cold = np.zeros(n_warps * ws, dtype=bool)
        g0 = float(device.global_cycles)
        gi = float(device.global_issue_cycles)
        sh = float(device.shared_cycles)

        track_metrics = self.metrics is not None
        divergent_warp_steps = 0
        warp_steps = 0

        for j in range(chunk_len):
            working = active_mask & (j < lens)
            n_working = int(np.count_nonzero(working))
            if n_working == 0:
                break  # all remaining positions are beyond every lane's length
            hot = self.memory.hot_mask(states) & working
            cold = working & ~hot
            n_hot = int(np.count_nonzero(hot))
            n_cold = n_working - n_hot
            shared_hits += n_hot
            global_hits += n_cold
            total_transitions += n_working
            if count_redundant is not None:
                redundant += int(np.count_nonzero(working & count_redundant))

            # Warp memory cost: divergent global loads serialize into
            # transactions — the first pays the full latency, each extra
            # cold lane adds an issue slot; an all-hot warp pays the shared
            # latency only.
            lane_working[:n_threads] = working
            lane_cold[:n_threads] = cold
            warp_active = lane_working.reshape(n_warps, ws).any(axis=1)
            warp_cold = lane_cold.reshape(n_warps, ws).sum(axis=1)
            mem_cost = np.where(
                warp_cold > 0,
                g0 + np.maximum(0, warp_cold - 1) * gi,
                np.where(warp_active, sh, 0.0),
            )
            per_warp_cycles += mem_cost
            per_warp_cycles += np.where(
                warp_active, compute + overhead + per_warp_fetch, 0.0
            )
            if track_metrics:
                # Memory divergence: a warp step mixing hot and cold lanes
                # serializes transactions — the effect the paper's
                # transformation shrinks, surfaced here as a counter.
                warp_hot_any = (
                    (lane_working & ~lane_cold).reshape(n_warps, ws).any(axis=1)
                )
                divergent_warp_steps += int(
                    np.count_nonzero((warp_cold > 0) & warp_hot_any)
                )
                warp_steps += int(np.count_nonzero(warp_active))

            # Advance states of working lanes only.  Padded tails and
            # inactive lanes may hold arbitrary symbol values, so the
            # gather must not touch them.
            col = np.where(working, chunks[:, j], 0)
            nxt = table[states, col]
            states = np.where(working, nxt, states).astype(STATE_DTYPE, copy=False)

        if stats is not None:
            factor = device.concurrency_factor(n_warps)
            if factor == 1.0:
                phase_cycles = float(per_warp_cycles.max())
            else:
                phase_cycles = float(per_warp_cycles.sum() / device.max_concurrent_warps)
            stats.charge(phase, phase_cycles)
            stats.transitions += total_transitions
            stats.redundant_transitions += redundant
            stats.shared_accesses += shared_hits
            stats.global_accesses += global_hits
        if track_metrics:
            m = self.metrics
            m.counter("executor.batches").inc()
            m.counter("executor.transitions").inc(total_transitions)
            m.counter("executor.redundant_transitions").inc(redundant)
            m.counter("executor.warp_steps").inc(warp_steps)
            m.counter("executor.divergent_warp_steps").inc(divergent_warp_steps)
            m.histogram("executor.active_lanes").observe(
                int(np.count_nonzero(active_mask))
            )
            self.memory.observe(
                m, shared_hits=shared_hits, global_hits=global_hits
            )
        return states

    # ------------------------------------------------------------------
    def run_gathered(
        self,
        input_chunks: np.ndarray,
        chunk_ids: np.ndarray,
        starts: np.ndarray,
        **kwargs,
    ) -> np.ndarray:
        """Run with an explicit thread→chunk assignment.

        ``chunk_ids[t]`` selects which row of ``input_chunks`` thread ``t``
        processes — this is the broken one-to-one binding that aggressive
        speculative recovery (RR/NF) introduces.
        """
        chunk_ids = np.asarray(chunk_ids, dtype=np.int64)
        gathered = input_chunks[chunk_ids]
        kwargs.setdefault("chunk_ids", chunk_ids)
        return self.run(gathered, starts, **kwargs)
