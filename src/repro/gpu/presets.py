"""Device presets beyond the paper's RTX 3090.

The cost model is parametric in the device, so the evaluation can ask how
the scheme ranking shifts across GPU generations — useful both as a
robustness check (the paper's conclusions shouldn't hinge on one part) and
for sizing the shared-memory-resident hot table on smaller chips.

Geometry below follows the public spec sheets; latency constants inherit
the model defaults (their ratios, not absolutes, drive the results).
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec

#: The paper's testbed (re-exported for discoverability).
from repro.gpu.device import RTX3090  # noqa: F401

#: Turing-generation consumer part: fewer SMs, 64 KB shared memory.
RTX2080TI = DeviceSpec(
    name="rtx2080ti",
    n_sms=68,
    cores_per_sm=64,
    warp_size=32,
    shared_memory_bytes_per_sm=64 * 1024,
    global_memory_bytes=11 * 1024**3,
    clock_ghz=1.545,
)

#: Volta datacenter part.
V100 = DeviceSpec(
    name="v100",
    n_sms=80,
    cores_per_sm=64,
    warp_size=32,
    shared_memory_bytes_per_sm=96 * 1024,
    global_memory_bytes=32 * 1024**3,
    clock_ghz=1.38,
)

#: Ampere datacenter part: big shared memory (164 KB usable).
A100 = DeviceSpec(
    name="a100",
    n_sms=108,
    cores_per_sm=64,
    warp_size=32,
    shared_memory_bytes_per_sm=164 * 1024,
    global_memory_bytes=40 * 1024**3,
    clock_ghz=1.41,
    global_cycles=330,  # HBM2e: lower DRAM latency in cycles
)

#: A deliberately tiny part for stress-testing occupancy behaviour.
EMBEDDED = DeviceSpec(
    name="embedded",
    n_sms=8,
    cores_per_sm=64,
    warp_size=32,
    shared_memory_bytes_per_sm=48 * 1024,
    global_memory_bytes=4 * 1024**3,
    max_resident_warps_per_sm=24,
    clock_ghz=0.9,
)

DEVICE_PRESETS = {
    d.name: d for d in (RTX3090, RTX2080TI, V100, A100, EMBEDDED)
}
