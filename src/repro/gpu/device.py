"""GPU device models.

A :class:`DeviceSpec` captures the architectural parameters the cost model
needs.  The shipped :data:`RTX3090` instance mirrors the paper's testbed
(Ampere GA102: 82 SMs × 128 CUDA cores, 100 KB shared memory per SM, 24 GB
global memory).  Latency constants are in *cycles* and follow published
microbenchmark numbers for Ampere-class parts; what matters for reproducing
the paper's shapes is their ratio (global ≫ shared ≫ register), not their
absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU.

    All ``*_cycles`` fields are per-operation latencies charged by the cost
    model.  ``max_resident_warps_per_sm`` bounds how many warps can overlap;
    with the small thread counts used for single-stream latency work
    (N ≤ a few thousand) kernels almost always fit concurrently.
    """

    name: str = "generic-gpu"
    n_sms: int = 82
    cores_per_sm: int = 128
    warp_size: int = 32
    shared_memory_bytes_per_sm: int = 100 * 1024
    registers_per_thread: int = 255
    global_memory_bytes: int = 24 * 1024**3
    max_resident_warps_per_sm: int = 48
    clock_ghz: float = 1.395

    # --- cost model (cycles) ---
    register_cycles: int = 1
    shared_cycles: int = 29
    global_cycles: int = 380
    # additional issue cost per extra divergent global access within one
    # warp: loads overlap (memory-level parallelism), so only a small
    # per-transaction slot is serialized on top of the first load's latency
    global_issue_cycles: int = 4
    # arithmetic for index computation per transition (state*k+sym etc.)
    transition_compute_cycles: int = 4
    # hash-table lookup used by PM's hot-table check (hash + probe)
    hash_compute_cycles: int = 10
    # inter-thread end-state forwarding across warps (shared staging)
    comm_cycles: int = 35
    # intra-warp lane exchange (register shuffle) — much cheaper, used by
    # PM's first (intra-warp) verification stage
    shuffle_cycles: int = 8
    # amortized per-step cost of streaming one input chunk through a warp
    # (cache-line loads spread over line_bytes positions), plus the extra
    # issue cost per additional distinct chunk among the warp's lanes —
    # lanes reading the same chunk coalesce to one stream (NF's locality
    # win); distinct streams overlap via MLP so the increment is small
    input_fetch_cycles: int = 3
    input_issue_cycles: float = 0.25
    # per-record runtime verification check (compare + branch)
    verify_cycles: int = 3
    # barrier / __syncthreads
    sync_cycles: int = 40
    # kernel launch overhead charged once per kernel
    launch_overhead_cycles: int = 2000

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.n_sms <= 0:
            raise SimulationError("device must have positive warp size and SM count")
        if not (self.register_cycles <= self.shared_cycles <= self.global_cycles):
            raise SimulationError(
                "latency ordering must be register <= shared <= global"
            )

    @property
    def max_concurrent_warps(self) -> int:
        """Warps the whole device can keep resident simultaneously."""
        return self.n_sms * self.max_resident_warps_per_sm

    @property
    def shared_table_entries(self) -> int:
        """Transition-table entries (int32) that fit in one SM's shared memory.

        The paper reserves part of shared memory for the hot transition table;
        we keep a small slice back for the verification-record staging area
        (Fig. 5 ②); the framework reserves 8 KB for it.
        """
        reserved = 8 * 1024
        return max(0, (self.shared_memory_bytes_per_sm - reserved)) // 4

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert simulated cycles into milliseconds of kernel time."""
        return cycles / (self.clock_ghz * 1e6)

    def warps_for_threads(self, n_threads: int) -> int:
        """Number of warps needed for ``n_threads`` threads."""
        if n_threads <= 0:
            raise SimulationError(f"thread count must be positive, got {n_threads}")
        return -(-n_threads // self.warp_size)

    def concurrency_factor(self, n_warps: int) -> float:
        """Serialization multiplier when warps exceed device residency.

        1.0 when everything fits; proportional otherwise.  Latency-sensitive
        FSM kernels use few warps, so this is almost always 1.0.
        """
        if n_warps <= self.max_concurrent_warps:
            return 1.0
        return n_warps / float(self.max_concurrent_warps)


#: The paper's testbed: Nvidia GeForce RTX 3090 (Ampere).
RTX3090 = DeviceSpec(
    name="rtx3090",
    n_sms=82,
    cores_per_sm=128,
    warp_size=32,
    shared_memory_bytes_per_sm=100 * 1024,
    global_memory_bytes=24 * 1024**3,
    clock_ghz=1.395,
)
