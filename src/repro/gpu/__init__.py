"""Simulated SIMT GPU substrate.

The paper evaluates on an Nvidia GeForce RTX 3090.  No GPU is available in
this environment, so this subpackage provides a faithful *model* of the
quantities the paper's results depend on:

* device geometry (SMs, warp width, shared-memory capacity) — :mod:`device`;
* the memory hierarchy cost model (register / shared / global latencies,
  hot-table placement, PM's hash-table layout vs. the paper's rank layout) —
  :mod:`memory`;
* warp-lockstep timing with memory-divergence serialization — :mod:`warp`;
* a vectorized lockstep executor that runs the actual DFA transitions for
  all simulated threads at once while charging cycles — :mod:`executor`;
* kernel-level accounting (cycle ledger, utilization, active threads) —
  :mod:`stats` and :mod:`kernel`.

Simulated *cycles* are the primary metric; they play the role of the paper's
CUDA-event kernel time.
"""

from repro.gpu.device import RTX3090, DeviceSpec
from repro.gpu.executor import LockstepExecutor
from repro.gpu.kernel import GpuSimulator, KernelPhase
from repro.gpu.memory import MemoryModel, TableLayout
from repro.gpu.presets import A100, DEVICE_PRESETS, EMBEDDED, RTX2080TI, V100
from repro.gpu.stats import KernelStats
from repro.gpu.warp import warp_step_cycles, warp_time

__all__ = [
    "A100",
    "DEVICE_PRESETS",
    "DeviceSpec",
    "EMBEDDED",
    "RTX2080TI",
    "V100",
    "GpuSimulator",
    "KernelPhase",
    "KernelStats",
    "LockstepExecutor",
    "MemoryModel",
    "RTX3090",
    "TableLayout",
    "warp_step_cycles",
    "warp_time",
]
