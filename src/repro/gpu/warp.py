"""Warp-lockstep timing primitives.

On a SIMT machine a warp's 32 lanes execute each instruction together; the
warp advances at the pace of its slowest lane.  Two consequences the cost
model must capture:

* **memory divergence** — if any lane's table lookup misses shared memory,
  the whole warp stalls for the global-memory latency of that lane;
* **idle lanes don't help** — a lane with no work (an idle thread during
  recovery) doesn't shorten the warp's step; poor thread utilization wastes
  exactly the cycles the paper says it does.

The helpers here reduce per-lane cycle vectors to warp times and kernel-phase
times.  They are pure functions over numpy arrays so schemes can stay fully
vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.errors import SimulationError


def _pad_to_warps(values: np.ndarray, warp_size: int, fill: float = 0.0) -> np.ndarray:
    """Pad a per-lane vector to a multiple of the warp size and reshape to
    ``(n_warps, warp_size)``."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise SimulationError(f"expected 1-D per-lane values, got shape {values.shape}")
    n = values.size
    n_warps = -(-n // warp_size) if n else 0
    if n_warps == 0:
        return values.reshape(0, warp_size)
    padded = np.full(n_warps * warp_size, fill, dtype=np.float64)
    padded[:n] = values
    return padded.reshape(n_warps, warp_size)


def warp_step_cycles(lane_cycles: np.ndarray, device: DeviceSpec) -> np.ndarray:
    """Per-warp cost of one lockstep step given per-lane costs.

    The warp time for a step is the max over its lanes (memory divergence
    serializes on the slowest access).
    """
    warps = _pad_to_warps(lane_cycles, device.warp_size)
    if warps.size == 0:
        return np.zeros(0, dtype=np.float64)
    return warps.max(axis=1)


def warp_time(per_lane_total_cycles: np.ndarray, device: DeviceSpec) -> float:
    """Kernel-phase time for per-lane *total* cycle counts.

    Each warp takes the max over its lanes; warps run concurrently (subject
    to residency limits), so the phase takes the max over warps, scaled by
    the concurrency factor when the device is oversubscribed.
    """
    warps = _pad_to_warps(per_lane_total_cycles, device.warp_size)
    if warps.size == 0:
        return 0.0
    per_warp = warps.max(axis=1)
    factor = device.concurrency_factor(per_warp.size)
    if factor == 1.0:
        return float(per_warp.max())
    # Oversubscribed: total work is spread over the resident warp slots.
    return float(per_warp.sum() / device.max_concurrent_warps)


def lockstep_phase_time(
    hot_mask_per_step: np.ndarray,
    device: DeviceSpec,
    extra_cycles_per_step: float = 0.0,
) -> float:
    """Phase time for a transition loop given a per-step hot/cold mask.

    Parameters
    ----------
    hot_mask_per_step:
        ``(n_steps, n_threads)`` boolean array; ``True`` where the lookup hit
        shared memory.  Rows are lockstep steps.
    extra_cycles_per_step:
        Additional per-step per-lane compute (index arithmetic, hash cost…).

    Returns
    -------
    Total cycles for the phase: per step, a warp with cold lanes pays one
    global latency plus an issue slot per extra cold lane (divergent loads
    serialize into transactions); an all-hot warp pays the shared latency.
    Steps are serialized (loop-carried dependence).
    """
    mask = np.asarray(hot_mask_per_step, dtype=bool)
    if mask.ndim != 2:
        raise SimulationError(f"hot mask must be (n_steps, n_threads), got {mask.shape}")
    n_steps, n_threads = mask.shape
    if n_steps == 0 or n_threads == 0:
        return 0.0
    ws = device.warp_size
    n_warps = -(-n_threads // ws)
    pad = n_warps * ws - n_threads
    if pad:
        # Padding lanes are "hot" so they never slow a warp down.
        mask = np.concatenate([mask, np.ones((n_steps, pad), dtype=bool)], axis=1)
    # (n_steps, n_warps): how many lanes in the warp miss shared memory?
    cold = (~mask).reshape(n_steps, n_warps, ws).sum(axis=2)
    per_warp_step = np.where(
        cold > 0,
        device.global_cycles + np.maximum(0, cold - 1) * device.global_issue_cycles,
        float(device.shared_cycles),
    )
    per_warp_total = per_warp_step.sum(axis=0, dtype=np.float64)
    per_warp_total += n_steps * (device.transition_compute_cycles + extra_cycles_per_step)
    factor = device.concurrency_factor(n_warps)
    if factor == 1.0:
        return float(per_warp_total.max())
    return float(per_warp_total.sum() / device.max_concurrent_warps)
