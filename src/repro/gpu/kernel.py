"""Kernel-launch facade: ties a DFA to the device, memory model and executor.

Schemes talk to :class:`GpuSimulator` instead of wiring the pieces manually:
it decides the hot-table placement (optionally applying the frequency-based
transformation), builds the lockstep executor, and opens fresh
:class:`~repro.gpu.stats.KernelStats` ledgers with the launch overhead
pre-charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.properties import StateFrequencyProfile, profile_state_frequencies
from repro.automata.transform import TransformedDFA, frequency_transform
from repro.engine import ExecutionBackend, create_backend
from repro.gpu.device import RTX3090, DeviceSpec
from repro.gpu.executor import LockstepExecutor
from repro.gpu.memory import MemoryModel, TableLayout
from repro.gpu.stats import KernelStats
from repro.errors import SimulationError


class KernelPhase:
    """Canonical phase names used in ledgers across all schemes."""

    PREDICT = "predict"
    SPECULATIVE_EXECUTION = "speculative_execution"
    VERIFY_RECOVER = "verify_recover"
    MERGE = "merge"
    LAUNCH = "launch"
    #: SFA's speculation-free chunk mapping construction (state→state
    #: transition functions instead of one guessed path per chunk).
    MAPPING = "mapping"


@dataclass
class GpuSimulator:
    """A DFA loaded onto the simulated device, ready to launch kernels.

    Parameters
    ----------
    dfa:
        The automaton to execute.  When ``use_transformation`` is on, the
        frequency-based transformation (Fig. 4) is applied using
        ``profile`` / ``training_input``; otherwise PM's hash-table layout
        guards the hot rows.
    device:
        Simulated GPU (defaults to the paper's RTX 3090).
    """

    dfa: DFA
    device: DeviceSpec = RTX3090
    use_transformation: bool = True
    profile: Optional[StateFrequencyProfile] = None
    training_input: Optional[bytes] = None
    #: precomputed frequency transformation (from a compiled plan); when
    #: given with ``use_transformation`` on, it is used as-is and neither a
    #: profile nor a training input is needed to transform.
    transformation: Optional[TransformedDFA] = None
    #: optional MetricsRegistry the executor/memory model record into.
    metrics: Optional[object] = None
    #: execution backend name (``"sim"``/``"fast"``); ``None`` defers to
    #: ``$REPRO_BACKEND`` and ultimately the cycle-accurate default.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.profile is None:
            if self.training_input is not None:
                self.profile = profile_state_frequencies(self.dfa, self.training_input)
        self.transformed: Optional[TransformedDFA] = None
        if self.use_transformation:
            if self.transformation is not None:
                if self.transformation.to_new.shape != (self.dfa.n_states,):
                    raise SimulationError(
                        "precomputed transformation was built for a DFA with "
                        f"{self.transformation.to_new.shape[0]} states, not "
                        f"{self.dfa.n_states}"
                    )
                self.transformed = self.transformation
            elif self.profile is None:
                raise SimulationError(
                    "the frequency transformation needs a transformation, "
                    "a profile or a training input"
                )
            else:
                self.transformed = frequency_transform(
                    self.dfa,
                    self.profile,
                    shared_memory_entries=self.device.shared_table_entries,
                )
            exec_dfa = self.transformed.dfa
            memory = MemoryModel(
                device=self.device,
                hot_state_count=self.transformed.hot_state_count,
                layout=TableLayout.RANK,
            )
        else:
            exec_dfa = self.dfa
            if self.profile is not None:
                hot = min(
                    self.dfa.n_states,
                    self.device.shared_table_entries // max(1, self.dfa.n_symbols),
                )
                hot_ids = frozenset(int(s) for s in self.profile.hot_states(hot))
            else:
                hot = min(
                    self.dfa.n_states,
                    self.device.shared_table_entries // max(1, self.dfa.n_symbols),
                )
                hot_ids = frozenset(range(hot))
            memory = MemoryModel(
                device=self.device,
                hot_state_count=hot,
                layout=TableLayout.HASH,
                hot_state_ids=hot_ids,
            )
        self.exec_dfa: DFA = exec_dfa
        self.memory: MemoryModel = memory
        self.executor = LockstepExecutor(
            exec_dfa.table, memory, self.device, metrics=self.metrics
        )
        #: the handle every transition step routes through.  ``sim`` wraps
        #: the executor above (ledger + metrics unchanged); ``fast`` skips
        #: cycle accounting entirely.
        self.engine: ExecutionBackend = create_backend(
            self.backend, executor=self.executor, table=exec_dfa.table
        )
        self.backend_name: str = self.engine.name

    # ------------------------------------------------------------------
    # state-id translation between caller space and execution space
    # ------------------------------------------------------------------
    def to_exec_state(self, state: int) -> int:
        """Translate an original-DFA state id into executor space."""
        if self.transformed is None:
            return int(state)
        return self.transformed.map_state_to_new(state)

    def to_user_state(self, state: int) -> int:
        """Translate an executor-space state id back to the original DFA."""
        if self.transformed is None:
            return int(state)
        return self.transformed.map_state_to_old(state)

    def to_exec_states(self, states: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_exec_state`."""
        states = np.asarray(states)
        if self.transformed is None:
            return states
        return self.transformed.to_new[states]

    def to_user_states(self, states: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_user_state`."""
        states = np.asarray(states)
        if self.transformed is None:
            return states
        return self.transformed.to_old[states]

    @property
    def exec_start_state(self) -> int:
        """The initial state in executor space."""
        return self.exec_dfa.start

    # ------------------------------------------------------------------
    def new_stats(self, n_threads: int) -> KernelStats:
        """Open a fresh ledger with the kernel-launch overhead charged."""
        stats = KernelStats(device=self.device, n_threads=n_threads)
        stats.charge(KernelPhase.LAUNCH, self.device.launch_overhead_cycles)
        return stats
