"""Analytical cost model — Equations 1–4 of the paper (§III-C).

The model predicts, from profiled features and device constants, the
execution time of each parallelization scheme:

.. math::

    T_{spec} &= T_{pred} + T_{par} + T_{v\\&r}                    \\\\
    T_{PM}   &= C + T_{p1}·α_k + Σ_{i=1}^{\\log N}(T_{comm}(k)+T_{ver}(k))
                + Σ_{i=2}^{N} P_i^{PM}·(T_{comm}(1)+T_{ver}(k)+T_{p1}) \\\\
    T_{SR}   &= C + T_{p1} + Σ_{i=2}^{N}(T_{comm}(1)+T_{ver}(1)
                + P_i^{SR}·T_{p1})                                 \\\\
    P_i^{SR} &= 1 - (accu_i^{spec-1} + Δ_i^{End} + Δ_i^{Specs})

The paper stops short of a closed-form selector ("FSM transition behaviors
are complex and diverse") and uses the model only to *guide* a coarse
decision tree; we expose it anyway — it is useful for ablations and for the
``estimate → rank`` analysis in the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.gpu.device import RTX3090, DeviceSpec
from repro.selector.features import FSMFeatures


@dataclass(frozen=True)
class CostModelInputs:
    """Workload parameters the equations need besides the FSM features."""

    input_length: int
    n_threads: int = 256
    k: int = 4
    hot_fraction: float = 1.0  # fraction of lookups served by shared memory
    others_capacity: int = 16  # VR registers for other chunks' speculations


class CostModel:
    """Evaluate Eqs. 1–4 for every scheme and rank them."""

    def __init__(self, device: DeviceSpec = RTX3090):
        self.device = device

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def transition_cycles(self, hot_fraction: float) -> float:
        """Expected per-transition latency given the hot-access fraction."""
        dev = self.device
        return (
            hot_fraction * dev.shared_cycles
            + (1.0 - hot_fraction) * dev.global_cycles
            + dev.transition_compute_cycles
        )

    def t_p1(self, inputs: CostModelInputs) -> float:
        """Parallel spec-1 execution time: one chunk of transitions."""
        chunk_len = -(-inputs.input_length // inputs.n_threads)
        return chunk_len * self.transition_cycles(inputs.hot_fraction)

    def t_comm(self, k: int) -> float:
        """Forwarding ``k`` end states to the successor.

        The forward is pipelined: the first state pays the full
        inter-thread communication latency, every additional state rides
        the pipe for one shuffle slot — so cost grows with ``k`` instead
        of paying ``k`` full round trips (and instead of ignoring ``k``
        entirely, the bug this replaces).
        """
        k = max(1, k)
        return float(self.device.comm_cycles) + (k - 1) * float(
            self.device.shuffle_cycles
        )

    def t_ver(self, k: int) -> float:
        """Runtime checks for ``k`` received end states."""
        return float(self.device.verify_cycles) * max(1, k)

    # ------------------------------------------------------------------
    # per-scheme estimates
    # ------------------------------------------------------------------
    def predict_cost(self) -> float:
        """The constant C: the lookback-2 replay is two lockstep steps."""
        return 2.0 * (self.device.shared_cycles + self.device.transition_compute_cycles)

    def spec_accuracy_at(self, features: FSMFeatures, k: int) -> float:
        """Interpolated spec-``k`` accuracy from the profiled anchors.

        The profiler measures the lookback-2 predictor at depths 1, 4 and
        16; accuracy is roughly linear in queue *depth* (``log2 k``), so
        any other ``k`` is interpolated piecewise-linearly between the
        anchors — the same curve :meth:`delta_specs` walks.  Depths beyond
        16 clamp to the deepest profile, a depth of zero means no
        speculation and no accuracy.
        """
        k = int(k)
        if k <= 0:
            return 0.0
        anchors = [
            (0.0, features.spec1_accuracy),  # log2(1)
            (2.0, features.spec4_accuracy),  # log2(4)
            (4.0, features.spec16_accuracy),  # log2(16)
        ]
        x = min(math.log2(k), anchors[-1][0])
        acc = anchors[-1][1]
        for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
            if x <= x1:
                acc = y0 + (y1 - y0) * (x - x0) / (x1 - x0)
                break
        return acc

    def estimate_pm(self, features: FSMFeatures, inputs: CostModelInputs) -> float:
        """Eq. 2 with ``P_i^PM = 1 - accu(spec-k)`` and ``α_k = k``.

        ``P_mismatch`` is the interpolated spec-``k`` accuracy at the
        *configured* ``k`` — a ``k = 16`` PM config is costed with spec-16
        accuracy, not stuck at the spec-4 anchor for every ``k >= 4``.
        """
        n, k = inputs.n_threads, inputs.k
        tp1 = self.t_p1(inputs)
        alpha_k = float(k)
        p_mismatch = 1.0 - self.spec_accuracy_at(features, k)
        tree = math.ceil(math.log2(max(2, n))) * (self.t_comm(k) + self.t_ver(k))
        recovery = (n - 1) * p_mismatch * (self.t_comm(1) + self.t_ver(k) + tp1)
        return self.predict_cost() + tp1 * alpha_k + tree + recovery

    def estimate_sr(
        self,
        features: FSMFeatures,
        inputs: CostModelInputs,
        *,
        delta_end: float,
        delta_specs: float,
    ) -> float:
        """Eq. 3 with the scheme-specific accuracy increments of Eq. 4."""
        n = inputs.n_threads
        tp1 = self.t_p1(inputs)
        p_recover = max(
            0.0,
            1.0 - (features.spec1_accuracy + delta_end + delta_specs),
        )
        per_round = self.t_comm(1) + self.t_ver(1) + self.device.sync_cycles
        return self.predict_cost() + tp1 + (n - 1) * (per_round + p_recover * tp1)

    # ------------------------------------------------------------------
    # Δ terms from profiled properties
    # ------------------------------------------------------------------
    def delta_end(self, features: FSMFeatures) -> float:
        """Accuracy gained from end-state forwarding: large when states
        converge fast.  Maps ``#uniqStates(10 trans.)`` onto [0, 1] — one
        surviving state means forwarding is essentially always right."""
        c = max(1.0, features.convergence_states)
        return max(0.0, 1.0 - features.spec1_accuracy) * (1.0 / c)

    def delta_specs(self, features: FSMFeatures, others_capacity: int = 16) -> float:
        """Accuracy gained from idle threads enumerating more queue states —
        bounded by how often the truth hides in the top-``capacity``.

        Interpolates the profiled spec-1/spec-4/spec-16 accuracy curve at
        the actual register budget: accuracy is roughly linear in the
        *depth* of the tried-states queue, i.e. in ``log2(capacity)``, so
        we interpolate piecewise-linearly between the three profiled
        anchors (capacities 1, 4 and 16).  Budgets beyond 16 clamp to the
        deepest profile; a zero budget means no extra speculations and no
        gain — this is what makes the Fig. 7 register sweep move.
        """
        cap = int(others_capacity)
        if cap <= 0:
            return 0.0
        return max(
            0.0, self.spec_accuracy_at(features, cap) - features.spec1_accuracy
        )

    def estimate_sfa(self, features: FSMFeatures, inputs: CostModelInputs) -> float:
        """SFA: mapping construction + ``log N`` composition, zero recovery.

        Construction runs ``width`` lanes per chunk (the profiled
        ``reachable_width`` active-state count, falling back to
        ``n_states`` when unprofiled), so the spec-1 chunk time scales by
        the lane oversubscription the lockstep executor would charge:
        ``total warps / device concurrency``, floored at 1 when the wider
        launch still fits.  Composition is a ``log N`` tree whose merges
        forward ``width``-entry mappings; there is no prediction constant,
        no verification term, and no recovery term at all.
        """
        n = inputs.n_threads
        width = (
            features.reachable_width
            if features.reachable_width > 0
            else float(features.n_states)
        )
        width = max(1.0, width)
        tp1 = self.t_p1(inputs)
        dev = self.device
        lane_warps = dev.warps_for_threads(int(math.ceil(n * width)))
        base_warps = dev.warps_for_threads(n)
        capacity = float(max(1, dev.max_concurrent_warps))
        oversubscription = max(
            1.0,
            (lane_warps / capacity) / max(1.0, base_warps / capacity),
        )
        construction = tp1 * oversubscription
        rounds = math.ceil(math.log2(max(2, n)))
        compose = rounds * (
            float(dev.comm_cycles) + (width - 1.0) * float(dev.shuffle_cycles)
        )
        return construction + compose

    # ------------------------------------------------------------------
    def estimate_all(self, features: FSMFeatures, inputs: CostModelInputs) -> Dict[str, float]:
        """Estimated cycles for each selectable scheme."""
        d_end = self.delta_end(features)
        d_specs = self.delta_specs(features, inputs.others_capacity)
        return {
            "pm": self.estimate_pm(features, inputs),
            "sre": self.estimate_sr(features, inputs, delta_end=d_end, delta_specs=0.0),
            "rr": self.estimate_sr(features, inputs, delta_end=d_end, delta_specs=d_specs),
            "nf": self.estimate_sr(
                features, inputs, delta_end=d_end, delta_specs=d_specs * 1.05
            ),
            "sfa": self.estimate_sfa(features, inputs),
        }

    def best_scheme(self, features: FSMFeatures, inputs: CostModelInputs) -> str:
        """The scheme with the lowest estimated time."""
        estimates = self.estimate_all(features, inputs)
        return min(estimates, key=estimates.get)
