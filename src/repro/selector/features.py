"""Offline FSM/input profiling: the features that drive scheme selection.

The paper's selector consumes (Fig. 6, Table II):

* **speculation accuracy** for spec-1 and spec-k, measured by running the
  all-state lookback-2 predictor over a small training slice and comparing
  against the true chunk start states;
* **input sensitivity** — whether speculation quality varies strongly across
  different portions of the training input ("the similarity of speculation
  results over different portions");
* **state convergence** — the mean number of unique states surviving 10
  transitions from all states (``#uniqStates(10 trans.)``);
* basic structure — state count, and the wall-clock profiling cost the paper
  reports in Table II's last column.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.automata.dfa import DFA, _as_symbol_array
from repro.automata.properties import convergence_profile
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import predict_start_states, true_start_states
from repro.errors import SchemeError


@dataclass(frozen=True)
class FSMFeatures:
    """Profiled characteristics of one FSM on one training input.

    All accuracies are in ``[0, 1]``; ``convergence_states`` is the Table II
    ``#uniqStates(10 trans.)`` statistic (lower = faster convergence);
    ``sensitivity`` is the standard deviation of per-portion spec-1 accuracy
    (higher = more input-sensitive speculation).
    """

    name: str
    n_states: int
    spec1_accuracy: float
    spec4_accuracy: float
    spec16_accuracy: float
    sensitivity: float
    convergence_states: float
    profiling_seconds: float
    #: mean image size of the *full* state set after running sample windows
    #: of the training input — the active-state count SFA's mapping
    #: construction actually pays for (defaults to 0.0 = unprofiled, which
    #: the cost model reads as "assume all n_states survive").
    reachable_width: float = 0.0
    #: live speculation accuracy the vector was last revised from
    #: (-1.0 = never revised; profiled anchors are untouched), and the
    #: number of verified chunk boundaries behind that measurement.  Both
    #: default so v2 plan artifacts load unchanged.
    live_accuracy: float = -1.0
    live_samples: int = 0

    @property
    def input_sensitive(self) -> bool:
        """The coarse Boolean the decision tree uses (Table II counts FSMs
        with *highly* input-sensitive speculation)."""
        return self.sensitivity > 0.15

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "n_states": self.n_states,
            "spec1_accuracy": self.spec1_accuracy,
            "spec4_accuracy": self.spec4_accuracy,
            "spec16_accuracy": self.spec16_accuracy,
            "sensitivity": self.sensitivity,
            "convergence_states": self.convergence_states,
            "profiling_seconds": self.profiling_seconds,
            "reachable_width": self.reachable_width,
            "live_accuracy": self.live_accuracy,
            "live_samples": self.live_samples,
        }

    def anchor_accuracy(self, k: int) -> float:
        """The profiled accuracy anchor nearest to queue depth ``k`` — what
        live spec-``k`` measurements are compared against."""
        if k <= 1:
            return self.spec1_accuracy
        if k <= 4:
            return self.spec4_accuracy
        return self.spec16_accuracy

    def update_from_observations(self, observations, *, spec_k=None) -> "FSMFeatures":
        """Fold live evidence into the vector: re-anchor the accuracy family.

        The live measurement fixes the accuracy at one queue depth; the
        other depths are scaled by the same live/anchor ratio (clipped to
        ``[0, 1]``) — the lookback-2 image structure is a property of the
        FSM, so when the truth's *rank* distribution shifts, all depths
        shift together.  Convergence, sensitivity and reachable width are
        structural and stay profiled.  Returns ``self`` unchanged when the
        observations carry no boundary evidence (e.g. an SFA-only window).
        """
        if observations is None or observations.boundary_samples == 0:
            return self
        k = int(spec_k if spec_k is not None else observations.spec_k)
        live = float(observations.spec_accuracy)
        ratio = live / max(self.anchor_accuracy(k), 1e-9)

        def scaled(value: float) -> float:
            return float(min(1.0, max(0.0, value * ratio)))

        return dataclasses.replace(
            self,
            spec1_accuracy=scaled(self.spec1_accuracy),
            spec4_accuracy=scaled(self.spec4_accuracy),
            spec16_accuracy=scaled(self.spec16_accuracy),
            live_accuracy=live,
            live_samples=int(observations.boundary_samples),
        )


def speculation_accuracy(
    dfa: DFA,
    training_input,
    *,
    n_chunks: int = 64,
    k: int = 1,
) -> float:
    """Top-k speculation accuracy of the lookback-2 predictor on a slice."""
    partition = partition_input(training_input, n_chunks)
    prediction = predict_start_states(dfa, partition)
    truth = true_start_states(dfa, partition)
    return prediction.accuracy_against(truth, k=k)


def reachable_width(
    dfa: DFA,
    training_input,
    *,
    window: int = 64,
    n_windows: int = 4,
) -> float:
    """Mean image size of the full state set over sample input windows.

    Runs *every* state through ``n_windows`` evenly spaced windows of the
    training input (vectorized: one ``table[states, sym]`` gather per
    position) and averages how many distinct states survive — the number
    of mapping rows SFA's state→state construction actually has to keep
    distinct, i.e. the active-state count of Eq. 1's mapping term.
    """
    symbols = _as_symbol_array(training_input)
    if symbols.size == 0:
        return float(dfa.n_states)
    table = dfa.table
    window = max(1, min(int(window), symbols.size))
    n_windows = max(1, int(n_windows))
    if symbols.size <= window:
        offsets = [0]
    else:
        step = max(1, (symbols.size - window) // n_windows)
        offsets = list(range(0, symbols.size - window + 1, step))[:n_windows]
    widths = []
    for off in offsets:
        states = np.arange(dfa.n_states, dtype=np.int64)
        for sym in symbols[off : off + window]:
            states = table[states, int(sym)]
        widths.append(int(np.unique(states).size))
    return float(np.mean(widths))


def profile_features(
    dfa: DFA,
    training_input,
    *,
    n_chunks: int = 64,
    n_portions: int = 4,
    convergence_steps: int = 10,
    seed: int = 0,
) -> FSMFeatures:
    """Collect the full feature vector on ``training_input``.

    The training slice is split into ``n_portions`` equal portions; spec-1
    accuracy is measured on each to quantify input sensitivity, and on the
    whole slice (with ``n_chunks`` chunks) for the headline accuracies.
    """
    symbols = _as_symbol_array(training_input)
    if symbols.size < n_chunks * 4:
        raise SchemeError(
            f"training input too short: {symbols.size} symbols for {n_chunks} chunks"
        )
    t0 = time.perf_counter()

    partition = partition_input(symbols, n_chunks)
    prediction = predict_start_states(dfa, partition)
    truth = true_start_states(dfa, partition)
    acc1 = prediction.accuracy_against(truth, k=1)
    acc4 = prediction.accuracy_against(truth, k=4)
    acc16 = prediction.accuracy_against(truth, k=16)

    # Input sensitivity: spec-1 accuracy variance across portions.
    portion_len = symbols.size // n_portions
    portion_accs = []
    chunks_per_portion = max(8, n_chunks // n_portions)
    for p in range(n_portions):
        piece = symbols[p * portion_len : (p + 1) * portion_len]
        if piece.size < chunks_per_portion:
            continue
        part = partition_input(piece, chunks_per_portion)
        pred = predict_start_states(dfa, part, start_state=dfa.run(symbols[: p * portion_len]))
        tru = true_start_states(dfa, part, start_state=dfa.run(symbols[: p * portion_len]))
        portion_accs.append(pred.accuracy_against(tru, k=1))
    sensitivity = float(np.std(portion_accs)) if len(portion_accs) > 1 else 0.0

    conv = convergence_profile(dfa, symbols, steps=convergence_steps, seed=seed)
    width = reachable_width(dfa, symbols)
    elapsed = time.perf_counter() - t0
    return FSMFeatures(
        name=dfa.name,
        n_states=dfa.n_states,
        spec1_accuracy=float(acc1),
        spec4_accuracy=float(acc4),
        spec16_accuracy=float(acc16),
        sensitivity=sensitivity,
        convergence_states=float(conv.mean()),
        profiling_seconds=float(elapsed),
        reachable_width=width,
    )
