"""Scheme selection: offline profiling, the Eq. 1–4 cost model and the
Fig. 6 decision tree."""

from repro.selector.cost_model import CostModel, CostModelInputs
from repro.selector.decision_tree import DecisionTreeSelector, SelectorThresholds
from repro.selector.features import FSMFeatures, profile_features, speculation_accuracy

__all__ = [
    "CostModel",
    "CostModelInputs",
    "DecisionTreeSelector",
    "FSMFeatures",
    "SelectorThresholds",
    "profile_features",
    "speculation_accuracy",
]
