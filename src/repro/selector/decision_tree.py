"""The Fig. 6 decision tree: coarse-grained parallel-scheme selection.

The tree asks two families of questions, exactly as the figure's color
coding describes — *speculation quality* (orange nodes) and *FSM convergence*
(gray nodes):

0. Is speculation *hopeless* — even the deepest profiled enumeration
   (spec-16, interpolated at the register budget) almost never covers the
   truth?  The measurement is corroborated by the noise-free
   ``reachable_width`` ceiling (a 16-deep queue covers at most
   ``16 / width`` of a width-wide state image) when the sampled accuracy
   sits borderline above the floor.  → **SFA**: every speculative scheme
   degrades toward its sequential worst case here, so build full
   state→state mappings instead and pay a bounded, misprediction-free
   cost.
1. Is enumerative speculation (spec-k) accurate enough that recovery is
   generally unnecessary, while spec-1 alone is not?  → **PM**: the spec-k
   redundancy is cheaper than any recovery.
2. Otherwise, does the FSM converge fast (few unique states after 10
   transitions)?  → **SRE**: forwarded end states are almost surely right,
   so the cheap conservative recovery suffices.
3. Otherwise, can enumerating deeper speculation candidates raise accuracy
   at all (Eq. 4's Δ_Specs: the spec-16 vs spec-1 gain)?  If **not**, the
   aggressive heuristics' extra executions are pure waste → **SRE**, the
   scheme that keeps threads idle rather than busy-wrong.
4. Otherwise, is the speculation highly input-sensitive?  → **NF**:
   concentrate the idle threads on the chunks right after the frontier,
   where many candidates may need trying.
5. Otherwise → **RR**: spread speculative recoveries evenly.

Thresholds are the tunable leaves of the tree; the defaults were calibrated
on the synthetic suites (mirroring the paper, whose coarse tree picks the
best scheme for ~80% of FSMs and loses ~3% on the rest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.selector.features import FSMFeatures


@dataclass(frozen=True)
class SelectorThresholds:
    """Decision-tree cut points (see module docstring for the semantics)."""

    speck_accurate: float = 0.9  # spec-4 accuracy above which PM wins
    spec1_accurate: float = 0.75  # spec-1 accuracy above which recovery is rare
    fast_convergence: float = 4.0  # #uniqStates(10) at or below → SRE
    enumeration_gain: float = 0.25  # spec-16 minus spec-1 below which → SRE
    input_sensitive: float = 0.15  # std of per-portion spec-1 accuracy
    speculation_floor: float = 0.15  # spec-16 accuracy below which → SFA


class DecisionTreeSelector:
    """The GSpecPal scheme selector (Fig. 6)."""

    SCHEMES = ("pm", "sre", "rr", "nf", "sfa")

    def __init__(self, thresholds: SelectorThresholds = SelectorThresholds()):
        self.thresholds = thresholds

    def select(self, features: FSMFeatures, span=None) -> str:
        """Return the chosen scheme name for the profiled FSM.

        ``span``, when truthy, receives the feature vector, the sequence of
        tree nodes visited (``path``) and the final ``decision``.
        """
        name, path = self.decide(features)
        if span:
            span.set_attr("features", dict(features.as_dict()))
            span.set_attr("path", path)
            span.set_attr("decision", name)
        return name

    def decide(self, features: FSMFeatures):
        """Like :meth:`select`, but also return the visited node labels.

        Plan compilation records the ``(scheme, decision_path)`` pair in the
        immutable artifact so the serve path can replay the selection
        without re-walking (or re-profiling) anything.
        """
        return self._walk(features)

    #: queue depth of the deepest profiled accuracy anchor (spec-16).
    ANCHOR_DEPTH = 16.0

    @classmethod
    def _speculation_hopeless(
        cls, features: FSMFeatures, t: SelectorThresholds
    ) -> bool:
        """Node-0 predicate: measured floor breach, or a width-implied
        enumeration ceiling below the floor corroborating a borderline
        measurement."""
        if features.spec16_accuracy < t.speculation_floor:
            return True
        if features.reachable_width <= 0:
            return False  # unprofiled (legacy plan): trust the measurement
        ceiling = cls.ANCHOR_DEPTH / features.reachable_width
        return (
            ceiling < t.speculation_floor
            and features.spec16_accuracy < 2.0 * t.speculation_floor
        )

    def _walk(self, features: FSMFeatures):
        """The tree itself: returns ``(scheme, visited-node labels)``."""
        t = self.thresholds
        path = []
        # Orange node 0: is speculation hopeless?  When even the deepest
        # enumeration almost never covers the truth, every speculative
        # scheme pays near-worst-case recovery — switch to SFA's exact
        # misprediction-free mapping composition instead.  The measured
        # spec-16 accuracy is sampled from few chunk boundaries, so near
        # the floor it is noisy; the profiled ``reachable_width`` gives a
        # noise-free corroboration — a 16-deep queue can cover at most
        # ``16 / width`` of a width-wide image — and tips the decision
        # when the measurement alone is borderline (under 2x the floor).
        path.append("speculation_floor")
        if self._speculation_hopeless(features, t):
            return "sfa", path
        # Orange node 1: does enumerative speculation make recovery rare,
        # where plain spec-1 would not?
        path.append("speck_accurate")
        if (
            features.spec4_accuracy >= t.speck_accurate
            and features.spec1_accuracy < t.spec1_accurate
        ):
            return "pm", path
        # Gray node: fast state convergence makes end-forwarding win.
        path.append("fast_convergence")
        if features.convergence_states <= t.fast_convergence:
            return "sre", path
        # Orange node 2: when deeper enumeration cannot lift accuracy
        # (Δ_Specs ≈ 0), aggressive recovery only burns memory bandwidth.
        path.append("enumeration_gain")
        if features.spec16_accuracy - features.spec1_accuracy < t.enumeration_gain:
            return "sre", path
        # Orange node 3: input-sensitive speculation needs concentrated
        # recovery resources near the frontier.
        path.append("input_sensitive")
        if features.sensitivity >= t.input_sensitive:
            return "nf", path
        return "rr", path

    def explain(self, features: FSMFeatures) -> str:
        """Human-readable trace of the decision path (for reports)."""
        t = self.thresholds
        lines = [f"FSM {features.name!r}:"]
        lines.append(
            f"  spec-16 accuracy {features.spec16_accuracy:.2f} "
            f"(floor {t.speculation_floor}, "
            f"reachable width {features.reachable_width:.1f})"
        )
        if self._speculation_hopeless(features, t):
            lines.append(
                "  -> speculation hopeless; misprediction-free mappings: SFA"
            )
            return "\n".join(lines)
        lines.append(
            f"  spec-4 accuracy {features.spec4_accuracy:.2f} "
            f"(threshold {t.speck_accurate}) / spec-1 {features.spec1_accuracy:.2f}"
        )
        if (
            features.spec4_accuracy >= t.speck_accurate
            and features.spec1_accuracy < t.spec1_accurate
        ):
            lines.append("  -> spec-k covers the truth; recovery unnecessary: PM")
            return "\n".join(lines)
        lines.append(
            f"  convergence #uniqStates(10) = {features.convergence_states:.1f} "
            f"(threshold {t.fast_convergence})"
        )
        if features.convergence_states <= t.fast_convergence:
            lines.append("  -> fast convergence; end-state forwarding wins: SRE")
            return "\n".join(lines)
        gain = features.spec16_accuracy - features.spec1_accuracy
        lines.append(
            f"  enumeration gain (spec-16 - spec-1) = {gain:.2f} "
            f"(threshold {t.enumeration_gain})"
        )
        if gain < t.enumeration_gain:
            lines.append("  -> deeper candidates do not help; stay conservative: SRE")
            return "\n".join(lines)
        lines.append(
            f"  sensitivity {features.sensitivity:.2f} (threshold {t.input_sensitive})"
        )
        if features.sensitivity >= t.input_sensitive:
            lines.append("  -> input-sensitive speculation: NF")
        else:
            lines.append("  -> default aggressive recovery: RR")
        return "\n".join(lines)
