"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause while still being able
to distinguish the common cases (bad regex, malformed automaton, invalid
simulator configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """An automaton definition is structurally invalid."""


class RegexSyntaxError(ReproError):
    """A regular expression could not be parsed.

    Attributes
    ----------
    pattern:
        The offending pattern.
    position:
        Index into ``pattern`` where parsing failed, or ``None`` when the
        error is not tied to a specific character.
    """

    def __init__(self, message: str, pattern: str = "", position: "int | None" = None):
        self.pattern = pattern
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {pattern!r})"
        super().__init__(message)


class SimulationError(ReproError):
    """The GPU simulator was configured or driven inconsistently."""


class SchemeError(ReproError):
    """A parallelization scheme was invoked with invalid parameters."""


class MissingTrainingInputWarning(UserWarning):
    """The frequency transformation was silently disabled.

    Emitted when a convenience constructor is asked for the transformed
    (RANK) hot layout but no training input is available to profile state
    frequencies, so execution falls back to the hash layout.  Callers who
    want the fallback silently can pass ``use_transformation=False``
    explicitly or filter this category.
    """
