"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause while still being able
to distinguish the common cases (bad regex, malformed automaton, invalid
simulator configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """An automaton definition is structurally invalid.

    Construction-size failures are structured so callers (the regex
    compiler, the serving tier, operators reading logs) can react to the
    numbers instead of parsing the message:

    Attributes
    ----------
    state_count:
        How many states the offending construction had produced when it
        was aborted, or ``None`` for errors that are not size-related.
    limit:
        The configured ceiling that was exceeded (``max_states`` for the
        subset construction), or ``None``.
    automaton:
        Name of the offending automaton, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        state_count: "int | None" = None,
        limit: "int | None" = None,
        automaton: "str | None" = None,
    ):
        self.state_count = state_count
        self.limit = limit
        self.automaton = automaton
        super().__init__(message)


class RegexSyntaxError(ReproError):
    """A regular expression could not be parsed.

    Attributes
    ----------
    pattern:
        The offending pattern.
    position:
        Index into ``pattern`` where parsing failed, or ``None`` when the
        error is not tied to a specific character.
    """

    def __init__(self, message: str, pattern: str = "", position: "int | None" = None):
        self.pattern = pattern
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {pattern!r})"
        super().__init__(message)


class SimulationError(ReproError):
    """The GPU simulator was configured or driven inconsistently."""


class SchemeError(ReproError):
    """A parallelization scheme was invoked with invalid parameters."""


class PlanError(ReproError):
    """A compiled plan artifact is invalid, stale, or mismatched.

    Raised when a plan file fails format/fingerprint verification on load,
    or when a plan is bound to a DFA or configuration other than the one it
    was compiled for.
    """


class ServingError(ReproError):
    """The serving layer (:mod:`repro.serving`) was driven inconsistently.

    Covers pool misuse: unknown or already-closed stream ids, feeding past
    the pool's capacity, and similar multi-tenant bookkeeping violations.

    The error is structured so front-ends can react programmatically
    instead of parsing messages:

    Attributes
    ----------
    code:
        Machine-readable failure class:

        - ``"capacity"`` — admission control rejected an open because
          ``max_streams`` sessions are already active (retryable);
        - ``"unknown_stream"`` — the stream id was never issued or its
          stream is already closed and forgotten;
        - ``"stream_closed"`` — the stream was closed concurrently while
          this call was in flight (the feed/close race);
        - ``"no_training_input"`` — a cold-cache miss had nothing to
          compile from;
        - ``"invalid_argument"`` — structurally bad call (missing dfa/plan,
          non-positive capacity, ...).

        The network gateway (:mod:`repro.gateway`) passes these codes
        through the wire verbatim and adds its own:

        - ``"bad_request"`` — malformed JSON line, unknown op, or a
          missing/ill-typed request field;
        - ``"not_owner"`` — a connection addressed a stream id that a
          different connection opened;
        - ``"connection_closed"`` / ``"protocol_error"`` — client-side
          codes for a torn connection or a response that does not match
          its request.
    retryable:
        Whether the same call can sensibly be retried later (true for
        ``"capacity"``: close a stream or wait, then reopen).
    stream_id / fingerprint:
        The offending stream id / plan fingerprint, when applicable.
    """

    def __init__(
        self,
        message: str,
        *,
        code: "str | None" = None,
        retryable: bool = False,
        stream_id: "int | None" = None,
        fingerprint: "str | None" = None,
    ):
        self.code = code
        self.retryable = bool(retryable)
        self.stream_id = stream_id
        self.fingerprint = fingerprint
        context = []
        if code is not None:
            context.append(f"code={code}")
        if retryable:
            context.append("retryable")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class ScenarioError(ReproError):
    """A traffic scenario document is invalid (:mod:`repro.scenarios`).

    Raised when a YAML/JSON scenario fails schema validation — unknown
    arrival kind, weights that do not sum to a distribution, a tenant FSM
    spec naming an unknown workload — or when a scenario file cannot be
    parsed.  The message always names the offending field.
    """


class SelfCheckError(ReproError):
    """A runtime invariant audit failed (``repro.selfcheck``).

    Raised at scheme-run boundaries (and, inside the frontier loop, per
    verification round) when an execution violates one of the paper-level
    invariants — end-state/oracle agreement, chunk-end chaining, VR-store
    capacity, speculation-queue accounting, or ledger phase tiling.  The
    structured attributes identify exactly where the violation happened so
    a fuzzer (or an operator reading logs) can reproduce it.

    Attributes
    ----------
    invariant:
        Short machine-readable name of the violated invariant
        (``"end_state_oracle"``, ``"chunk_end_chain"``, ...).
    scheme / backend:
        Scheme name and execution-backend name of the offending run.
    frontier:
        Frontier round (chunk index) at which the violation was detected,
        or ``None`` when the audit ran at the run boundary.
    lanes:
        Offending lane/chunk indices, or ``None`` when not lane-specific.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: "str | None" = None,
        scheme: "str | None" = None,
        backend: "str | None" = None,
        frontier: "int | None" = None,
        lanes: "list | None" = None,
    ):
        self.invariant = invariant
        self.scheme = scheme
        self.backend = backend
        self.frontier = frontier
        self.lanes = list(lanes) if lanes is not None else None
        context = []
        if invariant is not None:
            context.append(f"invariant={invariant}")
        if scheme is not None:
            context.append(f"scheme={scheme}")
        if backend is not None:
            context.append(f"backend={backend}")
        if frontier is not None:
            context.append(f"frontier={frontier}")
        if self.lanes is not None:
            context.append(f"lanes={self.lanes}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class MissingTrainingInputWarning(UserWarning):
    """The frequency transformation was silently disabled.

    Emitted when a convenience constructor is asked for the transformed
    (RANK) hot layout but no training input is available to profile state
    frequencies, so execution falls back to the hash layout.  Callers who
    want the fallback silently can pass ``use_transformation=False``
    explicitly or filter this category.
    """
