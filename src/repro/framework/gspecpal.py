"""The GSpecPal framework (paper §IV): profile → select → run.

:class:`GSpecPal` is the latency-sensitive front end tying the four
components together — state prediction, state transition (with the
frequency-based transformation), verification & recovery, and the parallel
scheme selector.  Typical use::

    pal = GSpecPal(dfa)
    result = pal.run(stream)           # selects a scheme automatically
    result = pal.run(stream, scheme="nf")  # or force one

Profiling is performed once per (FSM, training input) and cached; when no
training input is supplied a leading slice of the data (0.5% by default,
mirroring the paper's 1 MB-of-20×10 MB methodology) is used.

For serving, the expensive offline phase can be hoisted out entirely with
the compile-once/serve-many split (:mod:`repro.plan`)::

    plan = compile_plan(dfa, training, config)      # offline, once
    pal = GSpecPal.from_plan(plan)                  # online, zero profiling
    result = pal.run(stream)                        # plan's selection

A plan-backed framework never re-profiles: features, the scheme selection,
the frequency transformation and the hotness profile all come from the
artifact, and the simulator is built from those precomputed pieces instead
of raw training bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.automata.dfa import DFA, _as_symbol_array
from repro.gpu.kernel import GpuSimulator
from repro.observability import NULL_TRACER
from repro.schemes import (
    NFScheme,
    PMScheme,
    RRScheme,
    SchemeResult,
    SequentialScheme,
    SFAScheme,
    SpecSequentialScheme,
    SREScheme,
)
from repro.schemes.base import Scheme
from repro.selector.decision_tree import DecisionTreeSelector
from repro.selector.features import FSMFeatures, profile_features
from repro.framework.config import GSpecPalConfig
from repro.errors import PlanError, SchemeError


class GSpecPal:
    """Latency-sensitive speculative FSM parallelization framework."""

    #: Schemes the selector may pick (the paper's four plus the
    #: misprediction-free SFA leaf for hopeless speculation).
    SELECTABLE = ("pm", "sre", "rr", "nf", "sfa")
    #: Every scheme name ``run``/``stream``/``build_scheme`` accept (the
    #: spec-k alias ``pm-spec<k>`` is additionally accepted per config).
    KNOWN_SCHEMES = ("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq")

    def __init__(
        self,
        dfa: DFA,
        config: Optional[GSpecPalConfig] = None,
        *,
        training_input=None,
        tracer=None,
        metrics=None,
    ):
        self.dfa = dfa
        self.config = config if config is not None else GSpecPalConfig()
        self.selector = DecisionTreeSelector(self.config.thresholds)
        #: observability sinks; both default to off (no-op tracer / no
        #: registry) so instrumented paths cost nothing unless asked for.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._training: Optional[np.ndarray] = (
            _as_symbol_array(training_input) if training_input is not None else None
        )
        self._features: Optional[FSMFeatures] = None
        self._sim: Optional[GpuSimulator] = None
        #: cached cross-stream gang scheduler (built on first use; shares
        #: the simulator, so it sees the same table/backend every stream
        #: session does).
        self._fused = None
        #: compile-once artifact backing this instance (set by
        #: :meth:`from_plan`); when present, profiling/selection replay the
        #: plan and the simulator consumes its precomputed pieces.
        self._plan = None

    # ------------------------------------------------------------------
    # compile-once / serve-many
    # ------------------------------------------------------------------
    @classmethod
    def from_plan(
        cls,
        plan,
        *,
        config: Optional[GSpecPalConfig] = None,
        backend: Optional[str] = None,
        selfcheck: Optional[bool] = None,
        tracer=None,
        metrics=None,
    ) -> "GSpecPal":
        """Serve a :class:`~repro.plan.CompiledPlan` with zero profiling.

        The plan supplies the DFA, the profiled features, the scheme
        selection and the transformation/hotness artifacts; no training
        bytes are touched and no ``profile`` span is ever emitted.

        Parameters
        ----------
        config:
            Optional explicit configuration; must hash to the plan's
            ``config_hash`` (:class:`~repro.errors.PlanError` otherwise).
            When omitted, the plan's compile-time config is rebuilt.
        backend / selfcheck:
            Runtime knobs (not part of the compiled artifact), applied on
            top of the plan's config.
        """
        plan.verify()
        if config is not None:
            plan.verify_config(config)
            if backend is not None or selfcheck is not None:
                from dataclasses import replace

                overrides = {}
                if backend is not None:
                    overrides["backend"] = backend
                if selfcheck is not None:
                    overrides["selfcheck"] = selfcheck
                config = replace(config, **overrides)
        else:
            config = plan.build_config(backend=backend, selfcheck=selfcheck)
        pal = cls(plan.dfa, config, tracer=tracer, metrics=metrics)
        pal._plan = plan
        pal._features = plan.features
        return pal

    @property
    def plan(self):
        """The backing :class:`~repro.plan.CompiledPlan`, if any."""
        return self._plan

    def adopt_plan(self, plan) -> None:
        """Atomically swap in a *revision* of the current backing plan.

        The online-adaptation hot-swap hook: the drift monitor revises a
        plan from live observations (``revise_plan``) and installs it here.
        Only revisions are accepted — same content fingerprint and same
        config hash — which guarantees the frequency/transformation
        artifacts are byte-identical, so the warmed simulator and fused
        engine stay valid and only the *selection* changes.  Open stream
        sessions re-consult ``select_scheme`` on their next segment and
        rebuild their runner on the name change, i.e. the swap lands
        exactly at segment boundaries and never mid-segment.
        """
        if self._plan is None:
            raise PlanError(
                "adopt_plan requires a plan-backed framework (GSpecPal.from_plan)"
            )
        if plan.fingerprint != self._plan.fingerprint:
            raise PlanError(
                f"adopt_plan: revision is for fingerprint {plan.fingerprint[:12]}…, "
                f"this framework serves {self._plan.fingerprint[:12]}…"
            )
        if plan.config_hash != self._plan.config_hash:
            raise PlanError(
                "adopt_plan: revision was compiled under a different config "
                f"({plan.config_hash[:12]}… vs {self._plan.config_hash[:12]}…)"
            )
        self._plan = plan
        self._features = plan.features

    def current_decision_path(self) -> tuple:
        """The Fig. 6 node path behind the current selection.

        Plan-backed frameworks replay the compiled (possibly revised)
        walk; profiled ones re-walk the tree over the cached features — a
        pure arithmetic pass, no re-profiling.  Empty when nothing has
        been profiled yet.
        """
        if self._plan is not None:
            return tuple(self._plan.decision_path)
        if self._features is not None:
            return tuple(self.selector.decide(self._features)[1])
        return ()

    def compile_plan(self, data=None):
        """Compile this framework's (FSM, training, config) into a plan.

        ``data`` is only needed when no training input was supplied at
        construction time (a profiling slice is taken, as in :meth:`run`).
        """
        from repro.plan import compile_plan

        if self._training is None:
            if data is None:
                raise SchemeError(
                    "no training input available: pass one to GSpecPal() or "
                    "give compile_plan() the data stream"
                )
            self._training = self._training_slice(data)
        return compile_plan(
            self.dfa, self._training, self.config, tracer=self.tracer
        )

    # ------------------------------------------------------------------
    # scheme-name validation (fail fast, before any expensive phase)
    # ------------------------------------------------------------------
    def _known_scheme_names(self) -> tuple:
        return self.KNOWN_SCHEMES + (f"pm-spec{self.config.spec_k}",)

    @classmethod
    def validate_scheme_name(
        cls, name: Optional[str], *, spec_k: int = 4
    ) -> None:
        """Reject an unknown forced-scheme name with an actionable error.

        Class-level so callers that have no framework instance yet — the
        serving pool validating ``open(scheme=...)`` before paying a
        compile — fail as fast as the run path does.  ``None`` (selector's
        choice) always passes.
        """
        if name is None:
            return
        known = cls.KNOWN_SCHEMES + (f"pm-spec{spec_k}",)
        if name not in known:
            raise SchemeError(
                f"unknown scheme {name!r}; known schemes: {', '.join(known)}"
            )

    def _validate_scheme(self, name: Optional[str]) -> None:
        """Reject a forced scheme typo *before* profiling or simulator
        construction, so the failure is immediate and actionable."""
        self.validate_scheme_name(name, spec_k=self.config.spec_k)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def _training_slice(self, data) -> np.ndarray:
        if self._training is not None:
            return self._training
        symbols = _as_symbol_array(data)
        n = max(
            min(self.config.min_training_symbols, symbols.size),
            int(symbols.size * self.config.training_fraction),
        )
        return symbols[:n]

    def profile(self, data=None) -> FSMFeatures:
        """Collect (and cache) the FSM feature vector.

        ``data`` is only needed when no training input was supplied at
        construction time.  Plan-backed frameworks return the compiled
        features immediately; otherwise the computation runs once under a
        ``profile`` span.
        """
        if self._features is not None:
            return self._features
        if self._training is None:
            if data is None:
                raise SchemeError(
                    "no training input available: pass one to GSpecPal() or "
                    "give profile()/run() the data stream"
                )
            self._training = self._training_slice(data)
        with self.tracer.span(
            "profile",
            fsm=self.dfa.name,
            training_symbols=int(self._training.size),
        ):
            self._features = profile_features(
                self.dfa,
                self._training,
                n_chunks=min(64, self.config.n_threads),
            )
        return self._features

    def _simulator(self) -> GpuSimulator:
        """The (cached) device-loaded automaton.

        Plan-backed frameworks hand the simulator the *precomputed*
        transformation and hotness profile from the artifact — no raw
        training bytes are re-profiled; otherwise the simulator derives
        both from the training slice as before.
        """
        if self._sim is None:
            if self._plan is not None:
                self._sim = GpuSimulator(
                    dfa=self.dfa,
                    device=self.config.device,
                    use_transformation=self.config.use_transformation,
                    profile=self._plan.frequency_profile(),
                    transformation=self._plan.transformation(),
                    metrics=self.metrics,
                    backend=self.config.backend,
                )
            else:
                if self._training is None:
                    raise SchemeError("profile() must run before kernels launch")
                self._sim = GpuSimulator(
                    dfa=self.dfa,
                    device=self.config.device,
                    use_transformation=self.config.use_transformation,
                    training_input=bytes(np.asarray(self._training, dtype=np.uint8)),
                    metrics=self.metrics,
                    backend=self.config.backend,
                )
        return self._sim

    # ------------------------------------------------------------------
    # selection and execution
    # ------------------------------------------------------------------
    def select_scheme(self, data=None) -> str:
        """Run the Fig. 6 decision tree on the profiled features.

        With tracing enabled, a ``select`` span records the feature vector
        and the tree's decision path.  Plan-backed frameworks replay the
        compiled decision (same span attributes, ``from_plan=True``)
        without consulting the tree.
        """
        if self._plan is not None:
            with self.tracer.span("select") as span:
                if span:
                    span.set_attr("features", dict(self._plan.features.as_dict()))
                    span.set_attr("path", list(self._plan.decision_path))
                    span.set_attr("decision", self._plan.scheme)
                    span.set_attr("from_plan", True)
                return self._plan.scheme
        features = self.profile(data)
        with self.tracer.span("select") as span:
            return self.selector.select(features, span=span)

    def build_scheme(self, name: str) -> Scheme:
        """Instantiate a scheme sharing this framework's simulator/config
        (and its tracer, so scheme phase spans nest under framework spans)."""
        scheme = self._build_scheme(name)
        if self.config.selfcheck is not None:
            # Explicit config beats the REPRO_SELFCHECK environment default
            # the scheme constructor picked up.
            scheme.selfcheck = bool(self.config.selfcheck)
        return scheme

    def _build_scheme(self, name: str) -> Scheme:
        sim = self._simulator()
        cfg = self.config
        tracer = self.tracer
        if name in ("pm", f"pm-spec{cfg.spec_k}"):
            return PMScheme(sim, n_threads=cfg.n_threads, k=cfg.spec_k, tracer=tracer)
        if name == "sre":
            return SREScheme(
                sim,
                n_threads=cfg.n_threads,
                own_capacity=cfg.own_registers,
                others_capacity=cfg.others_registers,
                tracer=tracer,
            )
        if name == "rr":
            return RRScheme(
                sim,
                n_threads=cfg.n_threads,
                own_capacity=cfg.own_registers,
                others_capacity=cfg.others_registers,
                tracer=tracer,
            )
        if name == "nf":
            return NFScheme(
                sim,
                n_threads=cfg.n_threads,
                own_capacity=cfg.own_registers,
                others_capacity=cfg.others_registers,
                tracer=tracer,
            )
        if name == "sfa":
            return SFAScheme(sim, n_threads=cfg.n_threads, tracer=tracer)
        if name == "seq":
            return SequentialScheme(sim, n_threads=1, tracer=tracer)
        if name == "spec-seq":
            return SpecSequentialScheme(sim, n_threads=cfg.n_threads, tracer=tracer)
        raise SchemeError(f"unknown scheme {name!r}")

    def estimate_costs(
        self, data=None, input_length: Optional[int] = None
    ) -> Dict[str, float]:
        """Evaluate the analytical cost model (Eqs. 1–4) under this config.

        Threads the configuration's actual workload parameters —
        ``n_threads``, ``spec_k`` and the ``others_registers`` budget that
        the Δ-specs term depends on — into :class:`CostModelInputs`, so the
        estimates move when the register budget does (Fig. 7).
        """
        from repro.selector.cost_model import CostModel, CostModelInputs

        features = self.profile(data)
        if input_length is None:
            if data is not None:
                input_length = int(_as_symbol_array(data).size)
            elif self._training is not None:
                input_length = int(self._training.size)
            elif self._plan is not None:
                input_length = int(self._plan.training_symbols)
            else:
                raise SchemeError(
                    "estimate_costs needs data or an explicit input_length"
                )
        inputs = CostModelInputs(
            input_length=int(input_length),
            n_threads=self.config.n_threads,
            k=self.config.spec_k,
            others_capacity=self.config.others_registers,
        )
        return CostModel(self.config.device).estimate_all(features, inputs)

    def run(self, data, scheme: Optional[str] = None) -> SchemeResult:
        """Process ``data``: profile (if needed), select, execute.

        Parameters
        ----------
        scheme:
            Force a specific scheme instead of consulting the selector.
        """
        self._validate_scheme(scheme)
        symbols = _as_symbol_array(data)
        if self._training is None and self._plan is None:
            self._training = self._training_slice(symbols)
        with self.tracer.span(
            "gspecpal.run", input_symbols=int(symbols.size)
        ) as span:
            name = scheme if scheme is not None else self.select_scheme(symbols)
            result = self.build_scheme(name).run(symbols)
            if span:
                span.set_attr("scheme", name)
                span.set_attr("forced", scheme is not None)
                span.set_attr("cycles", result.cycles)
        return result

    def compare_schemes(
        self, data, schemes: Optional[Iterable[str]] = None
    ) -> Dict[str, SchemeResult]:
        """Run several schemes on the same stream (benchmark helper).

        Each compared scheme runs through :meth:`run` (forced), so every
        one gets its own traced ``gspecpal.run`` span — compared runs show
        up in ``repro trace`` like any other — all nested under one
        ``gspecpal.compare`` parent.
        """
        names = tuple(schemes) if schemes is not None else self.SELECTABLE
        for name in names:
            self._validate_scheme(name)
        with self.tracer.span("gspecpal.compare", schemes=list(names)):
            return {name: self.run(data, scheme=name) for name in names}

    # ------------------------------------------------------------------
    # match reporting and streaming
    # ------------------------------------------------------------------
    def find_first_match(self, data, scheme: Optional[str] = None) -> Optional[int]:
        """Offset of the first position after which the DFA accepts.

        Requires sticky (absorbing) accepting states — the scanner semantics
        ``compile_regex``/``compile_disjunction`` produce by default — so
        acceptance is monotone along the stream.  The parallel run yields
        verified per-chunk end states; only the single chunk where
        acceptance flips is rescanned to pinpoint the offset.  Returns
        ``None`` when the stream never matches.
        """
        symbols = _as_symbol_array(data)
        result = self.run(symbols, scheme=scheme)
        if not result.accepts:
            return None
        if result.chunk_ends is None:
            raise SchemeError(
                f"scheme {result.scheme!r} does not expose per-chunk ends"
            )
        from repro.speculation.chunks import partition_input

        accept = self.dfa.accepting_mask
        partition = partition_input(symbols, result.n_chunks)
        flip = int(np.argmax(accept[np.asarray(result.chunk_ends)]))
        chunk_start_state = (
            self.dfa.start
            if flip == 0
            else int(result.chunk_ends[flip - 1])
        )
        path = self.dfa.run_path(partition.chunk(flip), start=chunk_start_state)
        within = int(np.argmax(accept[path]))
        return int(partition.offsets[flip]) + within

    def fused_engine(self):
        """The (cached) cross-stream gang scheduler for this matcher.

        A :class:`~repro.engine.fused.FusedBatchEngine` sharing this
        framework's simulator: the serving pool uses it to advance every
        active stream on one plan in a single ``(streams × lanes)``
        lockstep dispatch instead of N per-stream scheme runs.  Fused
        dispatches are answer-identical to per-stream feeds (the
        differential suites pin this) but answer-only — no cycle ledger.
        """
        if self._fused is None:
            from repro.engine.fused import FusedBatchEngine

            self._fused = FusedBatchEngine(
                self._simulator(), selfcheck=self.config.selfcheck
            )
        return self._fused

    def stream(self, scheme: Optional[str] = None) -> "StreamSession":
        """Open an incremental session: feed segments, carry state across.

        Each segment is processed with the full parallel machinery from the
        carried DFA state — the framework's answer to long-running feeds
        (network taps) that cannot be buffered whole.  A forced ``scheme``
        is validated here, before any profiling or simulator work.
        """
        self._validate_scheme(scheme)
        return StreamSession(self, scheme=scheme)


class StreamSession:
    """Incremental scanning with carried DFA state (see GSpecPal.stream).

    ``total_cycles`` accumulates per-segment simulated cycles while the
    execution backend accounts them; the first segment processed on an
    answer-only backend (``fast``) sets it to ``float('nan')`` — sticky —
    because the ledger then holds no execution cycles to sum.

    Thread-ownership contract: a session is a single-owner object.  Its
    carried ``state``/counters are updated without any internal locking,
    so at most one thread may be inside :meth:`feed` at a time and a
    session must not be fed once its owner has released it.  Multi-tenant
    front-ends serialize externally —
    :class:`~repro.serving.MatcherPool` holds a per-stream lock across
    every feed/close, which is exactly this contract enforced.
    """

    def __init__(self, pal: GSpecPal, scheme: Optional[str] = None):
        self._pal = pal
        self._scheme = scheme
        self.state: int = pal.dfa.start
        self.segments: int = 0
        self.total_symbols: int = 0
        self.total_cycles: float = 0.0
        #: scheme instance reused across segments (rebuilt only when the
        #: selected scheme *name* changes — schemes hold no cross-run
        #: state, so per-segment re-instantiation was pure waste).
        self._runner = None
        self._runner_name: Optional[str] = None
        #: how many times the serving scheme changed between segments —
        #: each increment is one segment-boundary hot-swap (drift-driven
        #: plan revision, or a live selector changing its mind).
        self.scheme_switches: int = 0
        #: the Fig. 6 node path behind the most recent selection
        #: (``("forced",)`` for sessions opened with an explicit scheme,
        #: set immediately so even a never-fed forced session reports it).
        self.decision_path: tuple = ("forced",) if scheme is not None else ()

    @property
    def accepts(self) -> bool:
        """Whether the stream so far ends in an accepting state."""
        return self.state in self._pal.dfa.accepting

    @property
    def scheme(self) -> Optional[str]:
        """Name of the scheme this session runs under.

        The scheme the last segment actually ran (once fed), else the
        forced scheme (when one was requested at open), else ``None`` —
        a never-fed, unforced session has not consulted the selector yet.
        """
        if self._runner_name is not None:
            return self._runner_name
        return self._scheme

    def _scheme_runner(self, name: str):
        """The cached scheme instance for ``name`` (rebuild on change).

        The rebuild-on-name-change branch is the segment-boundary hot-swap
        point: when a drift revision (``GSpecPal.adopt_plan``) changes the
        selection between two feeds, the next segment rebuilds here and
        ``scheme_switches`` records that the stream was swapped.
        """
        if self._runner is None or self._runner_name != name:
            if self._runner is not None:
                self.scheme_switches += 1
            self._runner = self._pal.build_scheme(name)
            self._runner_name = name
        return self._runner

    def feed(self, segment) -> SchemeResult:
        """Process one segment from the carried state; returns its result."""
        symbols = _as_symbol_array(segment)
        if self._pal._training is None and self._pal._plan is None:
            self._pal._training = self._pal._training_slice(symbols)
        with self._pal.tracer.span(
            "stream.feed",
            segment=self.segments,
            segment_symbols=int(symbols.size),
            carried_state=self.state,
        ) as span:
            name = (
                self._scheme
                if self._scheme is not None
                else self._pal.select_scheme(symbols)
            )
            self.decision_path = (
                ("forced",)
                if self._scheme is not None
                else self._pal.current_decision_path()
            )
            runner = self._scheme_runner(name)
            result = runner.run(symbols, start_state=self.state)
            if span:
                span.set_attr("scheme", name)
                span.set_attr("end_state", result.end_state)
        self.state = result.end_state
        self.segments += 1
        self.total_symbols += int(symbols.size)
        if runner.engine.accounts_cycles:
            self.total_cycles += result.cycles
        else:
            # Answer-only backend: the ledger never holds execution
            # cycles, so an accumulated total would silently understate
            # cost.  NaN is sticky and poisons any downstream comparison.
            self.total_cycles = float("nan")
        return result

    def apply_fused(self, symbols, end_state: int) -> None:
        """Account one segment advanced by a fused cross-stream dispatch.

        The gang scheduler (:meth:`MatcherPool.feed_many`) computes this
        session's new carried state inside one batched dispatch; this
        method applies it under the session's usual single-owner contract
        (the pool holds the per-stream lock across the whole dispatch).
        Fused execution bypasses the scheme layer and charges no ledger,
        so ``total_cycles`` goes NaN-sticky exactly as on the answer-only
        backend.
        """
        symbols = _as_symbol_array(symbols)
        self.state = int(end_state)
        self.segments += 1
        self.total_symbols += int(symbols.size)
        self.total_cycles = float("nan")
