"""Stream-level (throughput-oriented) execution — Algorithm 1's outer loops.

The pre-GSpecPal mainstream runs *many* streams concurrently, one sequential
scan per stream (stream-level parallelism): aggregate throughput is superb
because thousands of streams keep every lane busy, but each individual
stream still takes ``O(length)`` — the response-time problem GSpecPal
exists to solve.  :class:`ThroughputEngine` models that design so the
benchmarks can quantify the latency/throughput trade-off on the same
simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.automata.dfa import DFA, _as_symbol_array
from repro.gpu.device import RTX3090, DeviceSpec
from repro.gpu.kernel import GpuSimulator
from repro.gpu.stats import KernelStats
from repro.errors import SchemeError


@dataclass
class BatchResult:
    """Result of one multi-stream batch scan.

    ``per_stream_ends``/``accepts`` are functional outputs; ``stats`` holds
    the batch's simulated cost.  ``latency_cycles`` is the response time of
    any single stream (== the whole batch: every stream finishes with the
    kernel); ``throughput_symbols_per_cycle`` is the aggregate rate.

    When the execution backend does not account cycles (``fast``), the
    ledger holds only scheme-side charges, never execution cycles — so both
    cycle-derived properties return ``float('nan')`` instead of a
    misleading near-zero number.  Callers comparing cycles must check
    ``accounts_cycles`` (or ``math.isnan``) first.
    """

    per_stream_ends: np.ndarray
    accepts: np.ndarray
    stats: KernelStats
    total_symbols: int
    accounts_cycles: bool = True

    @property
    def latency_cycles(self) -> float:
        if not self.accounts_cycles:
            return float("nan")
        return self.stats.cycles

    @property
    def throughput_symbols_per_cycle(self) -> float:
        if not self.accounts_cycles:
            return float("nan")
        return self.total_symbols / self.stats.cycles if self.stats.cycles else 0.0


class ThroughputEngine:
    """One-thread-per-stream batch scanning (the throughput baseline).

    Streams are padded to the longest and scanned in lockstep, one lane per
    stream — exactly how a throughput-oriented DFA engine shards work.
    """

    def __init__(
        self,
        dfa: DFA,
        device: DeviceSpec = RTX3090,
        *,
        training_input=None,
        use_transformation: bool = True,
        backend: "str | None" = None,
    ):
        if training_input is None:
            use_transformation = False
        self.sim = GpuSimulator(
            dfa=dfa,
            device=device,
            use_transformation=use_transformation,
            training_input=(
                bytes(_as_symbol_array(training_input).astype(np.uint8))
                if training_input is not None
                else None
            ),
            backend=backend,
        )

    def run_batch(self, streams: Sequence) -> BatchResult:
        """Scan every stream to completion in one simulated launch."""
        if not streams:
            raise SchemeError("run_batch needs at least one stream")
        arrays: List[np.ndarray] = [_as_symbol_array(s) for s in streams]
        lengths = np.asarray([a.size for a in arrays], dtype=np.int64)
        width = int(lengths.max())
        n = len(arrays)
        chunks = np.zeros((n, width), dtype=arrays[0].dtype if width else np.uint8)
        for i, a in enumerate(arrays):
            chunks[i, : a.size] = a

        stats = self.sim.new_stats(n_threads=n)
        starts = np.full(n, self.sim.exec_start_state, dtype=np.int64)
        ends = self.sim.engine.run_batch(
            chunks,
            starts,
            stats=stats,
            phase="stream_parallel_scan",
            lengths=lengths,
        )
        user_ends = self.sim.to_user_states(ends)
        accept_mask = self.sim.dfa.accepting_mask
        return BatchResult(
            per_stream_ends=user_ends,
            accepts=accept_mask[user_ends],
            stats=stats,
            total_symbols=int(lengths.sum()),
            accounts_cycles=self.sim.engine.accounts_cycles,
        )
