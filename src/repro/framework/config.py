"""Framework configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine import resolve_backend_name
from repro.gpu.device import RTX3090, DeviceSpec
from repro.selector.decision_tree import SelectorThresholds
from repro.errors import SchemeError


@dataclass(frozen=True)
class GSpecPalConfig:
    """Tunables of the GSpecPal framework.

    Attributes
    ----------
    n_threads:
        GPU threads == input chunks ``N``.
    spec_k:
        Paths per thread when PM is selected (paper baseline: 4).
    own_registers / others_registers:
        Register budgets for ``VR^end`` / ``VR^others`` (paper: 16 / 16).
    use_transformation:
        Apply the frequency-based DFA transformation (§IV-B).  Turning it
        off falls back to PM's hash-table hot layout (the ablation knob).
    training_fraction:
        Slice of the input used for offline profiling when no explicit
        training input is given (paper: 1 MB of 10 MB × 20 ≈ 0.5%).
    min_training_symbols:
        Lower bound on the profiling slice.
    device:
        Simulated GPU.
    thresholds:
        Decision-tree cut points.
    backend:
        Execution backend name: ``"sim"`` (cycle-accurate, the default) or
        ``"fast"`` (answer-only serving path, no cycle ledger).  ``None``
        defers to the ``REPRO_BACKEND`` environment variable.
    selfcheck:
        Runtime invariant audits (:mod:`repro.selfcheck`): ``True`` forces
        them on, ``False`` forces them off, ``None`` (default) defers to
        the ``REPRO_SELFCHECK`` environment variable.
    """

    n_threads: int = 256
    spec_k: int = 4
    own_registers: int = 16
    others_registers: int = 16
    use_transformation: bool = True
    training_fraction: float = 0.005
    min_training_symbols: int = 2048
    device: DeviceSpec = RTX3090
    thresholds: SelectorThresholds = field(default_factory=SelectorThresholds)
    backend: Optional[str] = None
    selfcheck: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.n_threads < 2:
            raise SchemeError("GSpecPal needs at least 2 threads/chunks")
        if self.spec_k < 1:
            raise SchemeError("spec_k must be >= 1")
        if not (0.0 < self.training_fraction <= 1.0):
            raise SchemeError("training_fraction must be in (0, 1]")
        # Fail on typos now, not at first kernel launch ("sim"/"fast"; an
        # explicit name also bypasses $REPRO_BACKEND at simulator build).
        if self.backend is not None:
            resolve_backend_name(self.backend)
