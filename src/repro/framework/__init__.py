"""GSpecPal framework front end (plus the throughput-mode baseline)."""

from repro.framework.config import GSpecPalConfig
from repro.framework.gspecpal import GSpecPal
from repro.framework.throughput import BatchResult, ThroughputEngine

__all__ = ["BatchResult", "GSpecPal", "GSpecPalConfig", "ThroughputEngine"]
