"""Differential DFA fuzzer: random automata × schemes × backends vs the oracle.

Every iteration draws a seeded random case — a DFA (random transition
table, a compiled pattern disjunction, or a classic workload), an input
stream, a thread count, a scheme, a backend, and optionally a streaming
segmentation — runs it with the selfcheck audits enabled, and cross-checks
the result against the sequential ``DFA.run`` oracle.  Any violation (a
wrong answer, a :class:`~repro.errors.SelfCheckError`, or an unexpected
exception such as a raw ``IndexError`` escaping a backend) is **shrunk** to
a minimal failing case and written to disk as a JSON repro that
:func:`replay` can re-execute.

Before the random loop, a set of deterministic **probes** checks contracts
the random cases cannot see directly: the cost model's ``t_comm`` must grow
with ``k``, ``delta_specs`` must move with the register budget, both
backends must reject out-of-range starts/symbols with a
:class:`~repro.errors.SimulationError` (never a numpy ``IndexError`` or a
silent wrong answer), and cycle-derived figures must be NaN on the
answer-only backend.  Reverting any of those fixes makes ``repro fuzz``
fail immediately with an actionable message.

This module imports the full framework stack — import it explicitly
(``from repro.selfcheck.fuzz import run_fuzz``); ``repro.selfcheck``'s
package init deliberately does not, so the audit layer stays import-light.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import DFA
from repro.errors import ReproError, SelfCheckError
from repro.framework.config import GSpecPalConfig
from repro.framework.gspecpal import GSpecPal

#: Schemes the random loop exercises (every speculative path plus the
#: misprediction-free SFA composition).
FUZZ_SCHEMES: Tuple[str, ...] = ("pm", "sre", "rr", "nf", "sfa", "spec-seq")
FUZZ_BACKENDS: Tuple[str, ...] = ("sim", "fast")


# ----------------------------------------------------------------------
# cases
# ----------------------------------------------------------------------
@dataclass
class FuzzCase:
    """One fully-serializable differential test case."""

    table: list  # (n_states, n_symbols) nested lists
    start: int
    accepting: list
    dfa_name: str
    input: list  # symbol ints
    training: list
    n_threads: int
    scheme: str
    backend: str
    segments: list = field(default_factory=list)  # lengths; [] = one-shot
    seed: int = 0

    @property
    def streaming(self) -> bool:
        return bool(self.segments)

    def dfa(self) -> DFA:
        return DFA(
            table=np.asarray(self.table, dtype=np.int64),
            start=int(self.start),
            accepting=frozenset(int(s) for s in self.accepting),
            name=self.dfa_name,
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_dict(cls, d: dict) -> "FuzzCase":
        return cls(**{k: d[k] for k in cls.__dataclass_fields__ if k in d})


@dataclass
class FuzzFailure:
    """A failing case plus the message explaining what went wrong."""

    case: FuzzCase
    message: str


def check_case(case: FuzzCase) -> Optional[str]:
    """Run one case with audits on; return a failure message or ``None``."""
    dfa = case.dfa()
    symbols = np.asarray(case.input, dtype=np.int64)
    training = np.asarray(case.training, dtype=np.int64)
    try:
        pal = GSpecPal(
            dfa,
            GSpecPalConfig(
                n_threads=case.n_threads,
                backend=case.backend,
                selfcheck=True,
            ),
            training_input=training,
        )
        if case.streaming:
            session = pal.stream(scheme=case.scheme)
            pos = 0
            for seg_len in case.segments:
                session.feed(symbols[pos : pos + seg_len])
                pos += seg_len
            end, accepts = session.state, session.accepts
        else:
            result = pal.run(symbols, scheme=case.scheme)
            end, accepts = result.end_state, result.accepts
    except SelfCheckError as exc:
        return f"selfcheck violation: {exc}"
    except ReproError as exc:
        return f"unexpected {type(exc).__name__}: {exc}"
    except Exception as exc:  # raw numpy errors etc. must never escape
        return f"raw {type(exc).__name__} escaped the framework: {exc}"
    oracle_end = dfa.run(symbols)
    if int(end) != int(oracle_end):
        return (
            f"end state {end} != sequential oracle {oracle_end} "
            f"(scheme={case.scheme}, backend={case.backend}, "
            f"streaming={case.streaming})"
        )
    if bool(accepts) != (oracle_end in dfa.accepting):
        return f"accepts={accepts} disagrees with oracle (scheme={case.scheme})"
    identity = _check_identity_layer(dfa, symbols)
    if identity is not None:
        return f"identity layer: {identity} (backend={case.backend})"
    return None


def _check_identity_layer(dfa: DFA, symbols: np.ndarray) -> Optional[str]:
    """Differential gate for the minimization / canonical-form layer.

    Runs on every fuzz case (so the random DFA corpus exercises it on both
    backends): the vectorized :func:`minimize_dfa` must agree with the
    pre-refactor Hopcroft worklist (``_minimize_reference``) up to
    isomorphism, minimization must be idempotent at the byte level, and
    canonical forms of language-equivalent relabellings must be
    bit-identical.
    """
    from repro.automata.minimize import (
        _minimize_reference,
        canonical_form,
        minimize_dfa,
    )
    from repro.automata.properties import are_equivalent

    minimized = minimize_dfa(dfa)
    reference = _minimize_reference(dfa)
    if minimized.n_states != reference.n_states:
        return (
            f"minimize_dfa gives {minimized.n_states} states, "
            f"_minimize_reference gives {reference.n_states}"
        )
    if not are_equivalent(minimized, reference):
        return "minimize_dfa and _minimize_reference disagree on the language"
    if not are_equivalent(minimized, dfa):
        return "minimize_dfa changed the language"
    again = minimize_dfa(minimized)
    if (
        not np.array_equal(again.table, minimized.table)
        or again.start != minimized.start
        or again.accepting != minimized.accepting
    ):
        return "minimize_dfa is not idempotent"
    relabelled = dfa.renumbered(list(reversed(range(dfa.n_states))))
    c_orig, c_relab = canonical_form(dfa), canonical_form(relabelled)
    if (
        not np.array_equal(c_orig.table, c_relab.table)
        or c_orig.start != c_relab.start
        or c_orig.accepting != c_relab.accepting
    ):
        return "canonical forms of a relabelling are not bit-identical"
    if symbols.size and minimized.accepts(symbols) != dfa.accepts(symbols):
        return "minimized DFA disagrees with the original on the case input"
    return None


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def _random_dfa(rng: np.random.Generator) -> DFA:
    kind = rng.choice(["table", "regex", "classic"])
    if kind == "table":
        n_states = int(rng.integers(2, 41))
        n_symbols = int(rng.integers(2, 13))
        table = rng.integers(0, n_states, size=(n_states, n_symbols))
        n_accepting = int(rng.integers(0, max(1, n_states // 3) + 1))
        accepting = rng.choice(n_states, size=n_accepting, replace=False)
        return DFA(
            table=table,
            start=int(rng.integers(0, n_states)),
            accepting=frozenset(int(s) for s in accepting),
            name=f"rand{n_states}x{n_symbols}",
        )
    if kind == "regex":
        from repro.automata.regex import compile_disjunction
        from repro.workloads.patterns import snort_patterns

        count = int(rng.integers(1, 4))
        patterns = snort_patterns(count, seed=int(rng.integers(0, 1 << 16)))
        return compile_disjunction(patterns, n_symbols=128, name="fuzz-regex")
    from repro.workloads import classic

    pick = rng.choice(["rotator", "div", "keyword"])
    if pick == "rotator":
        return classic.cyclic_rotator(int(rng.integers(3, 13)), n_symbols=64)
    if pick == "div":
        return classic.divisibility(int(rng.integers(2, 12)), base=2)
    keyword = bytes(rng.integers(97, 123, size=int(rng.integers(2, 6))).astype(np.uint8))
    return classic.keyword_scanner(keyword, n_symbols=128)


def _random_input(rng: np.random.Generator, n_symbols: int, length: int) -> np.ndarray:
    # Symbols must stay in uint8 range: the framework's training-input path
    # round-trips through bytes.
    hi = min(n_symbols, 256)
    style = rng.choice(["uniform", "skewed", "constant", "bursty"])
    if style == "uniform":
        return rng.integers(0, hi, size=length)
    if style == "constant":
        return np.full(length, int(rng.integers(0, hi)), dtype=np.int64)
    if style == "skewed":
        pool = rng.integers(0, hi, size=max(2, hi // 4))
        return pool[rng.integers(0, pool.size, size=length)]
    # bursty: long runs of one symbol interleaved with uniform noise
    out = rng.integers(0, hi, size=length)
    pos = 0
    while pos < length:
        run = int(rng.integers(4, 32))
        out[pos : pos + run] = int(rng.integers(0, hi))
        pos += run + int(rng.integers(4, 64))
    return out


def random_case(seed: int, schemes=FUZZ_SCHEMES, backends=FUZZ_BACKENDS) -> FuzzCase:
    """Draw one seeded case (deterministic for a given seed)."""
    rng = np.random.default_rng(seed)
    dfa = _random_dfa(rng)
    n_threads = int(rng.choice([2, 3, 4, 8, 16]))
    # Length just above n_threads occasionally, to hit the balanced-fallback
    # partition; otherwise a few hundred symbols.
    if rng.random() < 0.15:
        length = n_threads + int(rng.integers(1, 4))
    else:
        length = int(rng.integers(64, 513))
    length = max(length, n_threads)
    symbols = _random_input(rng, dfa.n_symbols, length)
    training = _random_input(rng, dfa.n_symbols, int(rng.integers(32, 129)))
    segments: List[int] = []
    if rng.random() < 0.4:
        # Streaming: split into 2–4 segments, each at least n_threads long.
        n_seg = int(rng.integers(2, 5))
        if length >= n_seg * n_threads:
            sizes = np.full(n_seg, n_threads, dtype=np.int64)
            extra = length - n_seg * n_threads
            for _ in range(int(extra)):
                sizes[int(rng.integers(0, n_seg))] += 1
            segments = [int(s) for s in sizes]
    return FuzzCase(
        table=dfa.table.tolist(),
        start=int(dfa.start),
        accepting=sorted(int(s) for s in dfa.accepting),
        dfa_name=dfa.name,
        input=[int(s) for s in symbols],
        training=[int(s) for s in training],
        n_threads=n_threads,
        scheme=str(rng.choice(list(schemes))),
        backend=str(rng.choice(list(backends))),
        segments=segments,
        seed=int(seed),
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_case(
    case: FuzzCase,
    check: Callable[[FuzzCase], Optional[str]] = check_case,
    max_checks: int = 150,
) -> FuzzFailure:
    """Greedily minimize a failing case while it keeps failing.

    Order: drop streaming, shrink the thread count, then ddmin-style input
    reduction (drop halves, then quarters, then eighths) and training
    truncation.  Bounded by ``max_checks`` re-executions.
    """
    budget = [max_checks]
    message = check(case) or "original failure no longer reproduces"

    def attempt(candidate: FuzzCase) -> Optional[str]:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        return check(candidate)

    def replace(**kw) -> FuzzCase:
        d = asdict(case)
        d.update(kw)
        return FuzzCase.from_dict(d)

    # 1. streaming → one-shot
    if case.segments:
        msg = attempt(replace(segments=[]))
        if msg:
            case, message = replace(segments=[]), msg

    # 2. fewer threads
    for n in (2, 3, 4):
        if n < case.n_threads and len(case.input) >= n:
            cand = replace(n_threads=n, segments=[])
            msg = attempt(cand)
            if msg:
                case, message = cand, msg
                break

    # 3. input reduction: drop contiguous blocks while still failing
    for denom in (2, 4, 8):
        shrunk = True
        while shrunk and budget[0] > 0:
            shrunk = False
            data = case.input
            block = max(1, len(data) // denom)
            if len(data) - block < case.n_threads:
                break
            for lo in range(0, len(data), block):
                cand_input = data[:lo] + data[lo + block :]
                if len(cand_input) < case.n_threads:
                    continue
                cand = replace(input=cand_input, segments=case.segments)
                msg = attempt(cand)
                if msg:
                    case, message = cand, msg
                    shrunk = True
                    break

    # 4. shorter training slice
    if len(case.training) > 16:
        cand = replace(training=case.training[:16])
        msg = attempt(cand)
        if msg:
            case, message = cand, msg

    return FuzzFailure(case=case, message=message)


# ----------------------------------------------------------------------
# deterministic probes (the satellite-fix tripwires)
# ----------------------------------------------------------------------
def run_probes() -> List[str]:
    """Deterministic contract checks run before the random loop.

    Returns a list of human-readable failure messages (empty = all pass).
    """
    import math

    from repro.engine.fast import FastBackend
    from repro.errors import SimulationError
    from repro.framework.throughput import ThroughputEngine
    from repro.gpu.kernel import GpuSimulator
    from repro.selector.cost_model import CostModel, CostModelInputs
    from repro.selector.features import FSMFeatures
    from repro.workloads import classic

    failures: List[str] = []

    # --- cost model: t_comm must grow with k --------------------------
    model = CostModel()
    if not model.t_comm(4) > model.t_comm(1):
        failures.append(
            f"cost model: t_comm(4)={model.t_comm(4)} is not > "
            f"t_comm(1)={model.t_comm(1)} — Eq. 2's communication term "
            "ignores k"
        )

    # --- cost model: delta_specs must move with the register budget ---
    feats = FSMFeatures(
        name="probe",
        n_states=16,
        spec1_accuracy=0.1,
        spec4_accuracy=0.5,
        spec16_accuracy=0.9,
        sensitivity=0.5,
        convergence_states=4.0,
        profiling_seconds=0.0,
    )
    d1 = model.delta_specs(feats, 1)
    d4 = model.delta_specs(feats, 4)
    d16 = model.delta_specs(feats, 16)
    if not (d1 < d4 < d16):
        failures.append(
            f"cost model: delta_specs ignores others_capacity "
            f"(cap=1→{d1}, cap=4→{d4}, cap=16→{d16})"
        )
    small = CostModelInputs(input_length=4096, others_capacity=1)
    big = CostModelInputs(input_length=4096, others_capacity=16)
    if model.estimate_all(feats, small)["rr"] == model.estimate_all(feats, big)["rr"]:
        failures.append(
            "cost model: RR estimate identical for others_capacity 1 and 16"
        )

    # --- cost model: P_mismatch must track the configured spec depth --
    acc8 = model.spec_accuracy_at(feats, 8)
    acc16 = model.spec_accuracy_at(feats, 16)
    if not (feats.spec4_accuracy < acc8 < acc16):
        failures.append(
            f"cost model: spec accuracy is not interpolated over k "
            f"(k=4→{feats.spec4_accuracy}, k=8→{acc8}, k=16→{acc16}) — "
            "Eq. 2 anchors every k >= 4 to the spec-4 profile"
        )
    if math.isclose(acc16, feats.spec4_accuracy):
        failures.append(
            "cost model: estimate_pm's k=16 mismatch uses the spec-4 anchor"
        )

    # --- backend error contract: SimulationError, never IndexError ----
    dfa = classic.divisibility(5, base=2)
    for backend_name in FUZZ_BACKENDS:
        sim = GpuSimulator(dfa=dfa, use_transformation=False, backend=backend_name)
        engine = sim.engine
        chunks = np.zeros((2, 4), dtype=np.int64)
        for label, starts, data in (
            ("start state", np.asarray([0, dfa.n_states + 3]), chunks),
            (
                "symbol",
                np.asarray([0, 0]),
                np.full((2, 4), dfa.n_symbols + 7, dtype=np.int64),
            ),
        ):
            try:
                engine.run_batch(data, starts)
            except SimulationError:
                continue
            except Exception as exc:
                failures.append(
                    f"backend {backend_name!r}: out-of-range {label} raised "
                    f"{type(exc).__name__} instead of SimulationError"
                )
                continue
            failures.append(
                f"backend {backend_name!r}: out-of-range {label} was "
                "silently accepted"
            )
    # Negative start on the bare fast backend: this is the silent-wrong-
    # answer path (negative flat-gather index wraps around).
    fb = FastBackend(dfa.table)
    try:
        fb.run_batch(np.zeros((1, 2), dtype=np.int64), np.asarray([-1]))
    except SimulationError:
        pass
    except Exception as exc:
        failures.append(
            f"FastBackend: negative start raised {type(exc).__name__} "
            "instead of SimulationError"
        )
    else:
        failures.append(
            "FastBackend: negative start produced an answer via wraparound "
            "indexing"
        )

    # --- NaN-cycles contract on the answer-only backend ---------------
    batch_fast = ThroughputEngine(dfa, backend="fast").run_batch([b"\x00\x01" * 8])
    if not math.isnan(batch_fast.latency_cycles) or not math.isnan(
        batch_fast.throughput_symbols_per_cycle
    ):
        failures.append(
            "throughput: fast-backend BatchResult reports finite cycles "
            f"(latency={batch_fast.latency_cycles}) instead of NaN"
        )
    batch_sim = ThroughputEngine(dfa, backend="sim").run_batch([b"\x00\x01" * 8])
    if math.isnan(batch_sim.latency_cycles) or batch_sim.latency_cycles <= 0:
        failures.append(
            "throughput: sim-backend BatchResult lost its cycle accounting"
        )
    return failures


# ----------------------------------------------------------------------
# the loop, repros, replay
# ----------------------------------------------------------------------
def save_repro(failure: FuzzFailure, out_dir) -> Path:
    """Write the shrunk failing case to ``out_dir`` as a JSON repro."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"repro-seed{failure.case.seed}.json"
    payload = asdict(failure.case)
    payload["message"] = failure.message
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_repro(path) -> FuzzCase:
    return FuzzCase.from_dict(json.loads(Path(path).read_text()))


def replay(path) -> Optional[str]:
    """Re-run a saved repro; returns the failure message or ``None``."""
    return check_case(load_repro(path))


def run_fuzz(
    iterations: int = 200,
    seed: int = 0,
    out_dir="fuzz-repros",
    schemes: Sequence[str] = FUZZ_SCHEMES,
    backends: Sequence[str] = FUZZ_BACKENDS,
    log: Callable[[str], None] = lambda s: None,
    probes: bool = True,
) -> Optional[Path]:
    """Run the fuzz campaign; returns the repro path on failure, else None.

    A probe failure (deterministic contract violation) raises
    :class:`~repro.errors.SelfCheckError` immediately — there is no random
    case to shrink, the message itself is the repro.
    """
    if probes:
        probe_failures = run_probes()
        if probe_failures:
            raise SelfCheckError(
                "deterministic probes failed:\n  - "
                + "\n  - ".join(probe_failures),
                invariant="probes",
            )
        log(f"probes passed; fuzzing {iterations} cases from seed {seed}")
    for i in range(iterations):
        case_seed = seed + i
        case = random_case(case_seed, schemes=schemes, backends=backends)
        message = check_case(case)
        if message is None:
            if (i + 1) % 50 == 0:
                log(f"{i + 1}/{iterations} cases clean")
            continue
        log(f"seed {case_seed} FAILED: {message}; shrinking…")
        failure = shrink_case(case)
        path = save_repro(failure, out_dir)
        log(
            f"shrunk to {len(failure.case.input)} symbols "
            f"(scheme={failure.case.scheme}, backend={failure.case.backend}); "
            f"repro written to {path}"
        )
        return path
    log(f"{iterations} cases clean")
    return None
