"""Runtime invariant audits for scheme executions.

The paper's contract is absolute: speculation changes *when* work happens,
never *what* the answer is.  This module re-checks that contract — plus the
structural invariants of the speculation machinery — at the end of every
``Scheme.run`` when self-checking is enabled (``REPRO_SELFCHECK=1`` or
``GSpecPalConfig(selfcheck=True)``).

Invariants audited at the run boundary:

``end_state_oracle``
    The scheme's end state (and accept flag) equals the sequential
    ``DFA.run`` oracle from the same start state.
``chunk_end_chain``
    When ``chunk_ends`` is exposed, re-running each chunk from its verified
    predecessor's end reproduces every entry — the chain is self-consistent,
    not just the last link.
``vr_capacity``
    No chunk's VR store holds more own/others records than its configured
    register budget (capacity enforcement was not bypassed).
``queue_accounting``
    No speculation queue's dequeue cursor ran past its states (nothing was
    dequeued after exhaustion).
``sfa_mapping_oracle``
    When the run stashed SFA chunk mappings, a state sample of every unique
    chunk's state→state mapping equals re-running the chunk from each start
    state on the executor-space DFA.
``ledger_tiling``
    When the backend accounts cycles: the per-phase cycle buckets tile the
    total exactly, and redundant transitions never exceed total transitions.

A violation raises :class:`~repro.errors.SelfCheckError` naming the
invariant, scheme, backend, frontier round and offending lanes.  The checks
are pure python over data the run already produced — O(input length) like
the run itself — so they are cheap enough for CI but still opt-in for
production serving.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.automata.dfa import _as_symbol_array
from repro.errors import SelfCheckError
from repro.speculation.chunks import partition_input

#: Environment variable turning the audits on process-wide.
SELFCHECK_ENV_VAR = "REPRO_SELFCHECK"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def selfcheck_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the self-check switch: explicit flag beats the environment."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(SELFCHECK_ENV_VAR, "").strip().lower() in _TRUTHY


def _fail(scheme, invariant: str, message: str, **kw) -> None:
    raise SelfCheckError(
        message,
        invariant=invariant,
        scheme=scheme.name,
        backend=scheme.engine.name,
        **kw,
    )


def audit_scheme_run(scheme, data, start_state, result) -> None:
    """Audit one completed ``Scheme.run`` against the paper's invariants.

    ``scheme`` is the scheme instance (its ``_audit_stash`` may hold the
    run's partition/prediction/vr, stashed by the scheme body); ``data`` and
    ``start_state`` are the run's inputs; ``result`` its
    :class:`~repro.schemes.base.SchemeResult`.
    """
    symbols = _as_symbol_array(data)
    dfa = scheme.sim.dfa
    user_start = dfa.start if start_state is None else int(start_state)

    # --- end state == sequential oracle -------------------------------
    oracle_end = dfa.run(symbols, start=user_start)
    if int(result.end_state) != int(oracle_end):
        _fail(
            scheme,
            "end_state_oracle",
            f"end state {result.end_state} != sequential oracle {oracle_end} "
            f"({symbols.size} symbols from state {user_start})",
        )
    oracle_accepts = oracle_end in dfa.accepting
    if bool(result.accepts) != oracle_accepts:
        _fail(
            scheme,
            "end_state_oracle",
            f"accepts={result.accepts} disagrees with oracle "
            f"accepts={oracle_accepts} in end state {oracle_end}",
        )

    # --- chunk_ends chain to the oracle, link by link -----------------
    if result.chunk_ends is not None and symbols.size > 0:
        ends = np.asarray(result.chunk_ends, dtype=np.int64)
        partition = partition_input(symbols, int(ends.size))
        bad = []
        state = user_start
        for i in range(partition.n_chunks):
            state = dfa.run(partition.chunk(i), start=state)
            if int(ends[i]) != int(state):
                bad.append(i)
        if bad:
            _fail(
                scheme,
                "chunk_end_chain",
                "chunk_ends disagree with re-running chunks from their "
                "verified predecessor ends",
                lanes=bad,
            )

    stash = getattr(scheme, "_audit_stash", None) or {}

    # --- VR-store capacity was never exceeded -------------------------
    vr = stash.get("vr")
    if vr is not None:
        bad = []
        for c in range(vr.n_chunks):
            records = vr.records(c)
            own = sum(1 for r in records if r.own)
            others = len(records) - own
            if own > vr.own_capacity or others > vr.others_capacity:
                bad.append(c)
        if bad:
            _fail(
                scheme,
                "vr_capacity",
                f"VR store holds more records than its register budget "
                f"(own<= {vr.own_capacity}, others<= {vr.others_capacity})",
                lanes=bad,
            )

    # --- speculation queues never dequeued past exhaustion ------------
    prediction = stash.get("prediction")
    if prediction is not None:
        bad = [
            i
            for i, q in enumerate(prediction.queues)
            if not (0 <= q._cursor <= q.states.size)
        ]
        if bad:
            _fail(
                scheme,
                "queue_accounting",
                "speculation queue cursor ran past the queue's states",
                lanes=bad,
            )

    # --- SFA mappings are the chunks' true transition functions -------
    mappings = stash.get("sfa_mappings")
    if mappings is not None:
        partition = stash.get("partition")
        reps = stash.get("sfa_reps")
        if partition is not None and reps is not None:
            exec_dfa = scheme.sim.exec_dfa
            mappings = np.asarray(mappings, dtype=np.int64)
            n_states = exec_dfa.n_states
            # Re-run a row sample of every unique chunk's mapping against
            # the executor-space oracle; small automata are checked in
            # full, large ones on an evenly spaced state sample so the
            # audit stays O(run cost).
            if n_states <= 32:
                rows = np.arange(n_states)
            else:
                rows = np.unique(
                    np.linspace(0, n_states - 1, 32).astype(np.int64)
                )
            bad = []
            for g, rep in enumerate(np.asarray(reps, dtype=np.int64)):
                chunk = partition.chunk(int(rep))
                for s in rows:
                    if int(mappings[g, s]) != int(
                        exec_dfa.run(chunk, start=int(s))
                    ):
                        bad.append(int(rep))
                        break
            if bad:
                _fail(
                    scheme,
                    "sfa_mapping_oracle",
                    "SFA chunk mappings disagree with re-running the chunk "
                    "from each start state",
                    lanes=bad,
                )

    # --- ledger tiling (cycle-accounting backends only) ---------------
    if scheme.engine.accounts_cycles and result.stats is not None:
        stats = result.stats
        total = float(stats.cycles)
        tiled = float(sum(stats.phase_cycles.values()))
        if abs(tiled - total) > 1e-6 * max(1.0, abs(total)):
            _fail(
                scheme,
                "ledger_tiling",
                f"phase cycle buckets sum to {tiled}, ledger total is {total}",
            )
        if stats.redundant_transitions > stats.transitions:
            _fail(
                scheme,
                "ledger_tiling",
                f"redundant transitions ({stats.redundant_transitions}) "
                f"exceed total transitions ({stats.transitions})",
            )


def audit_fused_dispatch(engine, segments, starts, result) -> None:
    """Audit one fused cross-stream dispatch, per stream.

    The fused path (:class:`~repro.engine.fused.FusedBatchEngine`) bypasses
    the scheme layer, so the scheme-run audits above never see it; this
    audit restores the same guarantees at the dispatch boundary:

    ``fused_end_state_oracle``
        Every stream's fused end state (in user-space numbering) equals the
        sequential ``DFA.run`` oracle over that stream's own segment from
        its own carried state — the per-stream answer contract.
    ``fused_frontier_chain``
        The per-stream frontier snapshots the dispatch stashed at symbol-
        block boundaries chain under the oracle: re-running each block's
        slice from the previous frontier reproduces every snapshot, so the
        fused gather never silently skipped or reordered a lane mid-batch.

    ``engine`` is the dispatching :class:`FusedBatchEngine`; ``segments``
    and ``starts`` are the dispatch inputs (user space); ``result`` its
    :class:`~repro.engine.fused.FusedDispatchResult`.
    """
    dfa = engine.dfa
    bad_ends = []
    for i, (segment, start) in enumerate(zip(segments, starts)):
        symbols = _as_symbol_array(segment)
        oracle_end = int(dfa.run(symbols, start=int(start)))
        if int(result.end_states[i]) != oracle_end:
            bad_ends.append(i)
    if bad_ends:
        raise SelfCheckError(
            "fused end states disagree with the per-stream sequential "
            "oracle",
            invariant="fused_end_state_oracle",
            scheme="fused",
            backend=engine.backend_name,
            lanes=bad_ends,
        )

    if result.frontiers is None:
        return
    bad_chains = []
    for i, snaps in enumerate(result.frontiers):
        symbols = _as_symbol_array(segments[i])
        state = int(starts[i])
        prev = 0
        for pos, snap_state in snaps:
            state = int(dfa.run(symbols[prev:pos], start=state))
            if state != int(snap_state):
                bad_chains.append(i)
                break
            prev = pos
    if bad_chains:
        raise SelfCheckError(
            "fused frontier snapshots disagree with re-running each "
            "symbol block from the previous frontier",
            invariant="fused_frontier_chain",
            scheme="fused",
            backend=engine.backend_name,
            lanes=bad_chains,
        )


def oracle_chunk_ends(scheme, partition, exec_start: int) -> np.ndarray:
    """Executor-space ground-truth end state of every chunk, chained.

    Used by the frontier loop's per-round audit: after round ``f`` the
    frontier chunk's verified end must equal ``oracle_chunk_ends(...)[f]``.
    Computed once per run — O(input length), same order as the run itself.
    """
    exec_dfa = scheme.sim.exec_dfa
    ends = np.empty(partition.n_chunks, dtype=np.int64)
    state = int(exec_start)
    for i in range(partition.n_chunks):
        state = exec_dfa.run(partition.chunk(i), start=state)
        ends[i] = state
    return ends
