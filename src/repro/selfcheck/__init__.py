"""Self-checking execution: runtime invariant audits + a differential fuzzer.

Two complementary tools keep the codebase honest about the paper's core
contract (every speculative scheme bit-matches the sequential oracle):

* :mod:`repro.selfcheck.audit` — opt-in runtime audits, enabled via
  ``REPRO_SELFCHECK=1`` or ``GSpecPalConfig(selfcheck=True)``, that verify
  the paper-level invariants at every scheme-run boundary (and every
  frontier round) and raise a structured
  :class:`~repro.errors.SelfCheckError` on violation;
* :mod:`repro.selfcheck.fuzz` — a differential DFA fuzzer (``repro fuzz``)
  that generates random automata, inputs and segmentations, runs all
  schemes × both backends × streaming vs one-shot against ``DFA.run``, and
  shrinks any failure to a minimal repro written to disk.

Only the audit symbols are exported here; import the fuzzer explicitly
(``from repro.selfcheck.fuzz import ...``) — it pulls in the full framework
stack, which the audit layer (imported by ``schemes.base``) must not.
"""

from repro.selfcheck.audit import (
    SELFCHECK_ENV_VAR,
    audit_scheme_run,
    oracle_chunk_ends,
    selfcheck_enabled,
)

__all__ = [
    "SELFCHECK_ENV_VAR",
    "audit_scheme_run",
    "oracle_chunk_ends",
    "selfcheck_enabled",
]
