"""Shared experiment runners used by the benchmark harness and examples.

Each paper experiment boils down to "run scheme(s) S over member(s) M with
parameters P and aggregate"; these helpers centralize that loop so every
bench file stays a thin declaration of its figure/table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.framework.config import GSpecPalConfig
from repro.framework.gspecpal import GSpecPal
from repro.schemes.base import SchemeResult
from repro.selector.features import FSMFeatures
from repro.workloads.suites import SuiteMember

#: Evaluation defaults: scaled-down analogue of the paper's 10 MB inputs /
#: thousands of threads, sized so the whole 36-FSM sweep runs in minutes on
#: a laptop while preserving the chunk-length-to-thread-count ratio regime.
DEFAULT_INPUT_LENGTH = 65_536
DEFAULT_N_THREADS = 256
DEFAULT_TRAINING_LENGTH = 8_192


@dataclass
class MemberRun:
    """All scheme results for one suite member on one input."""

    member: SuiteMember
    features: FSMFeatures
    results: Dict[str, SchemeResult]
    selected: str

    def speedup_over(self, baseline: str = "pm") -> Dict[str, float]:
        """Per-scheme speedup relative to ``baseline`` (simulated cycles)."""
        base = self.results[baseline].cycles
        return {
            name: base / res.cycles if res.cycles > 0 else float("inf")
            for name, res in self.results.items()
        }

    @property
    def best_scheme(self) -> str:
        return min(self.results, key=lambda n: self.results[n].cycles)


def run_member(
    member: SuiteMember,
    *,
    schemes: Sequence[str] = ("pm", "sre", "rr", "nf"),
    input_length: int = DEFAULT_INPUT_LENGTH,
    training_length: int = DEFAULT_TRAINING_LENGTH,
    n_threads: int = DEFAULT_N_THREADS,
    seed: int = 0,
    config: Optional[GSpecPalConfig] = None,
    tracer=None,
    metrics=None,
) -> MemberRun:
    """Profile a member, run the requested schemes, record the selection.

    ``tracer``/``metrics`` are forwarded to the framework so benchmark runs
    can dump span timelines (see ``benchmarks/conftest.py``).
    """
    training = member.training_input(training_length, seed=10_000 + seed)
    data = member.generate_input(input_length, seed=seed)
    cfg = config if config is not None else GSpecPalConfig(n_threads=n_threads)
    pal = GSpecPal(
        member.dfa, cfg, training_input=training, tracer=tracer, metrics=metrics
    )
    features = pal.profile()
    selected = pal.select_scheme()
    results = pal.compare_schemes(data, schemes=schemes)
    # The selector's pick reuses the already-computed result when possible.
    if selected not in results:
        results[selected] = pal.run(data, scheme=selected)
    return MemberRun(
        member=member, features=features, results=results, selected=selected
    )


def verify_against_sequential(run: MemberRun, data) -> bool:
    """Cross-check every scheme's end state against the plain DFA run."""
    truth = run.member.dfa.run(data)
    return all(res.end_state == truth for res in run.results.values())


def summarize_speedups(
    runs: Iterable[MemberRun], baseline: str = "pm"
) -> Dict[str, List[Tuple[str, float]]]:
    """Per-scheme list of (member name, speedup over baseline)."""
    out: Dict[str, List[Tuple[str, float]]] = {}
    for run in runs:
        for scheme, speedup in run.speedup_over(baseline).items():
            out.setdefault(scheme, []).append((run.member.name, speedup))
    return out
