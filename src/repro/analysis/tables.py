"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables/figures carry;
this module is the tiny formatting layer (no third-party dependencies, fixed
column widths, deterministic output suitable for diffing across runs).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one cell: floats get fixed precision, the rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(label: str, values: Sequence[float], precision: int = 2) -> str:
    """One labelled numeric series (a figure's data line)."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{label}: [{body}]"


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    unit: str = "x",
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart (for the figure-style report files).

    >>> print(render_bars(["a", "b"], [1.0, 2.0], width=4))
    a | ##    1.00x
    b | #### 2.00x
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title or ""
    peak = max(max(values), 1e-12)
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_w)} | {'#' * n:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (speedup aggregation), ignoring non-positive values."""
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
