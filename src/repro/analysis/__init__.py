"""Analysis and reporting: experiment runners, tables, report assembly."""

from repro.analysis.experiments import (
    DEFAULT_INPUT_LENGTH,
    DEFAULT_N_THREADS,
    MemberRun,
    run_member,
    summarize_speedups,
    verify_against_sequential,
)
from repro.analysis.report import build_report
from repro.analysis.tables import (
    format_cell,
    geometric_mean,
    render_bars,
    render_series,
    render_table,
)

__all__ = [
    "DEFAULT_INPUT_LENGTH",
    "DEFAULT_N_THREADS",
    "MemberRun",
    "build_report",
    "format_cell",
    "geometric_mean",
    "render_bars",
    "render_series",
    "render_table",
    "run_member",
    "summarize_speedups",
    "verify_against_sequential",
]
