"""EXPERIMENTS report generator.

Collects the text blocks the benchmark harness wrote to
``benchmarks/results/`` and assembles them — together with the paper's
reference numbers — into a single Markdown report.  Run after the harness::

    pytest benchmarks/ --benchmark-only
    python -m repro.analysis.report [output.md]

(EXPERIMENTS.md in the repository root is a curated snapshot of this
output with added commentary.)
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Optional

#: Experiment id → (results file stem, paper reference summary).
EXPERIMENTS: Dict[str, tuple] = {
    "Fig. 3 — spec-k execution overhead": (
        "fig3_speck_overhead",
        "Paper: overhead grows with k (4/6/8 paths); values unlabeled. "
        "Model: α_k ≈ k for serialized per-thread paths.",
    ),
    "Fig. 7 — VR_others register sweep": (
        "fig7_register_sweep",
        "Paper: best at 16 registers (Snort/ClamAV), 18 for PowerEN within "
        "1%; cost rises slightly beyond.",
    ),
    "Fig. 8 — overall speedups over PM(spec-4)": (
        "fig8_overall",
        "Paper: RR 6.25x / NF 6.76x average, selector 7.2x, range "
        "0.11x-20x; PM best on *1-2, SRE best on converging members.",
    ),
    "Fig. 9 — per-chunk recovery cost vs SRE": (
        "fig9_recovery_cost",
        "Paper: RR/NF cost more per recovered chunk than SRE (contention); "
        "NF cheaper than RR (locality).",
    ),
    "Table II — suite characteristics": (
        "table2_characteristics",
        "Paper: Snort [423,42k]/10k states; spec-1 means 16-29%; spec-4 "
        "means 30-39%; 3/5/6 input-sensitive; uniq(10) means 9.7-12.3.",
    ),
    "Table III — accuracy & active threads (Snort)": (
        "table3_accuracy_threads",
        "Paper: PM ~100% on easy / ~0.1% on hard; RR/NF >92% with 1-2 "
        "orders of magnitude more active threads.",
    ),
    "Selector accuracy (Fig. 6 tree)": (
        "selector_accuracy",
        "Paper: 29/36 = 80.6% exact picks, ~3% mean loss vs ideal.",
    ),
    "DFA-transformation ablation (§IV-B)": (
        "ablation_transform",
        "Paper: ~15% average improvement.",
    ),
    "Adaptive spec-k (extension)": (
        "ablation_adaptive_speck",
        "Extension of §II-C's static-k critique; no paper counterpart.",
    ),
    "Thread-count scaling (reconciliation)": (
        "scaling_threads",
        "Explains magnitude compression vs the paper's GPU-scale N.",
    ),
    "Latency vs throughput orientation": (
        "latency_vs_throughput",
        "Quantifies §I/II-B's framing; no paper counterpart.",
    ),
    "Predictor trade-off (extension)": (
        "predictors",
        "Explores §IV-A's accuracy/overhead trade-off; no paper counterpart.",
    ),
    "Device sweep (extension)": (
        "device_sweep",
        "Architecture-robustness check; no paper counterpart.",
    ),
    "Input-to-input stability (§V-A methodology)": (
        "input_variance",
        "Paper: ~1% run variance on hardware; here, cross-input stability.",
    ),
    "Chunk-granularity trade-off (extension)": (
        "chunk_granularity",
        "U-shaped total vs N for fixed input; no paper counterpart.",
    ),
}


def build_report(results_dir: Optional[Path] = None) -> str:
    """Assemble the Markdown report from the harness outputs."""
    if results_dir is None:
        results_dir = Path(__file__).parents[3] / "benchmarks" / "results"
    lines = [
        "# Experiment report (auto-generated)",
        "",
        "Produced by `python -m repro.analysis.report` from the outputs of",
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    missing = []
    for title, (stem, reference) in EXPERIMENTS.items():
        lines.append(f"## {title}")
        lines.append("")
        lines.append(f"*Reference:* {reference}")
        lines.append("")
        path = results_dir / f"{stem}.txt"
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            missing.append(stem)
            lines.append("_(no results yet — run the benchmark harness)_")
        lines.append("")
    if missing:
        lines.append(
            f"Missing results: {', '.join(missing)} — run "
            "`pytest benchmarks/ --benchmark-only` to generate them."
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    report = build_report()
    if argv:
        Path(argv[0]).write_text(report)
        print(f"wrote {argv[0]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
