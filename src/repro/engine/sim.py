"""The cycle-accurate backend: delegates to the lockstep executor.

``SimBackend`` is a thin adapter giving the existing
:class:`~repro.gpu.executor.LockstepExecutor` (memory model, warp timing,
metrics recording and all) the :class:`~repro.engine.base.ExecutionBackend`
shape.  It introduces **no** behavioural change: every call forwards
verbatim, so ledgers and metrics are bit-identical to pre-engine code.
"""

from __future__ import annotations

import numpy as np


class SimBackend:
    """Functional execution *plus* full simulated-GPU cycle accounting."""

    name = "sim"
    accounts_cycles = True

    def __init__(self, executor):
        #: the wrapped :class:`~repro.gpu.executor.LockstepExecutor`.
        self.executor = executor

    def run_batch(self, chunks, starts, **kwargs) -> np.ndarray:
        return self.executor.run(chunks, starts, **kwargs)

    def run_gathered(self, input_chunks, chunk_ids, starts, **kwargs) -> np.ndarray:
        return self.executor.run_gathered(input_chunks, chunk_ids, starts, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimBackend({self.executor!r})"
