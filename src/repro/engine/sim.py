"""The cycle-accurate backend: delegates to the lockstep executor.

``SimBackend`` is a thin adapter giving the existing
:class:`~repro.gpu.executor.LockstepExecutor` (memory model, warp timing,
metrics recording and all) the :class:`~repro.engine.base.ExecutionBackend`
shape.  It introduces **no** behavioural change: every call forwards
verbatim, so ledgers and metrics are bit-identical to pre-engine code.
"""

from __future__ import annotations

import numpy as np


class SimBackend:
    """Functional execution *plus* full simulated-GPU cycle accounting."""

    name = "sim"
    accounts_cycles = True

    def __init__(self, executor):
        #: the wrapped :class:`~repro.gpu.executor.LockstepExecutor`.
        self.executor = executor

    def run_batch(self, chunks, starts, **kwargs) -> np.ndarray:
        return self.executor.run(chunks, starts, **kwargs)

    def run_gathered(self, input_chunks, chunk_ids, starts, **kwargs) -> np.ndarray:
        return self.executor.run_gathered(input_chunks, chunk_ids, starts, **kwargs)

    def run_mappings(
        self,
        chunks,
        *,
        lengths=None,
        stats=None,
        phase: str = "execution",
        chunk_ids=None,
    ) -> np.ndarray:
        """Full state→state mapping of every chunk (the SFA construction).

        Tiles the ``(chunks × states)`` plane onto the lockstep executor —
        ``n_states`` lanes per chunk, one per start state, sharing the
        chunk's input fetch (the executor coalesces lanes with equal
        ``chunk_ids``) — so the ledger honestly charges the S× lane
        pressure SFA's mapping construction puts on the device.  Returns
        the same ``(n_chunks, n_states)`` matrix as the fast backend.
        """
        chunks = np.ascontiguousarray(chunks)
        n_chunks = chunks.shape[0]
        n_states = int(self.executor.table.shape[0])
        kwargs = {"stats": stats, "phase": phase}
        if lengths is not None:
            kwargs["lengths"] = np.repeat(
                np.asarray(lengths, dtype=np.int64), n_states
            )
        ends = self.executor.run_gathered(
            chunks,
            np.repeat(np.arange(n_chunks, dtype=np.int64), n_states),
            np.tile(np.arange(n_states, dtype=np.int64), n_chunks),
            **kwargs,
        )
        return ends.reshape(n_chunks, n_states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimBackend({self.executor!r})"
