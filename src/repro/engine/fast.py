"""The answer-only backend: optimized numpy execution, no cost model.

``FastBackend`` serves the production question — *what state does this
input end in?* — without simulating the GPU that the paper's measurements
need.  It keeps the transition table as one flattened row-major vector and
advances all lanes with a single ``flat[state * n_symbols + symbol]``
gather per input position: no memory-model hot/cold classification, no
per-warp reductions, no ledger charges, no metrics.  The ``stats``,
``phase``, ``chunk_ids`` and ``count_redundant`` parameters are accepted
for signature parity with :class:`~repro.engine.sim.SimBackend` and
ignored — with this backend a :class:`~repro.gpu.stats.KernelStats` ledger
only ever contains what the *scheme* charged (launch, comm, verify, sync),
never execution cycles.

The functional contract is bit-identical to the lockstep executor:
inactive lanes keep their start state, positions beyond a lane's length
are skipped, and the returned dtype matches
:data:`~repro.automata.dfa.STATE_DTYPE`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.automata.dfa import STATE_DTYPE
from repro.engine.base import validate_batch_inputs
from repro.errors import SimulationError


class FastBackend:
    """Flattened-gather DFA execution for answer-only serving."""

    name = "fast"
    accounts_cycles = False

    def __init__(self, table: np.ndarray):
        table = np.ascontiguousarray(np.asarray(table, dtype=STATE_DTYPE))
        if table.ndim != 2:
            raise SimulationError("transition table must be 2-D")
        self.table = table
        self.n_states, self.n_symbols = table.shape
        # int64 flat copy: index arithmetic and gathers stay in one dtype,
        # so the inner loop is a single fancy-index per position.
        self._flat = table.ravel().astype(np.int64)

    # ------------------------------------------------------------------
    def run_batch(
        self,
        chunks: np.ndarray,
        starts: np.ndarray,
        *,
        stats=None,
        phase: str = "execution",
        lengths: Optional[np.ndarray] = None,
        active: Optional[np.ndarray] = None,
        count_redundant: Optional[np.ndarray] = None,
        chunk_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        chunks = np.ascontiguousarray(chunks)
        if chunks.ndim != 2:
            raise SimulationError(f"chunks must be 2-D, got shape {chunks.shape}")
        n_threads, chunk_len = chunks.shape
        states = np.asarray(starts, dtype=np.int64).copy()
        if states.shape != (n_threads,):
            raise SimulationError("starts must match the number of threads")

        if active is None:
            active_mask = None
        else:
            active_mask = np.asarray(active, dtype=bool)
        if lengths is None:
            lens = None
        else:
            lens = np.asarray(lengths, dtype=np.int64)
            if lens.shape != (n_threads,):
                raise SimulationError("lengths must match the number of threads")
            if (lens < 0).any() or (lens > chunk_len).any():
                raise SimulationError("lengths out of range")
            if (lens == chunk_len).all():
                lens = None  # rectangular after all

        validate_batch_inputs(
            chunks,
            states,
            n_states=self.n_states,
            n_symbols=self.n_symbols,
            lengths=lens,
            active=active_mask,
            backend=self.name,
        )

        if chunk_len == 0 or (active_mask is not None and not active_mask.any()):
            return states.astype(STATE_DTYPE)

        flat = self._flat
        m = self.n_symbols
        syms = chunks.astype(np.int64, copy=False)

        if active_mask is None and lens is None:
            # Rectangular all-active batch: one gather per position.
            for j in range(chunk_len):
                states = flat[states * m + syms[:, j]]
            return states.astype(STATE_DTYPE)

        # Ragged and/or masked batch: gather only the working lanes.
        if active_mask is None:
            active_mask = np.ones(n_threads, dtype=bool)
        if lens is None:
            lens = np.full(n_threads, chunk_len, dtype=np.int64)
        max_len = int(lens[active_mask].max(initial=0))
        for j in range(max_len):
            working = active_mask & (j < lens)
            if not working.any():
                break
            states[working] = flat[states[working] * m + syms[working, j]]
        return states.astype(STATE_DTYPE)

    # ------------------------------------------------------------------
    def run_streams(
        self,
        chunks: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        """Fused cross-stream entry: lanes pre-sorted by descending length.

        The serving tier's gang scheduler
        (:class:`~repro.engine.fused.FusedBatchEngine`) pads N same-plan
        stream segments into one ``(streams × lanes)`` matrix and sorts the
        rows by descending segment length, so at every position the lanes
        still working form a contiguous *prefix* — this loop advances them
        with one prefix-sliced flattened-table gather per position, no
        boolean masks, no per-lane branching.  Answer-identical to
        :meth:`run_batch` with the same ``lengths``; exists because the
        prefix slice is measurably cheaper than masked gathers at serving
        batch widths.
        """
        chunks = np.ascontiguousarray(chunks)
        if chunks.ndim != 2:
            raise SimulationError(f"chunks must be 2-D, got shape {chunks.shape}")
        n_streams, max_len = chunks.shape
        states = np.asarray(starts, dtype=np.int64).copy()
        if states.shape != (n_streams,):
            raise SimulationError("starts must match the number of streams")
        lens = np.asarray(lengths, dtype=np.int64)
        if lens.shape != (n_streams,):
            raise SimulationError("lengths must match the number of streams")
        if (lens < 0).any() or (lens > max_len).any():
            raise SimulationError("lengths out of range")
        if (np.diff(lens) > 0).any():
            raise SimulationError(
                "run_streams requires lanes sorted by descending length"
            )
        validate_batch_inputs(
            chunks,
            states,
            n_states=self.n_states,
            n_symbols=self.n_symbols,
            lengths=lens,
            backend=self.name,
        )
        if max_len == 0:
            return states.astype(STATE_DTYPE)

        flat = self._flat
        m = self.n_symbols
        syms = chunks.astype(np.int64, copy=False)
        # lens is descending, so the number of lanes with lens > j is the
        # insertion point of -j in the ascending -lens (precomputed for all
        # positions in one vectorized searchsorted).
        longest = int(lens.max(initial=0))
        counts = np.searchsorted(-lens, -np.arange(longest), side="left")
        for j in range(longest):
            k = int(counts[j])
            if k == 0:
                break
            prefix = states[:k]
            states[:k] = flat[prefix * m + syms[:k, j]]
        return states.astype(STATE_DTYPE)

    # ------------------------------------------------------------------
    def run_mappings(
        self,
        chunks: np.ndarray,
        *,
        lengths: Optional[np.ndarray] = None,
        stats=None,
        phase: str = "execution",
        chunk_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Full state→state mapping of every chunk (the SFA construction).

        Returns a ``(n_chunks, n_states)`` matrix whose ``[c, s]`` entry is
        the state reached by running chunk ``c`` from state ``s`` — i.e. the
        chunk's transition *function*, not one speculated path.  All
        ``n_states`` columns advance together with one matrix gather per
        input position, so the construction is vectorized over the full
        ``(chunks × states)`` plane.  ``stats``/``phase``/``chunk_ids`` are
        accepted for parity with the sim backend and ignored.
        """
        chunks = np.ascontiguousarray(chunks)
        if chunks.ndim != 2:
            raise SimulationError(f"chunks must be 2-D, got shape {chunks.shape}")
        n_chunks, chunk_len = chunks.shape
        if lengths is None:
            lens = None
        else:
            lens = np.asarray(lengths, dtype=np.int64)
            if lens.shape != (n_chunks,):
                raise SimulationError("lengths must match the number of chunks")
            if (lens < 0).any() or (lens > chunk_len).any():
                raise SimulationError("lengths out of range")
            if (lens == chunk_len).all():
                lens = None
        validate_batch_inputs(
            chunks,
            np.zeros(n_chunks, dtype=np.int64),
            n_states=self.n_states,
            n_symbols=self.n_symbols,
            lengths=lens,
            backend=self.name,
        )
        states = np.broadcast_to(
            np.arange(self.n_states, dtype=np.int64), (n_chunks, self.n_states)
        ).copy()
        if chunk_len == 0 or n_chunks == 0:
            return states.astype(STATE_DTYPE)
        flat = self._flat
        m = self.n_symbols
        syms = chunks.astype(np.int64, copy=False)
        if lens is None:
            for j in range(chunk_len):
                states = flat[states * m + syms[:, j][:, None]]
            return states.astype(STATE_DTYPE)
        max_len = int(lens.max(initial=0))
        for j in range(max_len):
            working = j < lens
            if not working.any():
                break
            states[working] = flat[
                states[working] * m + syms[working, j][:, None]
            ]
        return states.astype(STATE_DTYPE)

    # ------------------------------------------------------------------
    def run_gathered(
        self,
        input_chunks: np.ndarray,
        chunk_ids: np.ndarray,
        starts: np.ndarray,
        **kwargs,
    ) -> np.ndarray:
        """Run with an explicit thread→chunk assignment."""
        chunk_ids = np.asarray(chunk_ids, dtype=np.int64)
        gathered = np.asarray(input_chunks)[chunk_ids]
        kwargs.setdefault("chunk_ids", chunk_ids)
        return self.run_batch(gathered, starts, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FastBackend(n_states={self.n_states}, n_symbols={self.n_symbols})"
