"""The execution-backend contract: functional execution, pluggable cost.

Every scheme drives ``state = T[state, sym]`` through an
:class:`ExecutionBackend` instead of a concrete executor.  The contract has
two halves:

* **function** — ``run_batch`` maps ``(chunks, starts, lengths, active,
  chunk_ids)`` to end states, and is required to be *bit-identical* across
  backends (the differential and hypothesis suites enforce this for every
  scheme × DFA × input);
* **cost** — an optional :class:`CostSink` (in practice a
  :class:`~repro.gpu.stats.KernelStats` ledger) the backend may charge.
  Only backends with :attr:`ExecutionBackend.accounts_cycles` set populate
  it; answer-only backends accept the ledger for signature parity and leave
  it untouched.

Backend selection is by name (``"sim"``, ``"fast"``); when no name is given
the ``REPRO_BACKEND`` environment variable decides, defaulting to ``"sim"``
so existing cost-model workflows are unchanged.
"""

from __future__ import annotations

import os
from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.errors import SimulationError

#: Environment variable consulted when no backend name is given explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The default backend: full cycle-accurate simulation.
DEFAULT_BACKEND = "sim"

#: Names accepted by :func:`resolve_backend_name`, in registration order.
BACKEND_NAMES: Tuple[str, ...] = ("sim", "fast")


@runtime_checkable
class CostSink(Protocol):
    """The ledger slice a cycle-accounting backend charges into.

    Structurally matched by :class:`~repro.gpu.stats.KernelStats`; the
    protocol exists so future backends (and tests) can depend on the engine
    layer without importing the GPU cost model.
    """

    transitions: int
    redundant_transitions: int
    shared_accesses: int
    global_accesses: int

    def charge(self, phase: str, cycles: float) -> None:
        """Add ``cycles`` to the total and to ``phase``'s bucket."""
        ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """One way of executing chunk batches of DFA transitions.

    Implementations must agree on the *functional* result for identical
    inputs; they differ only in what else they compute (cycle accounting,
    metrics) and how fast they run on the host.
    """

    #: Registry name (``"sim"``, ``"fast"`` …).
    name: str
    #: Whether ``run_batch`` charges the ``stats`` ledger it is handed.
    accounts_cycles: bool

    def run_batch(
        self,
        chunks: np.ndarray,
        starts: np.ndarray,
        *,
        stats: Optional[CostSink] = None,
        phase: str = "execution",
        lengths: Optional[np.ndarray] = None,
        active: Optional[np.ndarray] = None,
        count_redundant: Optional[np.ndarray] = None,
        chunk_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance each thread through its chunk; return the end states.

        Semantics (shared by all backends): inactive lanes keep their start
        state; positions at or beyond a lane's ``lengths`` entry are
        skipped; ``chunk_ids``/``count_redundant`` only influence cost
        accounting and may be ignored by answer-only backends.
        """
        ...

    def run_gathered(
        self,
        input_chunks: np.ndarray,
        chunk_ids: np.ndarray,
        starts: np.ndarray,
        **kwargs,
    ) -> np.ndarray:
        """Run with an explicit thread→chunk assignment (broken binding)."""
        ...

    def run_mappings(
        self,
        chunks: np.ndarray,
        *,
        lengths: Optional[np.ndarray] = None,
        stats: Optional[CostSink] = None,
        phase: str = "execution",
        chunk_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Full state→state mapping of every chunk: a ``(n_chunks,
        n_states)`` matrix whose ``[c, s]`` entry is the end state of
        running chunk ``c`` from state ``s`` (the SFA construction).
        Backends must agree on the matrix; only cost accounting differs.
        """
        ...


def _lane_list(mask: np.ndarray, cap: int = 8) -> str:
    """Render offending lane indices for an error message, capped."""
    lanes = np.flatnonzero(mask)
    shown = ", ".join(str(int(x)) for x in lanes[:cap])
    if lanes.size > cap:
        shown += f", … ({lanes.size} lanes total)"
    return shown


def validate_batch_inputs(
    chunks: np.ndarray,
    starts: np.ndarray,
    *,
    n_states: int,
    n_symbols: int,
    lengths: Optional[np.ndarray] = None,
    active: Optional[np.ndarray] = None,
    backend: str = "backend",
) -> None:
    """Validate start states and symbols against the table's domain.

    Shared by both backends so they agree on the error contract: an
    out-of-range start state or symbol raises
    :class:`~repro.errors.SimulationError` naming the offending lanes,
    instead of surfacing as a raw numpy ``IndexError`` (or, worse, a
    silently wrong answer via negative indexing in the flat gather).

    ``starts`` is checked for *every* lane — schemes hand inactive lanes a
    valid placeholder start, so a bad start is always a real bug.  Symbols
    are only checked at positions a lane actually executes (padding beyond
    ``lengths`` and inactive lanes may hold arbitrary values).
    """
    starts = np.asarray(starts)
    bad_starts = (starts < 0) | (starts >= n_states)
    if bad_starts.any():
        raise SimulationError(
            f"[{backend}] start states out of range [0, {n_states}) "
            f"on lanes {_lane_list(bad_starts)}"
        )
    chunks = np.asarray(chunks)
    if chunks.size == 0:
        return
    bad_syms = (chunks < 0) | (chunks >= n_symbols)
    if not bad_syms.any():
        return
    # Restrict to executed positions before deciding it is an error.
    n_threads, chunk_len = chunks.shape
    executed = np.ones((n_threads, chunk_len), dtype=bool)
    if active is not None:
        executed &= np.asarray(active, dtype=bool)[:, None]
    if lengths is not None:
        executed &= np.arange(chunk_len)[None, :] < np.asarray(
            lengths, dtype=np.int64
        )[:, None]
    bad_syms &= executed
    if bad_syms.any():
        raise SimulationError(
            f"[{backend}] input symbols out of range [0, {n_symbols}) "
            f"on lanes {_lane_list(bad_syms.any(axis=1))}"
        )


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Normalize a backend name, falling back to ``$REPRO_BACKEND``/sim.

    Raises :class:`~repro.errors.SimulationError` for unknown names so a
    typo in a config or the environment fails loudly at construction time,
    not as a silently-wrong default.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    normalized = str(name).strip().lower()
    if normalized not in BACKEND_NAMES:
        raise SimulationError(
            f"unknown execution backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return normalized
