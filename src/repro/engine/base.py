"""The execution-backend contract: functional execution, pluggable cost.

Every scheme drives ``state = T[state, sym]`` through an
:class:`ExecutionBackend` instead of a concrete executor.  The contract has
two halves:

* **function** — ``run_batch`` maps ``(chunks, starts, lengths, active,
  chunk_ids)`` to end states, and is required to be *bit-identical* across
  backends (the differential and hypothesis suites enforce this for every
  scheme × DFA × input);
* **cost** — an optional :class:`CostSink` (in practice a
  :class:`~repro.gpu.stats.KernelStats` ledger) the backend may charge.
  Only backends with :attr:`ExecutionBackend.accounts_cycles` set populate
  it; answer-only backends accept the ledger for signature parity and leave
  it untouched.

Backend selection is by name (``"sim"``, ``"fast"``); when no name is given
the ``REPRO_BACKEND`` environment variable decides, defaulting to ``"sim"``
so existing cost-model workflows are unchanged.
"""

from __future__ import annotations

import os
from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.errors import SimulationError

#: Environment variable consulted when no backend name is given explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The default backend: full cycle-accurate simulation.
DEFAULT_BACKEND = "sim"

#: Names accepted by :func:`resolve_backend_name`, in registration order.
BACKEND_NAMES: Tuple[str, ...] = ("sim", "fast")


@runtime_checkable
class CostSink(Protocol):
    """The ledger slice a cycle-accounting backend charges into.

    Structurally matched by :class:`~repro.gpu.stats.KernelStats`; the
    protocol exists so future backends (and tests) can depend on the engine
    layer without importing the GPU cost model.
    """

    transitions: int
    redundant_transitions: int
    shared_accesses: int
    global_accesses: int

    def charge(self, phase: str, cycles: float) -> None:
        """Add ``cycles`` to the total and to ``phase``'s bucket."""
        ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """One way of executing chunk batches of DFA transitions.

    Implementations must agree on the *functional* result for identical
    inputs; they differ only in what else they compute (cycle accounting,
    metrics) and how fast they run on the host.
    """

    #: Registry name (``"sim"``, ``"fast"`` …).
    name: str
    #: Whether ``run_batch`` charges the ``stats`` ledger it is handed.
    accounts_cycles: bool

    def run_batch(
        self,
        chunks: np.ndarray,
        starts: np.ndarray,
        *,
        stats: Optional[CostSink] = None,
        phase: str = "execution",
        lengths: Optional[np.ndarray] = None,
        active: Optional[np.ndarray] = None,
        count_redundant: Optional[np.ndarray] = None,
        chunk_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance each thread through its chunk; return the end states.

        Semantics (shared by all backends): inactive lanes keep their start
        state; positions at or beyond a lane's ``lengths`` entry are
        skipped; ``chunk_ids``/``count_redundant`` only influence cost
        accounting and may be ignored by answer-only backends.
        """
        ...

    def run_gathered(
        self,
        input_chunks: np.ndarray,
        chunk_ids: np.ndarray,
        starts: np.ndarray,
        **kwargs,
    ) -> np.ndarray:
        """Run with an explicit thread→chunk assignment (broken binding)."""
        ...


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Normalize a backend name, falling back to ``$REPRO_BACKEND``/sim.

    Raises :class:`~repro.errors.SimulationError` for unknown names so a
    typo in a config or the environment fails loudly at construction time,
    not as a silently-wrong default.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    normalized = str(name).strip().lower()
    if normalized not in BACKEND_NAMES:
        raise SimulationError(
            f"unknown execution backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return normalized
