"""Pluggable execution backends: the algorithm/engine split.

The speculation pipeline (predict → speculate → verify/recover → merge)
is pure algorithm; *how* each batch of transitions actually executes — and
whether simulated cycles are accounted — is an
:class:`~repro.engine.base.ExecutionBackend`:

* ``"sim"`` — :class:`~repro.engine.sim.SimBackend`: the cycle-accurate
  lockstep executor with the memory model, warp timing and metrics.  The
  default; what every paper figure is measured with.
* ``"fast"`` — :class:`~repro.engine.fast.FastBackend`: an answer-only
  flattened-gather numpy path for production serving, where simulated
  cycles are irrelevant and wall clock is everything.

End states are bit-identical across backends for every scheme (enforced by
the differential and hypothesis suites); only ``sim`` populates the cycle
ledger.  Select a backend via ``GpuSimulator(backend=...)``,
``GSpecPalConfig(backend=...)``, the ``--backend`` CLI flag, or the
``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    CostSink,
    ExecutionBackend,
    resolve_backend_name,
)
from repro.engine.fast import FastBackend
from repro.engine.fused import FusedBatchEngine, FusedDispatchResult
from repro.engine.sim import SimBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "CostSink",
    "ExecutionBackend",
    "FastBackend",
    "FusedBatchEngine",
    "FusedDispatchResult",
    "SimBackend",
    "create_backend",
    "resolve_backend_name",
]


def create_backend(
    name: Optional[str],
    *,
    executor=None,
    table=None,
) -> ExecutionBackend:
    """Build the named backend (``None`` → ``$REPRO_BACKEND`` or ``sim``).

    Parameters
    ----------
    executor:
        The :class:`~repro.gpu.executor.LockstepExecutor` the ``sim``
        backend wraps (required for ``sim``).
    table:
        The executor-space transition table the ``fast`` backend gathers
        from (required for ``fast``).
    """
    resolved = resolve_backend_name(name)
    if resolved == "sim":
        if executor is None:
            raise ValueError("the sim backend needs an executor to wrap")
        return SimBackend(executor)
    if table is None:
        raise ValueError("the fast backend needs a transition table")
    return FastBackend(table)
