"""Cross-stream fused batch execution: many streams, one lockstep gather.

The serving tier multiplexes N concurrent streams over one
:class:`~repro.plan.CompiledPlan`, but a per-stream ``feed`` pays N separate
numpy dispatches per segment — partitioning, prediction and recovery rounds
for every stream, however short its segment.  :class:`FusedBatchEngine`
widens the flattened-table gather of :class:`~repro.engine.fast.FastBackend`
across *streams*: all segments that share one plan advance in a single
``(streams × lanes)`` lockstep batch, one vectorized gather per symbol
position, with ragged segment lengths handled by **length-sorted grouping**
— streams are ordered by descending segment length so the working set at
every position is a contiguous prefix slice, never a boolean mask.

Semantics contract (pinned by ``tests/engine/test_fused_differential.py``
and the serving property suite): a fused dispatch is *answer-identical* to
feeding every stream sequentially through its own
:class:`~repro.framework.gspecpal.StreamSession` — same end states, same
accepts, for every scheme and both backends, for any segmentation.  Fused
execution is answer-only: no speculation is performed across the batch, so
no cycle ledger is charged (a stream fed through the fused path reports
``total_cycles = NaN``, exactly like the ``fast`` backend's contract).

With self-checking enabled (``REPRO_SELFCHECK=1`` or an explicit flag) the
dispatch runs block-wise and stashes a per-stream *frontier* — the carried
state at every symbol-block boundary — so
:func:`repro.selfcheck.audit.audit_fused_dispatch` can re-verify both the
end-state oracle and the frontier chain for every stream instead of the
audits being silently bypassed by the fused fast path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.automata.dfa import STATE_DTYPE, _as_symbol_array
from repro.errors import SimulationError

#: Symbol-block width used by the self-checking (frontier-stashing) path.
DEFAULT_BLOCK = 128


class FusedDispatchResult:
    """Outcome of one fused cross-stream dispatch.

    Attributes
    ----------
    end_states:
        ``(n_streams,)`` end states in the *original* (user-space) DFA
        numbering, aligned with the dispatch's input order.
    n_streams / total_symbols:
        Batch width and total symbols advanced across all streams.
    frontiers:
        ``None`` unless self-checking ran; otherwise, per stream, the list
        of ``(position, user_state)`` snapshots taken at symbol-block
        boundaries (the audit's chain evidence).
    """

    __slots__ = ("end_states", "n_streams", "total_symbols", "frontiers")

    def __init__(self, end_states, n_streams, total_symbols, frontiers=None):
        self.end_states = end_states
        self.n_streams = n_streams
        self.total_symbols = total_symbols
        self.frontiers = frontiers


class FusedBatchEngine:
    """Gang-schedule many same-plan streams into one lockstep batch.

    Parameters
    ----------
    sim:
        The shared :class:`~repro.gpu.kernel.GpuSimulator` — supplies the
        (possibly frequency-transformed) execution table, the backend and
        the user↔executor state translation.  One engine serves any number
        of dispatches; it holds no per-stream state.
    selfcheck:
        Explicit audit switch; ``None`` defers to ``REPRO_SELFCHECK``.
    block:
        Symbol-block width for the self-checking path's frontier snapshots.
    """

    def __init__(self, sim, *, selfcheck: Optional[bool] = None, block: int = DEFAULT_BLOCK):
        from repro.selfcheck.audit import selfcheck_enabled

        if block < 1:
            raise SimulationError(f"block must be >= 1, got {block}")
        self.sim = sim
        self.dfa = sim.dfa
        self.engine = sim.engine
        self.selfcheck = selfcheck_enabled(selfcheck)
        self.block = int(block)

    @property
    def backend_name(self) -> str:
        return self.engine.name

    # ------------------------------------------------------------------
    def run_streams(self, segments: Sequence, starts: Sequence[int]) -> np.ndarray:
        """Advance every stream through its segment; return user-space ends.

        ``segments`` may be ragged (any mix of lengths, empty segments
        included); ``starts`` are the streams' carried states in the
        original DFA numbering.  Equivalent to
        ``[dfa.run(seg, start=s) for seg, s in zip(segments, starts)]`` —
        and therefore to the per-stream sequential serving path — computed
        as one fused batch.
        """
        return self.dispatch(segments, starts).end_states

    def dispatch(self, segments: Sequence, starts: Sequence[int]) -> FusedDispatchResult:
        """Like :meth:`run_streams` but returns the full dispatch record."""
        symbol_rows: List[np.ndarray] = [_as_symbol_array(seg) for seg in segments]
        n_streams = len(symbol_rows)
        starts_arr = np.asarray(list(starts), dtype=np.int64)
        if starts_arr.shape != (n_streams,):
            raise SimulationError(
                f"starts must match the number of streams "
                f"({starts_arr.shape} vs {n_streams} segments)"
            )
        lengths = np.array([row.size for row in symbol_rows], dtype=np.int64)
        total_symbols = int(lengths.sum())
        if n_streams == 0:
            return FusedDispatchResult(
                np.empty(0, dtype=STATE_DTYPE), 0, 0,
                frontiers=[] if self.selfcheck else None,
            )

        exec_starts = np.asarray(
            self.sim.to_exec_states(starts_arr), dtype=np.int64
        )
        max_len = int(lengths.max(initial=0))
        if max_len == 0:
            # Every segment empty: carried states pass through untouched.
            ends = np.asarray(starts_arr, dtype=STATE_DTYPE).copy()
            frontiers = [[] for _ in range(n_streams)] if self.selfcheck else None
            result = FusedDispatchResult(ends, n_streams, 0, frontiers)
            if self.selfcheck:
                self._audit(symbol_rows, starts_arr, result)
            return result

        # Length-sorted grouping: descending segment length makes the
        # still-working streams a prefix at every position, so the inner
        # loop slices instead of masking.  Stable sort keeps equal-length
        # streams in input order (determinism under audit).
        order = np.argsort(-lengths, kind="stable")
        sorted_lengths = lengths[order]
        padded = np.zeros((n_streams, max_len), dtype=np.int64)
        for rank, idx in enumerate(order):
            row = symbol_rows[idx]
            if row.size:
                padded[rank, : row.size] = row

        if self.selfcheck:
            exec_ends_sorted, frontier_snaps = self._run_blockwise(
                padded, exec_starts[order], sorted_lengths
            )
        else:
            exec_ends_sorted = self._run_fused(
                padded, exec_starts[order], sorted_lengths
            )
            frontier_snaps = None

        inverse = np.empty(n_streams, dtype=np.int64)
        inverse[order] = np.arange(n_streams)
        exec_ends = np.asarray(exec_ends_sorted, dtype=np.int64)[inverse]
        ends = np.asarray(
            self.sim.to_user_states(exec_ends), dtype=STATE_DTYPE
        )

        frontiers = None
        if frontier_snaps is not None:
            frontiers = [
                [
                    (pos, int(self.sim.to_user_state(state)))
                    for pos, state in frontier_snaps[int(inverse[i])]
                ]
                for i in range(n_streams)
            ]
        result = FusedDispatchResult(ends, n_streams, total_symbols, frontiers)
        if self.selfcheck:
            self._audit(symbol_rows, starts_arr, result)
        return result

    # ------------------------------------------------------------------
    def _run_fused(self, padded, starts, lengths) -> np.ndarray:
        """One fused dispatch over descending-length-sorted lanes."""
        run_streams = getattr(self.engine, "run_streams", None)
        if run_streams is not None:
            return run_streams(padded, starts, lengths)
        # Generic backend (``sim``): the lockstep executor already handles
        # ragged lengths; a pure functional run (no ledger) keeps the fused
        # path answer-only on every backend.
        return self.engine.run_batch(padded, starts, stats=None, lengths=lengths)

    def _run_blockwise(self, padded, starts, lengths):
        """Self-checking path: advance block by block, snapshot frontiers.

        Returns the sorted-order end states plus, per sorted lane, the
        ``(position, exec_state)`` snapshots at every block boundary the
        lane was still working at.
        """
        n_streams, max_len = padded.shape
        states = np.asarray(starts, dtype=np.int64).copy()
        snaps: List[list] = [[] for _ in range(n_streams)]
        for base in range(0, max_len, self.block):
            width = min(self.block, max_len - base)
            # Working prefix: lanes whose segment extends past ``base``
            # (lengths descending ⇒ they form a prefix).
            k = int(np.searchsorted(-lengths, -base, side="left"))
            if k == 0:
                break
            sub_lengths = np.minimum(lengths[:k] - base, width)
            states[:k] = self.engine.run_batch(
                padded[:k, base : base + width],
                states[:k],
                stats=None,
                lengths=sub_lengths,
            )
            boundary = base + width
            for lane in range(k):
                pos = min(int(lengths[lane]), boundary)
                snaps[lane].append((pos, int(states[lane])))
        return states, snaps

    def _audit(self, symbol_rows, starts, result) -> None:
        from repro.selfcheck.audit import audit_fused_dispatch

        audit_fused_dispatch(self, symbol_rows, starts, result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedBatchEngine(backend={self.backend_name!r}, "
            f"selfcheck={self.selfcheck})"
        )
