"""Tracer/Span unit tests: nesting, cycle stamping, export, null objects."""

import json

import pytest

from repro.observability import NULL_SPAN, NULL_TRACER, Span, Tracer
from repro.observability.tracer import SPAN_SCHEMA_KEYS


class FakeLedger:
    """Stand-in for KernelStats: just a mutable .cycles."""

    def __init__(self):
        self.cycles = 0.0


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.5
        return self.t


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                with tracer.span("a1") as a1:
                    pass
            with tracer.span("b") as b:
                pass
        assert tracer.roots == [root]
        assert root.children == [a, b]
        assert a.children == [a1]
        assert (root.depth, a.depth, a1.depth) == (0, 1, 2)
        assert a1.parent_id == a.span_id

    def test_iteration_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["root", "a", "a1", "b"]

    def test_find_and_find_all(self):
        tracer = Tracer()
        with tracer.span("run"):
            for i in range(3):
                with tracer.span("round", index=i):
                    pass
        assert tracer.find("run").name == "run"
        assert tracer.find("missing") is None
        rounds = tracer.find_all("round")
        assert [s.attrs["index"] for s in rounds] == [0, 1, 2]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_clear_resets(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == [] and list(tracer.iter_spans()) == []


class TestCycleStamping:
    def test_cycles_follow_the_source(self):
        ledger = FakeLedger()
        tracer = Tracer()
        with tracer.span("run", cycle_source=ledger) as run:
            ledger.cycles += 100.0
            with tracer.span("inner", cycle_source=ledger) as inner:
                ledger.cycles += 40.0
        assert inner.cycle_start == 100.0 and inner.cycle_end == 140.0
        assert inner.cycles == 40.0
        assert run.cycles == 140.0

    def test_explicit_cycle_start_override(self):
        """The launch-span pattern: claim charges made before opening."""
        ledger = FakeLedger()
        ledger.cycles = 2000.0  # pre-charged launch overhead
        tracer = Tracer()
        with tracer.span("launch", cycle_source=ledger, cycle_start=0.0) as s:
            pass
        assert s.cycles == 2000.0

    def test_sourceless_span_has_zero_cycles(self):
        tracer = Tracer()
        with tracer.span("outer") as s:
            pass
        assert s.cycles == 0.0
        assert s.cycle_start is None

    def test_wall_clock_stamps(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("t") as s:
            pass
        assert s.wall_end > s.wall_start
        assert s.wall_ms == pytest.approx(500.0)

    def test_siblings_tile_their_parent(self):
        """The invariant the scheme phase spans rely on."""
        ledger = FakeLedger()
        tracer = Tracer()
        with tracer.span("run", cycle_source=ledger) as run:
            for charge in (10.0, 25.0, 5.0):
                with tracer.span("phase", cycle_source=ledger):
                    ledger.cycles += charge
        assert sum(c.cycles for c in run.children) == pytest.approx(run.cycles)


class TestExport:
    def test_to_dict_schema(self):
        tracer = Tracer()
        with tracer.span("x", foo=1):
            pass
        record = tracer.to_dicts()[0]
        assert tuple(record.keys()) == SPAN_SCHEMA_KEYS
        assert record["attrs"] == {"foo": 1}

    def test_jsonl_round_trip_with_numpy_attrs(self):
        import numpy as np

        ledger = FakeLedger()
        tracer = Tracer()
        with tracer.span("run", cycle_source=ledger) as s:
            ledger.cycles += 7.0
            s.set_attr("count", np.int64(3))
            s.set_attr("ratio", np.float64(0.5))
            s.set_attr("ends", np.array([1, 2]))
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "run"
        assert record["cycles"] == 7.0
        assert record["attrs"] == {"count": 3, "ratio": 0.5, "ends": [1, 2]}

    def test_empty_tracer_exports_empty(self):
        assert Tracer().to_jsonl() == ""
        assert Tracer().to_dicts() == []


class TestNullObjects:
    def test_null_tracer_returns_shared_null_span(self):
        span = NULL_TRACER.span("anything", cycle_source=object(), attr=1)
        assert span is NULL_SPAN

    def test_null_span_is_falsy_and_inert(self):
        with NULL_TRACER.span("x") as span:
            assert not span
            span.set_attr("ignored", 42)  # must not raise
        assert NULL_TRACER.to_jsonl() == ""
        assert list(NULL_TRACER.iter_spans()) == []
        assert NULL_TRACER.roots == ()

    def test_real_span_is_truthy(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            assert span
        assert isinstance(span, Span)

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False
