"""Golden snapshots of the observability export contracts.

External consumers (dashboards, the benchmark trace dumps, REPORT.md
plumbing) key on ``KernelStats.summary()`` names and the span JSON schema.
These tests pin both — a failure here means a *breaking* contract change:
extend by appending, never rename/remove silently.
"""

import json

import numpy as np

from repro.gpu.device import RTX3090
from repro.gpu.stats import KernelStats
from repro.observability import Tracer
from repro.observability.tracer import SPAN_SCHEMA_KEYS

#: Golden key set of KernelStats.summary() — the benchmark tables' columns.
SUMMARY_KEYS = (
    "cycles",
    "time_ms",
    "transitions",
    "redundant_transitions",
    "shared_accesses",
    "global_accesses",
    "recovery_rounds",
    "avg_active_threads",
    "speculation_accuracy",
)

#: Golden span-record schema — the trace JSONL consumers' field list.
GOLDEN_SPAN_KEYS = (
    "span_id",
    "parent_id",
    "name",
    "depth",
    "wall_start_s",
    "wall_end_s",
    "wall_ms",
    "cycle_start",
    "cycle_end",
    "cycles",
    "attrs",
)


def test_kernel_stats_summary_keys_are_golden():
    stats = KernelStats(device=RTX3090, n_threads=4)
    stats.charge("predict", 10.0)
    assert tuple(stats.summary().keys()) == SUMMARY_KEYS


def test_summary_values_are_plain_floats():
    stats = KernelStats(device=RTX3090, n_threads=4)
    stats.transitions += 5
    for key, value in stats.summary().items():
        assert isinstance(value, float), key


def test_span_schema_constant_is_golden():
    assert SPAN_SCHEMA_KEYS == GOLDEN_SPAN_KEYS


def test_exported_records_follow_the_schema():
    tracer = Tracer()
    ledger = KernelStats(device=RTX3090, n_threads=2)
    with tracer.span("outer", cycle_source=ledger, kind="test") as span:
        ledger.charge("p", 12.5)
        span.set_attr("ends", np.array([1, 2, 3]))
    for record in tracer.to_dicts():
        assert tuple(record.keys()) == GOLDEN_SPAN_KEYS
    # And the JSONL form parses back to the same schema.
    for line in tracer.to_jsonl().splitlines():
        assert tuple(json.loads(line).keys()) == GOLDEN_SPAN_KEYS
