"""MetricsRegistry unit tests: instruments, create-on-first-use, export."""

import pytest

from repro.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        c.inc(0.5)
        assert c.value == 5.5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_moments(self):
        h = Histogram("h")
        for v in (4, 1, 7):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 1.0 and h.max == 7.0
        assert h.mean == pytest.approx(4.0)

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_namespaces_are_separate(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        reg.gauge("y").set(9)
        assert reg.counter("x").value == 2
        assert reg.gauge("y").value == 9

    def test_as_dict_expands_histograms_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(3)
        reg.gauge("a.level").set(0.25)
        h = reg.histogram("m.lanes")
        h.observe(2)
        h.observe(6)
        flat = reg.as_dict()
        assert list(flat) == sorted(flat)
        assert flat["a.level"] == 0.25
        assert flat["z.count"] == 3
        assert flat["m.lanes.count"] == 2.0
        assert flat["m.lanes.mean"] == 4.0
        assert flat["m.lanes.min"] == 2.0
        assert flat["m.lanes.max"] == 6.0

    def test_empty_histogram_exports_zero_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        flat = reg.as_dict()
        assert flat["h.min"] == 0.0 and flat["h.max"] == 0.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert len(reg) == 0
        assert reg.as_dict() == {}
        assert reg.counter("a").value == 0.0
