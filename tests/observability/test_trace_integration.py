"""End-to-end tracing acceptance tests.

The two load-bearing guarantees:

1. **The spans tile the ledger.**  For every scheme, the depth-1 phase spans
   under the ``scheme:*`` root (launch, predict, speculative execution, the
   per-round verify/recover spans, merge) sum *exactly* to
   ``SchemeResult.cycles`` — the trace is an exhaustive decomposition of the
   cost model, not a sample of it.
2. **Tracing is free when off and inert when on.**  A run with the default
   no-op tracer and a traced run produce identical results, ledgers
   included.
"""

import numpy as np
import pytest

from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import MetricsRegistry, Tracer
from repro.workloads import classic

ALL_SCHEMES = ("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq")
#: Schemes running the predict/speculate/verify/merge pipeline.
SPECULATIVE_SCHEMES = ("pm", "sre", "rr", "nf", "spec-seq")


@pytest.fixture(scope="module")
def rotator_dfa():
    """Non-converging FSM: guarantees mismatch (recovery) rounds."""
    return classic.cyclic_rotator(12, n_symbols=64)


def make_pal(dfa, tracer=None, metrics=None, n_threads=8, lo=0, hi=64):
    rng = np.random.default_rng(99)
    training = bytes(rng.integers(lo, hi, size=160).astype(np.uint8))
    return GSpecPal(
        dfa,
        # Pinned to the sim backend: these tests assert on executor/memory
        # counters and cycle tiling, which only SimBackend produces.
        GSpecPalConfig(n_threads=n_threads, backend="sim"),
        training_input=training,
        tracer=tracer,
        metrics=metrics,
    )


def make_data(n=360, lo=0, hi=64):
    rng = np.random.default_rng(7)
    return bytes(rng.integers(lo, hi, size=n).astype(np.uint8))


def scheme_root(tracer):
    roots = [s for s in tracer.iter_spans() if s.name.startswith("scheme:")]
    assert len(roots) == 1
    return roots[0]


class TestSpanTreeShape:
    @pytest.mark.parametrize("scheme", SPECULATIVE_SCHEMES)
    def test_pipeline_phases_present(self, rotator_dfa, scheme):
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        pal.run(make_data(), scheme=scheme)
        root = scheme_root(tracer)
        names = [c.name for c in root.children]
        assert "launch" in names
        assert "predict" in names
        assert "speculative_execution" in names
        assert "merge" in names
        # The rotator never converges, so recovery rounds must appear.
        rounds = [c for c in root.children if c.name == "verify_recover.round"]
        assert rounds, f"{scheme}: no verify/recovery round spans"
        for r in rounds:
            assert "matched" in r.attrs and "active_threads" in r.attrs

    def test_frontier_schemes_emit_one_span_per_round(self, rotator_dfa):
        """SRE/RR/NF sweep one frontier round per chunk — exactly n spans,
        with mismatch rounds matching the ledger's count."""
        for scheme in ("sre", "rr", "nf"):
            tracer = Tracer()
            pal = make_pal(rotator_dfa, tracer=tracer)
            result = pal.run(make_data(), scheme=scheme)
            rounds = tracer.find_all("verify_recover.round")
            assert len(rounds) == result.n_chunks, scheme
            assert [r.attrs["frontier"] for r in rounds] == list(
                range(result.n_chunks)
            )
            mismatches = sum(1 for r in rounds if not r.attrs["matched"])
            assert mismatches == result.stats.mismatches, scheme

    def test_framework_root_wraps_everything(self, rotator_dfa):
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        pal.run(make_data())  # selector picks
        assert len(tracer.roots) == 1
        run_span = tracer.roots[0]
        assert run_span.name == "gspecpal.run"
        child_names = [c.name for c in run_span.children]
        assert "select" in child_names
        assert any(n.startswith("scheme:") for n in child_names)
        assert run_span.attrs["forced"] is False
        assert run_span.attrs["scheme"] == pal.select_scheme()

    def test_selector_span_records_features_and_path(self, rotator_dfa):
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        pal.run(make_data())
        select = tracer.find("select")
        assert select is not None
        assert select.attrs["decision"] in GSpecPal.SELECTABLE
        assert select.attrs["path"], "decision path must list visited nodes"
        features = select.attrs["features"]
        assert "spec1_accuracy" in features and "convergence_states" in features

    def test_compare_nests_one_traced_run_per_scheme(self, rotator_dfa):
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        names = ("rr", "nf", "seq")
        pal.compare_schemes(make_data(), schemes=names)
        assert len(tracer.roots) == 1
        compare = tracer.roots[0]
        assert compare.name == "gspecpal.compare"
        assert compare.attrs["schemes"] == list(names)
        runs = [c for c in compare.children if c.name == "gspecpal.run"]
        assert [r.attrs["scheme"] for r in runs] == list(names)
        # Each compared scheme gets the full traced pipeline of a normal run.
        for run in runs:
            assert any(c.name.startswith("scheme:") for c in run.children)
            assert run.attrs["forced"] is True


class TestCycleTiling:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_phase_spans_sum_to_result_cycles(self, rotator_dfa, scheme):
        """The acceptance bar: sibling phase spans tile the whole ledger."""
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        result = pal.run(make_data(), scheme=scheme)
        root = scheme_root(tracer)
        assert root.cycles == pytest.approx(result.cycles, rel=1e-12)
        phase_sum = sum(c.cycles for c in root.children)
        assert phase_sum == pytest.approx(result.cycles, rel=1e-12), scheme

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_phase_spans_are_contiguous(self, rotator_dfa, scheme):
        """Each phase opens exactly where its predecessor closed."""
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        pal.run(make_data(), scheme=scheme)
        children = scheme_root(tracer).children
        for prev, nxt in zip(children, children[1:]):
            assert nxt.cycle_start == pytest.approx(prev.cycle_end), scheme


class TestZeroCostWhenDisabled:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_traced_and_untraced_results_identical(self, rotator_dfa, scheme):
        data = make_data()
        plain = make_pal(rotator_dfa).run(data, scheme=scheme)
        traced = make_pal(rotator_dfa, tracer=Tracer()).run(data, scheme=scheme)
        assert plain.end_state == traced.end_state
        assert plain.accepts == traced.accepts
        assert plain.cycles == traced.cycles  # exact, not approx
        assert plain.stats.phase_cycles == traced.stats.phase_cycles
        assert plain.stats.summary() == traced.stats.summary()
        if plain.chunk_ends is None:
            assert traced.chunk_ends is None
        else:
            np.testing.assert_array_equal(plain.chunk_ends, traced.chunk_ends)

    def test_metrics_do_not_disturb_the_ledger(self, rotator_dfa):
        data = make_data()
        plain = make_pal(rotator_dfa).run(data, scheme="rr")
        metered = make_pal(rotator_dfa, metrics=MetricsRegistry()).run(
            data, scheme="rr"
        )
        assert plain.cycles == metered.cycles
        assert plain.stats.summary() == metered.stats.summary()


class TestMetricsIntegration:
    def test_framework_run_populates_executor_and_memory_counters(
        self, rotator_dfa
    ):
        registry = MetricsRegistry()
        pal = make_pal(rotator_dfa, metrics=registry)
        result = pal.run(make_data(), scheme="nf")
        flat = registry.as_dict()
        assert flat["executor.batches"] >= 1
        # Counters agree with the stats ledger's own accounting.
        assert flat["executor.transitions"] == result.stats.transitions
        # Every executor transition is exactly one table lookup; the ledger
        # additionally counts predict-phase lookups charged outside the
        # executor, so the metrics totals are a lower bound of the ledger's.
        executor_lookups = (
            flat["memory.shared_accesses"] + flat["memory.global_accesses"]
        )
        assert executor_lookups == flat["executor.transitions"]
        assert executor_lookups <= (
            result.stats.shared_accesses + result.stats.global_accesses
        )
        assert flat["executor.active_lanes.max"] <= pal.config.n_threads

    def test_trace_jsonl_export_from_real_run(self, rotator_dfa, tmp_path):
        tracer = Tracer()
        pal = make_pal(rotator_dfa, tracer=tracer)
        pal.run(make_data(), scheme="sre")
        path = tmp_path / "trace.jsonl"
        path.write_text(tracer.to_jsonl())
        import json

        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.to_dicts())
        names = {json.loads(line)["name"] for line in lines}
        assert {"gspecpal.run", "predict", "merge"} <= names

    def test_render_timeline_smoke(self, rotator_dfa):
        from repro.observability import render_metrics, render_timeline

        tracer = Tracer()
        registry = MetricsRegistry()
        pal = make_pal(rotator_dfa, tracer=tracer, metrics=registry)
        pal.run(make_data(), scheme="rr")
        text = render_timeline(tracer, max_run=4)
        assert "scheme:rr" in text and "verify_recover.round" in text
        assert "more" in text  # the 8 round spans exceed max_run=4: elided
        assert "executor.transitions" in render_metrics(registry)
