"""GpuSimulator facade tests (transformation wiring, state translation)."""

import numpy as np
import pytest

from repro.gpu.device import RTX3090
from repro.gpu.kernel import GpuSimulator, KernelPhase
from repro.gpu.memory import TableLayout
from repro.errors import SimulationError


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(48, 50, size=1000).astype(np.uint8))


def test_transformation_enabled(div7, training):
    sim = GpuSimulator(dfa=div7, use_transformation=True, training_input=training)
    assert sim.transformed is not None
    assert sim.memory.layout is TableLayout.RANK


def test_transformation_requires_profile(div7):
    with pytest.raises(SimulationError):
        GpuSimulator(dfa=div7, use_transformation=True)


def test_hash_layout_without_transformation(div7, training):
    sim = GpuSimulator(dfa=div7, use_transformation=False, training_input=training)
    assert sim.transformed is None
    assert sim.memory.layout is TableLayout.HASH
    assert sim.memory.hot_state_ids is not None


def test_hash_layout_without_profile_defaults(div7):
    sim = GpuSimulator(dfa=div7, use_transformation=False)
    assert sim.memory.layout is TableLayout.HASH


def test_state_translation_roundtrip(div7, training):
    sim = GpuSimulator(dfa=div7, use_transformation=True, training_input=training)
    for q in range(7):
        assert sim.to_user_state(sim.to_exec_state(q)) == q
    states = np.arange(7)
    assert np.array_equal(sim.to_user_states(sim.to_exec_states(states)), states)


def test_translation_identity_without_transform(div7, training):
    sim = GpuSimulator(dfa=div7, use_transformation=False, training_input=training)
    assert sim.to_exec_state(5) == 5
    assert sim.to_user_state(5) == 5


def test_exec_semantics_match(div7, training, rng):
    sim = GpuSimulator(dfa=div7, use_transformation=True, training_input=training)
    data = bytes(rng.integers(48, 50, size=300).astype(np.uint8))
    end_exec = sim.exec_dfa.run(data, start=sim.exec_start_state)
    assert sim.to_user_state(end_exec) == div7.run(data)


def test_new_stats_charges_launch(div7, training):
    sim = GpuSimulator(dfa=div7, use_transformation=True, training_input=training)
    stats = sim.new_stats(n_threads=8)
    assert stats.cycles == RTX3090.launch_overhead_cycles
    assert KernelPhase.LAUNCH in stats.phase_cycles
