"""Warp-timing primitive tests."""

import numpy as np
import pytest

from repro.gpu.device import DeviceSpec
from repro.gpu.warp import lockstep_phase_time, warp_step_cycles, warp_time
from repro.errors import SimulationError


@pytest.fixture()
def dev():
    return DeviceSpec(warp_size=4, n_sms=2, max_resident_warps_per_sm=2)


def test_warp_step_is_max_over_lanes(dev):
    lanes = np.array([1.0, 5.0, 2.0, 3.0, 10.0])  # 2 warps (padded)
    out = warp_step_cycles(lanes, dev)
    assert out.tolist() == [5.0, 10.0]


def test_warp_time_concurrent(dev):
    lanes = np.array([100.0, 50.0, 10.0, 10.0])
    assert warp_time(lanes, dev) == 100.0


def test_warp_time_oversubscribed(dev):
    # 8 warps of cost 10 on a device holding 4 warps: work-conserving split.
    lanes = np.full(8 * dev.warp_size, 10.0)
    t = warp_time(lanes, dev)
    assert t == pytest.approx(8 * 10.0 / dev.max_concurrent_warps)


def test_warp_time_empty(dev):
    assert warp_time(np.array([]), dev) == 0.0


def test_rejects_2d_lanes(dev):
    with pytest.raises(SimulationError):
        warp_step_cycles(np.zeros((2, 2)), dev)


class TestLockstepPhaseTime:
    def test_all_hot(self, dev):
        mask = np.ones((10, 4), dtype=bool)
        t = lockstep_phase_time(mask, dev)
        assert t == 10 * (dev.shared_cycles + dev.transition_compute_cycles)

    def test_all_cold_serializes_transactions(self, dev):
        mask = np.zeros((1, 4), dtype=bool)
        t = lockstep_phase_time(mask, dev)
        expected = (
            dev.global_cycles
            + 3 * dev.global_issue_cycles
            + dev.transition_compute_cycles
        )
        assert t == expected

    def test_single_cold_lane_costs_global(self, dev):
        mask = np.ones((1, 4), dtype=bool)
        mask[0, 2] = False
        t = lockstep_phase_time(mask, dev)
        assert t == dev.global_cycles + dev.transition_compute_cycles

    def test_padding_lanes_are_hot(self, dev):
        # 5 threads -> 2 warps; the padded lanes must not add cost.
        mask = np.ones((1, 5), dtype=bool)
        t = lockstep_phase_time(mask, dev)
        assert t == dev.shared_cycles + dev.transition_compute_cycles

    def test_extra_cycles_per_step(self, dev):
        mask = np.ones((3, 4), dtype=bool)
        base = lockstep_phase_time(mask, dev)
        extra = lockstep_phase_time(mask, dev, extra_cycles_per_step=7.0)
        assert extra == base + 3 * 7.0

    def test_empty_phase(self, dev):
        assert lockstep_phase_time(np.ones((0, 4), dtype=bool), dev) == 0.0

    def test_rejects_1d(self, dev):
        with pytest.raises(SimulationError):
            lockstep_phase_time(np.ones(4, dtype=bool), dev)
