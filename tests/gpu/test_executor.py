"""Lockstep-executor tests: functional equivalence + cost accounting."""

import numpy as np
import pytest

from repro.gpu.device import DeviceSpec
from repro.gpu.executor import LockstepExecutor
from repro.gpu.memory import MemoryModel, TableLayout
from repro.gpu.stats import KernelStats
from repro.errors import SimulationError


@pytest.fixture()
def dev():
    return DeviceSpec(warp_size=4, n_sms=4, max_resident_warps_per_sm=8)


@pytest.fixture()
def executor(div7, dev):
    mm = MemoryModel(device=dev, hot_state_count=3, layout=TableLayout.RANK)
    return LockstepExecutor(div7.table, mm, dev)


def make_chunks(rng, n, length):
    return rng.integers(48, 50, size=(n, length)).astype(np.uint8)


class TestFunctional:
    def test_matches_scalar_runs(self, executor, div7, rng):
        chunks = make_chunks(rng, 6, 30)
        starts = rng.integers(0, 7, size=6)
        ends = executor.run(chunks, starts)
        for t in range(6):
            assert ends[t] == div7.run(chunks[t], start=int(starts[t]))

    def test_inactive_lanes_keep_start(self, executor, rng):
        chunks = make_chunks(rng, 4, 10)
        starts = np.array([1, 2, 3, 4])
        active = np.array([True, False, True, False])
        ends = executor.run(chunks, starts, active=active)
        assert ends[1] == 2 and ends[3] == 4

    def test_lengths_truncate(self, executor, div7, rng):
        chunks = make_chunks(rng, 2, 20)
        starts = np.zeros(2, dtype=np.int64)
        lengths = np.array([5, 20])
        ends = executor.run(chunks, starts, lengths=lengths)
        assert ends[0] == div7.run(chunks[0, :5])
        assert ends[1] == div7.run(chunks[1])

    def test_run_gathered(self, executor, div7, rng):
        chunks = make_chunks(rng, 3, 15)
        cids = np.array([2, 0, 2])
        starts = np.array([0, 1, 3])
        ends = executor.run_gathered(chunks, cids, starts)
        for t in range(3):
            assert ends[t] == div7.run(chunks[cids[t]], start=int(starts[t]))

    def test_zero_length_chunks(self, executor):
        ends = executor.run(np.zeros((3, 0), dtype=np.uint8), np.array([1, 2, 3]))
        assert ends.tolist() == [1, 2, 3]

    def test_bad_starts_shape(self, executor, rng):
        with pytest.raises(SimulationError):
            executor.run(make_chunks(rng, 3, 4), np.zeros(2, dtype=np.int64))

    def test_bad_lengths(self, executor, rng):
        with pytest.raises(SimulationError):
            executor.run(
                make_chunks(rng, 2, 4),
                np.zeros(2, dtype=np.int64),
                lengths=np.array([10, 2]),
            )


class TestAccounting:
    def test_transition_count(self, executor, dev, rng):
        chunks = make_chunks(rng, 4, 25)
        stats = KernelStats(device=dev, n_threads=4)
        executor.run(chunks, np.zeros(4, dtype=np.int64), stats=stats)
        assert stats.transitions == 4 * 25

    def test_hot_cold_split_sums(self, executor, dev, rng):
        chunks = make_chunks(rng, 4, 25)
        stats = KernelStats(device=dev, n_threads=4)
        executor.run(chunks, np.zeros(4, dtype=np.int64), stats=stats)
        assert stats.shared_accesses + stats.global_accesses == stats.transitions

    def test_all_hot_phase_cost(self, div7, dev, rng):
        mm = MemoryModel(device=dev, hot_state_count=7)  # whole DFA hot
        ex = LockstepExecutor(div7.table, mm, dev)
        stats = KernelStats(device=dev, n_threads=4)
        chunks = make_chunks(rng, 4, 10)
        ex.run(chunks, np.zeros(4, dtype=np.int64), stats=stats, phase="p")
        per_step = (
            dev.shared_cycles
            + dev.transition_compute_cycles
            # 4 distinct chunks in the warp: one stream + 3 extra issues
            + dev.input_fetch_cycles + 3 * dev.input_issue_cycles
        )
        assert stats.phase_cycles["p"] == pytest.approx(10 * per_step)
        assert stats.global_accesses == 0

    def test_all_cold_phase_cost(self, div7, dev, rng):
        mm = MemoryModel(device=dev, hot_state_count=0)
        ex = LockstepExecutor(div7.table, mm, dev)
        stats = KernelStats(device=dev, n_threads=4)
        chunks = make_chunks(rng, 4, 10)
        ex.run(chunks, np.zeros(4, dtype=np.int64), stats=stats, phase="p")
        per_step = (
            dev.global_cycles
            + 3 * dev.global_issue_cycles
            + dev.transition_compute_cycles
            + dev.input_fetch_cycles + 3 * dev.input_issue_cycles
        )
        assert stats.phase_cycles["p"] == pytest.approx(10 * per_step)
        assert stats.shared_accesses == 0

    def test_coalesced_input_fetch(self, div7, dev, rng):
        """Lanes sharing one chunk pay one input fetch (the NF effect)."""
        mm = MemoryModel(device=dev, hot_state_count=7)
        ex = LockstepExecutor(div7.table, mm, dev)
        chunks = make_chunks(rng, 4, 10)
        same = KernelStats(device=dev, n_threads=4)
        ex.run_gathered(
            chunks, np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64),
            stats=same, phase="p",
        )
        spread = KernelStats(device=dev, n_threads=4)
        ex.run_gathered(
            chunks, np.arange(4), np.zeros(4, dtype=np.int64),
            stats=spread, phase="p",
        )
        assert same.phase_cycles["p"] < spread.phase_cycles["p"]
        diff = spread.phase_cycles["p"] - same.phase_cycles["p"]
        assert diff == pytest.approx(10 * 3 * dev.input_issue_cycles)

    def test_hash_layout_overhead(self, div7, dev, rng):
        rank = LockstepExecutor(
            div7.table, MemoryModel(device=dev, hot_state_count=7), dev
        )
        hashed = LockstepExecutor(
            div7.table,
            MemoryModel(
                device=dev,
                hot_state_count=7,
                layout=TableLayout.HASH,
                hot_state_ids=frozenset(range(7)),
            ),
            dev,
        )
        chunks = make_chunks(rng, 4, 10)
        s1 = KernelStats(device=dev, n_threads=4)
        s2 = KernelStats(device=dev, n_threads=4)
        rank.run(chunks, np.zeros(4, dtype=np.int64), stats=s1, phase="p")
        hashed.run(chunks, np.zeros(4, dtype=np.int64), stats=s2, phase="p")
        expected_extra = 10 * (dev.shared_cycles + dev.hash_compute_cycles)
        assert s2.phase_cycles["p"] - s1.phase_cycles["p"] == pytest.approx(expected_extra)

    def test_redundant_counting(self, executor, dev, rng):
        chunks = make_chunks(rng, 4, 10)
        stats = KernelStats(device=dev, n_threads=4)
        mask = np.array([True, False, False, True])
        executor.run(
            chunks, np.zeros(4, dtype=np.int64), stats=stats, count_redundant=mask
        )
        assert stats.redundant_transitions == 2 * 10

    def test_idle_lanes_do_not_reduce_warp_time(self, div7, dev, rng):
        """One active lane in a warp costs as much as a full warp step-wise
        (idle lanes are wasted, not saved) — modulo divergent-load issue."""
        mm = MemoryModel(device=dev, hot_state_count=0)
        ex = LockstepExecutor(div7.table, mm, dev)
        chunks = make_chunks(rng, 4, 10)
        solo = KernelStats(device=dev, n_threads=4)
        ex.run(
            chunks,
            np.zeros(4, dtype=np.int64),
            stats=solo,
            active=np.array([True, False, False, False]),
            phase="p",
        )
        # Single active cold lane still pays the full global latency/step.
        assert solo.phase_cycles["p"] >= 10 * dev.global_cycles
