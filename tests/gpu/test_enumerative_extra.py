"""Cross-validation: the enumerative scheme's chunk functions double as an
independent oracle for the lockstep executor and all chunk-composition
logic."""

import numpy as np
import pytest

from repro.schemes import EnumerativeScheme, NFScheme
from repro.speculation.chunks import partition_input
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA


@pytest.fixture(scope="module")
def dfa():
    comp = counter_component(7, n_symbols=32, seed=11)
    return DFA(table=comp.table, start=0, accepting=frozenset({0}))


def test_chunk_function_composition_equals_direct_run(dfa, rng):
    """Composing per-chunk Q->Q functions equals running the whole stream —
    the algebraic identity the enumerative scheme (and every speculative
    scheme's correctness) rests on."""
    data = rng.integers(0, 32, size=640).astype(np.uint8)
    p = partition_input(data, 8)
    # Chunk functions computed the slow way.
    fns = [dfa.run_all_states(p.chunk(i)) for i in range(8)]
    state = dfa.start
    for fn in fns:
        state = int(fn[state])
    assert state == dfa.run(data)


def test_enum_and_nf_agree(dfa, rng):
    data = bytes(rng.integers(0, 32, size=640).astype(np.uint8))
    training = bytes(rng.integers(0, 32, size=160).astype(np.uint8))
    enum = EnumerativeScheme.for_dfa(dfa, n_threads=8, training_input=training)
    nf = NFScheme.for_dfa(dfa, n_threads=8, training_input=training)
    assert enum.run(data).end_state == nf.run(data).end_state


def test_enum_oversubscription_scales_cost(dfa, rng):
    """n_threads × n_states lanes beyond device residency must be charged
    the concurrency factor, not hidden."""
    from repro.gpu.device import DeviceSpec

    tiny = DeviceSpec(
        name="tiny",
        n_sms=1,
        cores_per_sm=8,
        warp_size=8,
        max_resident_warps_per_sm=2,
        shared_memory_bytes_per_sm=64 * 1024,
    )
    data = bytes(rng.integers(0, 32, size=320).astype(np.uint8))
    training = bytes(rng.integers(0, 32, size=80).astype(np.uint8))
    small = EnumerativeScheme.for_dfa(
        dfa, n_threads=4, training_input=training, device=tiny
    ).run(data)
    big = EnumerativeScheme.for_dfa(
        dfa, n_threads=16, training_input=training, device=tiny
    ).run(data)
    # 16 threads × 7 states = 112 lanes = 14 warps on a 2-warp device:
    # the oversubscribed launch cannot be cheaper per symbol.
    assert big.cycles > small.cycles * 0.5
