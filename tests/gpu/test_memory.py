"""Memory-model tests: layouts, hot masks, overheads."""

import numpy as np
import pytest

from repro.gpu.device import RTX3090
from repro.gpu.memory import MemoryModel, TableLayout
from repro.errors import SimulationError


def test_rank_layout_hot_mask():
    mm = MemoryModel(device=RTX3090, hot_state_count=4, layout=TableLayout.RANK)
    states = np.array([0, 3, 4, 10])
    assert mm.hot_mask(states).tolist() == [True, True, False, False]


def test_hash_layout_with_explicit_ids():
    mm = MemoryModel(
        device=RTX3090,
        hot_state_count=2,
        layout=TableLayout.HASH,
        hot_state_ids=frozenset({5, 9}),
    )
    states = np.array([0, 5, 9, 10])
    assert mm.hot_mask(states).tolist() == [False, True, True, False]


def test_global_only_layout():
    mm = MemoryModel(device=RTX3090, hot_state_count=100, layout=TableLayout.GLOBAL_ONLY)
    assert not mm.hot_mask(np.arange(5)).any()


def test_hash_layout_pays_per_step_overhead():
    rank = MemoryModel(device=RTX3090, hot_state_count=4, layout=TableLayout.RANK)
    hashed = MemoryModel(device=RTX3090, hot_state_count=4, layout=TableLayout.HASH)
    assert rank.per_step_overhead_cycles == 0.0
    assert hashed.per_step_overhead_cycles == float(
        RTX3090.shared_cycles + RTX3090.hash_compute_cycles
    )


def test_for_dfa_sizes_hot_region():
    mm = MemoryModel.for_dfa(RTX3090, n_states=10, n_symbols=256)
    assert mm.hot_state_count == 10  # small DFA fits entirely
    big = MemoryModel.for_dfa(RTX3090, n_states=10**6, n_symbols=256)
    assert big.hot_state_count == RTX3090.shared_table_entries // 256


def test_lookup_cycles():
    mm = MemoryModel(device=RTX3090, hot_state_count=1)
    out = mm.lookup_cycles(np.array([True, False]))
    assert out[0] == RTX3090.shared_cycles
    assert out[1] == RTX3090.global_cycles


def test_negative_hot_count_rejected():
    with pytest.raises(SimulationError):
        MemoryModel(device=RTX3090, hot_state_count=-1)


def test_shared_bytes_used():
    mm = MemoryModel(device=RTX3090, hot_state_count=5)
    assert mm.shared_bytes_used(n_symbols=256) == 5 * 256 * 4


def test_empty_hash_set_all_cold():
    mm = MemoryModel(
        device=RTX3090,
        hot_state_count=4,
        layout=TableLayout.HASH,
        hot_state_ids=frozenset(),
    )
    assert not mm.hot_mask(np.arange(6)).any()
