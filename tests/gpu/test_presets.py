"""Device-preset tests."""


from repro.gpu.presets import A100, DEVICE_PRESETS, EMBEDDED


def test_registry_complete():
    assert set(DEVICE_PRESETS) == {"rtx3090", "rtx2080ti", "v100", "a100", "embedded"}
    for name, device in DEVICE_PRESETS.items():
        assert device.name == name


def test_all_presets_validate():
    # Construction already runs __post_init__ validation; spot-check shape.
    for device in DEVICE_PRESETS.values():
        assert device.warp_size == 32
        assert device.n_sms > 0
        assert device.register_cycles <= device.shared_cycles <= device.global_cycles


def test_shared_capacity_ordering():
    """A100 caches the most table rows; the embedded part the fewest."""
    caps = {d.name: d.shared_table_entries for d in DEVICE_PRESETS.values()}
    assert caps["a100"] > caps["rtx3090"] > caps["rtx2080ti"]
    assert caps["embedded"] < caps["rtx2080ti"]


def test_concurrency_capacity_ordering():
    assert A100.max_concurrent_warps > EMBEDDED.max_concurrent_warps


def test_schemes_run_on_every_preset(div7, rng):
    import numpy as np
    from repro.schemes import NFScheme

    data = bytes(rng.integers(48, 50, size=400).astype(np.uint8))
    training = bytes(rng.integers(48, 50, size=100).astype(np.uint8))
    truth = div7.run(data)
    for device in DEVICE_PRESETS.values():
        scheme = NFScheme.for_dfa(
            div7, n_threads=8, training_input=training, device=device
        )
        assert scheme.run(data).end_state == truth, device.name
