"""Device-model tests."""

import pytest

from repro.gpu.device import RTX3090, DeviceSpec
from repro.errors import SimulationError


def test_rtx3090_spec_matches_paper():
    assert RTX3090.n_sms == 82
    assert RTX3090.cores_per_sm == 128
    assert RTX3090.shared_memory_bytes_per_sm == 100 * 1024
    assert RTX3090.global_memory_bytes == 24 * 1024**3
    assert RTX3090.warp_size == 32


def test_latency_ordering():
    assert RTX3090.register_cycles <= RTX3090.shared_cycles <= RTX3090.global_cycles


def test_invalid_geometry_rejected():
    with pytest.raises(SimulationError):
        DeviceSpec(warp_size=0)


def test_invalid_latency_ordering_rejected():
    with pytest.raises(SimulationError):
        DeviceSpec(shared_cycles=500, global_cycles=100)


def test_warps_for_threads():
    assert RTX3090.warps_for_threads(1) == 1
    assert RTX3090.warps_for_threads(32) == 1
    assert RTX3090.warps_for_threads(33) == 2
    with pytest.raises(SimulationError):
        RTX3090.warps_for_threads(0)


def test_concurrency_factor():
    assert RTX3090.concurrency_factor(10) == 1.0
    over = RTX3090.max_concurrent_warps * 2
    assert RTX3090.concurrency_factor(over) == pytest.approx(2.0)


def test_cycles_to_ms():
    ms = RTX3090.cycles_to_ms(RTX3090.clock_ghz * 1e6)
    assert ms == pytest.approx(1.0)


def test_shared_table_entries_reserves_staging():
    # 8 KB reserved; the rest in 4-byte entries.
    expected = (100 * 1024 - 8 * 1024) // 4
    assert RTX3090.shared_table_entries == expected
