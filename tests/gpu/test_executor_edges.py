"""Lockstep-executor edge cases: degenerate shapes, masks, and monotonicity.

Complements ``test_executor.py`` with the boundaries schemes actually hit —
zero-length lanes inside otherwise busy batches, fully inactive recovery
rounds, single-symbol chunks — plus the coalescing ledger for explicit
``chunk_ids`` assignments and the "more active lanes never get cheaper"
monotonicity the recovery schedulers rely on.
"""

import numpy as np
import pytest

from repro.gpu.device import DeviceSpec
from repro.gpu.executor import LockstepExecutor
from repro.gpu.memory import MemoryModel, TableLayout
from repro.gpu.stats import KernelStats
from repro.observability import MetricsRegistry


@pytest.fixture()
def dev():
    return DeviceSpec(warp_size=4, n_sms=4, max_resident_warps_per_sm=8)


@pytest.fixture()
def executor(div7, dev):
    mm = MemoryModel(device=dev, hot_state_count=3, layout=TableLayout.RANK)
    return LockstepExecutor(div7.table, mm, dev)


def make_chunks(rng, n, length):
    return rng.integers(48, 50, size=(n, length)).astype(np.uint8)


class TestDegenerateLanes:
    def test_zero_length_lane_among_working_lanes(self, executor, div7, rng):
        """A lengths=0 lane keeps its start state and does no transitions."""
        chunks = make_chunks(rng, 4, 12)
        starts = np.array([3, 5, 0, 1])
        lengths = np.array([12, 0, 12, 0])
        stats = KernelStats(device=executor.device, n_threads=4)
        ends = executor.run(chunks, starts, stats=stats, lengths=lengths, phase="p")
        assert ends[1] == 5 and ends[3] == 1
        assert ends[0] == div7.run(chunks[0], start=3)
        assert ends[2] == div7.run(chunks[2], start=0)
        assert stats.transitions == 2 * 12

    def test_all_lengths_zero(self, executor):
        """All-zero lengths: functional no-op, zero transitions charged."""
        chunks = np.zeros((3, 8), dtype=np.uint8)
        starts = np.array([1, 2, 3])
        stats = KernelStats(device=executor.device, n_threads=3)
        ends = executor.run(
            chunks, starts, stats=stats, lengths=np.zeros(3, dtype=np.int64),
            phase="p",
        )
        assert ends.tolist() == [1, 2, 3]
        assert stats.transitions == 0
        assert stats.phase_cycles.get("p", 0.0) == 0.0

    def test_all_inactive_mask_is_free(self, executor, rng):
        """An all-inactive batch returns starts and charges nothing — the
        shape every drained recovery round takes."""
        chunks = make_chunks(rng, 4, 10)
        starts = np.array([4, 3, 2, 1])
        stats = KernelStats(device=executor.device, n_threads=4)
        ends = executor.run(
            chunks, starts, stats=stats, active=np.zeros(4, dtype=bool), phase="p"
        )
        assert ends.tolist() == [4, 3, 2, 1]
        assert stats.transitions == 0
        assert "p" not in stats.phase_cycles

    def test_all_inactive_batch_counts_as_empty(self, div7, dev, rng):
        """Metrics mark skipped batches so traces explain 'silent' rounds."""
        registry = MetricsRegistry()
        mm = MemoryModel(device=dev, hot_state_count=3)
        ex = LockstepExecutor(div7.table, mm, dev, metrics=registry)
        ex.run(make_chunks(rng, 4, 10), np.zeros(4, dtype=np.int64),
               active=np.zeros(4, dtype=bool))
        flat = registry.as_dict()
        assert flat["executor.batches"] == 1
        assert flat["executor.empty_batches"] == 1
        assert "executor.transitions" not in flat

    def test_single_symbol_chunks(self, executor, div7, rng):
        """chunk_len == 1: exactly one transition per lane."""
        chunks = make_chunks(rng, 6, 1)
        starts = rng.integers(0, 7, size=6)
        stats = KernelStats(device=executor.device, n_threads=6)
        ends = executor.run(chunks, starts, stats=stats, phase="p")
        for t in range(6):
            assert ends[t] == div7.run(chunks[t], start=int(starts[t]))
        assert stats.transitions == 6


class TestCoalescingAccounting:
    def test_chunk_ids_distinct_count_drives_fetch_cost(self, div7, dev, rng):
        """A warp pays one stream fetch plus one extra issue slot per
        *additional distinct* chunk among its active lanes."""
        mm = MemoryModel(device=dev, hot_state_count=7)  # all hot: isolate fetch
        ex = LockstepExecutor(div7.table, mm, dev)
        chunks = make_chunks(rng, 4, 10)
        costs = {}
        for label, cids in {
            "one": np.array([2, 2, 2, 2]),
            "two": np.array([0, 0, 3, 3]),
            "four": np.array([0, 1, 2, 3]),
        }.items():
            stats = KernelStats(device=dev, n_threads=4)
            ex.run_gathered(
                chunks, cids, np.zeros(4, dtype=np.int64), stats=stats, phase="p"
            )
            costs[label] = stats.phase_cycles["p"]
        step = dev.input_issue_cycles * 10  # per extra distinct chunk, 10 steps
        assert costs["two"] - costs["one"] == pytest.approx(step)
        assert costs["four"] - costs["two"] == pytest.approx(2 * step)

    def test_inactive_lanes_do_not_count_distinct_chunks(self, div7, dev, rng):
        """Masked-off lanes must not inflate the distinct-chunk fetch bill."""
        mm = MemoryModel(device=dev, hot_state_count=7)
        ex = LockstepExecutor(div7.table, mm, dev)
        chunks = make_chunks(rng, 4, 10)
        active = np.array([True, True, False, False])
        masked = KernelStats(device=dev, n_threads=4)
        ex.run(
            chunks, np.zeros(4, dtype=np.int64), stats=masked, active=active,
            chunk_ids=np.array([0, 0, 1, 2]), phase="p",
        )
        baseline = KernelStats(device=dev, n_threads=4)
        ex.run(
            chunks, np.zeros(4, dtype=np.int64), stats=baseline, active=active,
            chunk_ids=np.array([0, 0, 0, 0]), phase="p",
        )
        # Lanes 2/3 are inactive, so both assignments see one distinct chunk.
        assert masked.phase_cycles["p"] == pytest.approx(baseline.phase_cycles["p"])


class TestMonotonicity:
    def test_cycles_monotone_in_active_lane_count(self, div7, dev, rng):
        """Growing a prefix-active mask never lowers the charged cycles
        (recovery schedulers assume adding work cannot be free)."""
        mm = MemoryModel(device=dev, hot_state_count=3)
        ex = LockstepExecutor(div7.table, mm, dev)
        n = 12  # three warps of four
        chunks = make_chunks(rng, n, 16)
        starts = np.zeros(n, dtype=np.int64)
        prev = 0.0
        for k in range(1, n + 1):
            active = np.zeros(n, dtype=bool)
            active[:k] = True
            stats = KernelStats(device=dev, n_threads=n)
            ex.run(chunks, starts, stats=stats, active=active, phase="p")
            cost = stats.phase_cycles["p"]
            assert cost >= prev, f"cost dropped when activating lane {k}"
            prev = cost
