"""Property-based tests for the lockstep executor's cost accounting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.gpu.device import DeviceSpec
from repro.gpu.executor import LockstepExecutor
from repro.gpu.memory import MemoryModel
from repro.gpu.stats import KernelStats

DEV = DeviceSpec(warp_size=4, n_sms=4, max_resident_warps_per_sm=8)


@st.composite
def executor_case(draw):
    n_states = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    table = rng.integers(0, n_states, size=(n_states, 8)).astype(np.int32)
    n_threads = draw(st.integers(min_value=1, max_value=12))
    chunk_len = draw(st.integers(min_value=0, max_value=30))
    chunks = rng.integers(0, 8, size=(n_threads, chunk_len)).astype(np.uint8)
    starts = rng.integers(0, n_states, size=n_threads)
    hot = draw(st.integers(min_value=0, max_value=n_states))
    return table, chunks, starts, hot


@settings(max_examples=60, deadline=None)
@given(executor_case())
def test_access_counts_equal_transitions(case):
    table, chunks, starts, hot = case
    mm = MemoryModel(device=DEV, hot_state_count=hot)
    ex = LockstepExecutor(table, mm, DEV)
    stats = KernelStats(device=DEV, n_threads=chunks.shape[0])
    ex.run(chunks, starts, stats=stats)
    assert stats.shared_accesses + stats.global_accesses == stats.transitions
    assert stats.transitions == chunks.size


@settings(max_examples=40, deadline=None)
@given(executor_case())
def test_functional_result_independent_of_memory_model(case):
    """Hot/cold placement may never change *answers*."""
    table, chunks, starts, hot = case
    dfa = DFA(table=table, start=0)
    a = LockstepExecutor(
        table, MemoryModel(device=DEV, hot_state_count=hot), DEV
    ).run(chunks, starts)
    b = LockstepExecutor(
        table, MemoryModel(device=DEV, hot_state_count=0), DEV
    ).run(chunks, starts)
    assert np.array_equal(a, b)
    for t in range(chunks.shape[0]):
        assert a[t] == dfa.run(chunks[t], start=int(starts[t]))


@settings(max_examples=40, deadline=None)
@given(executor_case())
def test_more_hot_states_never_cost_more(case):
    """Cycle cost is monotone non-increasing in the hot-state budget."""
    table, chunks, starts, hot = case
    costs = []
    for h in (0, hot, table.shape[0]):
        stats = KernelStats(device=DEV, n_threads=chunks.shape[0])
        LockstepExecutor(
            table, MemoryModel(device=DEV, hot_state_count=h), DEV
        ).run(chunks, starts, stats=stats)
        costs.append(stats.cycles)
    assert costs[0] >= costs[1] >= costs[2]


@settings(max_examples=40, deadline=None)
@given(executor_case(), st.integers(min_value=0, max_value=2**31 - 1))
def test_determinism(case, _seed):
    table, chunks, starts, hot = case
    mm = MemoryModel(device=DEV, hot_state_count=hot)

    def run_once():
        stats = KernelStats(device=DEV, n_threads=chunks.shape[0])
        ends = LockstepExecutor(table, mm, DEV).run(chunks, starts, stats=stats)
        return ends, stats.cycles

    (ends_a, cyc_a), (ends_b, cyc_b) = run_once(), run_once()
    assert np.array_equal(ends_a, ends_b)
    assert cyc_a == cyc_b
