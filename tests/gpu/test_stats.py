"""KernelStats ledger tests."""

import pytest

from repro.gpu.device import RTX3090
from repro.gpu.stats import KernelStats
from repro.errors import SimulationError


@pytest.fixture()
def stats():
    return KernelStats(device=RTX3090, n_threads=64)


def test_charge_accumulates(stats):
    stats.charge("a", 100)
    stats.charge("a", 50)
    stats.charge("b", 25)
    assert stats.cycles == 175
    assert stats.phase_cycles == {"a": 150, "b": 25}


def test_negative_charge_rejected(stats):
    with pytest.raises(SimulationError):
        stats.charge("a", -1)


def test_sync_charge(stats):
    stats.charge_sync("p", count=3)
    assert stats.sync_ops == 3
    assert stats.cycles == 3 * RTX3090.sync_cycles


def test_comm_charge_parallel_time(stats):
    stats.charge_comm("p", count=100)
    assert stats.comm_ops == 100
    # Parallel forwards: one latency regardless of count.
    assert stats.cycles == RTX3090.comm_cycles
    stats.charge_comm("p", count=0)
    assert stats.cycles == RTX3090.comm_cycles  # zero count charges nothing


def test_verify_charge(stats):
    stats.charge_verify("p", checks_per_thread=4, total_checks=64)
    assert stats.verify_ops == 64
    assert stats.cycles == 4 * RTX3090.verify_cycles


def test_recovery_round_tracking(stats):
    stats.record_recovery_round(10)
    stats.record_recovery_round(30)
    assert stats.recovery_rounds == 2
    assert stats.avg_active_threads == 20.0


def test_avg_active_threads_empty(stats):
    assert stats.avg_active_threads == 0.0


def test_speculation_accuracy(stats):
    stats.matches = 9
    stats.mismatches = 1
    assert stats.runtime_speculation_accuracy == pytest.approx(0.9)


def test_speculation_accuracy_no_checks(stats):
    assert stats.runtime_speculation_accuracy == 1.0


def test_hot_access_fraction(stats):
    stats.shared_accesses = 30
    stats.global_accesses = 10
    assert stats.hot_access_fraction == pytest.approx(0.75)
    assert stats.total_memory_accesses == 40


def test_redundancy_ratio(stats):
    stats.transitions = 100
    stats.redundant_transitions = 25
    assert stats.redundancy_ratio == pytest.approx(0.25)


def test_time_ms(stats):
    stats.charge("x", RTX3090.clock_ghz * 1e6)
    assert stats.time_ms == pytest.approx(1.0)


def test_summary_keys(stats):
    stats.charge("x", 10)
    summary = stats.summary()
    for key in (
        "cycles",
        "time_ms",
        "transitions",
        "recovery_rounds",
        "avg_active_threads",
        "speculation_accuracy",
    ):
        assert key in summary


def test_merge_phase_breakdown_is_copy(stats):
    stats.charge("x", 10)
    copy = stats.merge_phase_breakdown()
    copy["x"] = 0
    assert stats.phase_cycles["x"] == 10
