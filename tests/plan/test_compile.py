"""compile_plan: the offline phase frozen into one artifact.

Pins down what a plan *contains* — that its selection matches what the
framework would have decided in-process, that the stored permutation
rebuilds the exact frequency transformation, that predictor statistics are
the trained lookback-2 numbers, and that compiling twice under identical
inputs yields an identical value object.
"""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import MetricsRegistry, Tracer
from repro.plan import compile_plan, config_fingerprint
from repro.plan.compile import COMPILE_STAGES
from repro.automata.transform import frequency_transform
from repro.automata.properties import profile_state_frequencies


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=16)


def test_selection_matches_in_process(scanner_dfa, training, config):
    plan = compile_plan(scanner_dfa, training, config)
    pal = GSpecPal(scanner_dfa, config, training_input=training)
    assert plan.scheme == pal.select_scheme()
    assert plan.decision_path  # the Fig. 6 walk is recorded
    compiled = plan.features.as_dict()
    live = pal.profile().as_dict()
    # profiling_seconds is wall-clock, everything else must agree exactly
    compiled.pop("profiling_seconds"), live.pop("profiling_seconds")
    assert compiled == live


def test_compile_is_deterministic(scanner_dfa, training, config):
    a = compile_plan(scanner_dfa, training, config)
    b = compile_plan(scanner_dfa, training, config)
    assert a.fingerprint == b.fingerprint == scanner_dfa.fingerprint()
    assert a.config_hash == b.config_hash == config_fingerprint(config)
    assert a.scheme == b.scheme and a.decision_path == b.decision_path
    assert a.cost_estimates == b.cost_estimates
    assert np.array_equal(a.frequency_counts, b.frequency_counts)
    assert np.array_equal(a.permutation, b.permutation)
    assert a.predictor_stats == b.predictor_stats


def test_cost_estimates_cover_selectable_schemes(scanner_dfa, training, config):
    plan = compile_plan(scanner_dfa, training, config)
    assert set(plan.cost_estimates) >= {"pm", "sre", "rr", "nf"}
    assert all(v > 0 for v in plan.cost_estimates.values())


def test_permutation_rebuilds_exact_transformation(scanner_dfa, training, config):
    plan = compile_plan(scanner_dfa, training, config)
    rebuilt = plan.transformation()
    profile = profile_state_frequencies(scanner_dfa, training)
    direct = frequency_transform(
        scanner_dfa,
        profile,
        shared_memory_entries=config.device.shared_table_entries,
    )
    assert np.array_equal(rebuilt.to_new, direct.to_new)
    assert np.array_equal(rebuilt.dfa.table, direct.dfa.table)
    assert rebuilt.hot_state_count == direct.hot_state_count == plan.hot_state_count


def test_hash_layout_plan_has_no_permutation(scanner_dfa, training):
    cfg = GSpecPalConfig(n_threads=16, use_transformation=False)
    plan = compile_plan(scanner_dfa, training, cfg)
    assert plan.permutation is None
    assert plan.transformation() is None
    assert plan.hot_state_count > 0  # hash layout still has a hot set


def test_predictor_stats_are_trained_lookback2(scanner_dfa, training, config):
    plan = compile_plan(scanner_dfa, training, config)
    stats = plan.predictor_stats
    assert stats["predictor"] == "lookback-2"
    assert stats["lookback"] == 2
    assert 0.0 <= stats["spec1_accuracy"] <= stats["spec16_accuracy"] <= 1.0
    assert stats["max_queue_size"] >= stats["mean_queue_size"] > 0
    assert stats["boundaries"] > 0


def test_empty_training_rejected(scanner_dfa, config):
    with pytest.raises(PlanError):
        compile_plan(scanner_dfa, b"", config)


def test_compile_emits_compile_span_tree(scanner_dfa, training, config):
    tracer = Tracer()
    compile_plan(scanner_dfa, training, config, tracer=tracer)
    roots = tracer.roots
    assert [s.name for s in roots] == ["compile"]
    children = {s.name: s for s in roots[0].children}
    assert list(children) == list(COMPILE_STAGES)
    # cost_model / predictor are sub-steps of the train stage
    assert [s.name for s in children["train"].children] == ["cost_model", "predictor"]


def test_compile_records_stage_timings_and_metrics(scanner_dfa, training, config):
    metrics = MetricsRegistry()
    plan = compile_plan(scanner_dfa, training, config, metrics=metrics)
    assert set(plan.stage_timings_ms) == set(COMPILE_STAGES)
    assert all(v >= 0.0 for v in plan.stage_timings_ms.values())
    snapshot = metrics.as_dict()
    for name in COMPILE_STAGES:
        assert snapshot[f"compile.stage.{name}_ms.count"] == 1.0


def test_compile_stores_canonical_fingerprint(scanner_dfa, training, config):
    plan = compile_plan(scanner_dfa, training, config)
    assert plan.canonical_fingerprint == scanner_dfa.canonical_fingerprint()
    # Language-equivalent submissions share the canonical fingerprint but
    # keep their own content fingerprint.
    perm = list(range(scanner_dfa.n_states))
    perm[0], perm[-1] = perm[-1], perm[0]
    relabelled = scanner_dfa.renumbered(perm)
    other = compile_plan(relabelled, training, config)
    assert other.canonical_fingerprint == plan.canonical_fingerprint
    assert other.fingerprint != plan.fingerprint
