"""Plan verification: a stale, corrupt or mismatched artifact never serves.

The fingerprint is the plan's identity — ``load_plan`` re-hashes the
embedded automaton against the stored digest, ``verify(dfa)`` guards cache
hits, and ``verify_config`` guards explicit-config serving.  Every mismatch
must surface as :class:`~repro.errors.PlanError` before a byte is matched.
"""

import json

import numpy as np
import pytest

from repro.errors import PlanError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.plan import PLAN_FORMAT_VERSION, compile_plan, load_plan, save_plan
from repro.workloads import classic


@pytest.fixture()
def plan(scanner_dfa, rng):
    training = bytes(rng.integers(97, 123, size=512).astype(np.uint8))
    return compile_plan(scanner_dfa, training, GSpecPalConfig(n_threads=16))


def _rewrite(path, mutate):
    """Rewrite the npz at ``path`` after letting ``mutate`` edit its arrays."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: np.array(data[k]) for k in data.files}
    mutate(arrays)
    np.savez_compressed(path, **arrays)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(PlanError, match="no plan file"):
        load_plan(tmp_path / "nope.npz")


def test_tampered_table_rejected(plan, tmp_path):
    path = save_plan(plan, tmp_path / "p.npz")

    def corrupt(arrays):
        table = arrays["table"]
        table[0, 0] = (table[0, 0] + 1) % plan.dfa.n_states
        arrays["table"] = table

    _rewrite(path, corrupt)
    with pytest.raises(PlanError, match="fingerprint mismatch"):
        load_plan(path)


def test_tampered_accepting_set_rejected(plan, tmp_path):
    path = save_plan(plan, tmp_path / "p.npz")

    def corrupt(arrays):
        arrays["accepting"] = arrays["accepting"][:-1]

    _rewrite(path, corrupt)
    with pytest.raises(PlanError, match="fingerprint mismatch"):
        load_plan(path)


def test_unsupported_version_rejected(plan, tmp_path):
    path = save_plan(plan, tmp_path / "p.npz")

    def bump(arrays):
        meta = json.loads(str(arrays["meta"]))
        meta["version"] = PLAN_FORMAT_VERSION + 1
        arrays["meta"] = np.asarray(json.dumps(meta))

    _rewrite(path, bump)
    with pytest.raises(PlanError, match="version"):
        load_plan(path)


def test_v2_plan_loads_with_adaptation_defaults(plan, tmp_path):
    """A pre-adaptation (v2) artifact loads unchanged: no revision, no
    provenance, pristine profiled anchors — upgrade-on-load, not reject."""
    path = save_plan(plan, tmp_path / "p.npz")

    def downgrade(arrays):
        meta = json.loads(str(arrays["meta"]))
        meta["version"] = 2
        meta.pop("revision")
        meta.pop("live_provenance")
        for key in ("live_accuracy", "live_samples"):
            meta["features"].pop(key)
        arrays["meta"] = np.asarray(json.dumps(meta))

    _rewrite(path, downgrade)
    loaded = load_plan(path)
    assert loaded.version == PLAN_FORMAT_VERSION  # saved back as v3
    assert loaded.revision == 0
    assert loaded.live_provenance == {}
    assert loaded.features.live_accuracy == -1.0
    assert loaded.features.live_samples == 0
    loaded.verify(plan.dfa)  # still serves the same automaton
    assert loaded.scheme == plan.scheme


def test_verify_against_wrong_dfa(plan):
    other = classic.div7()
    with pytest.raises(PlanError, match="recompile"):
        plan.verify(other)
    plan.verify(plan.dfa)  # the right automaton passes


def test_from_plan_rejects_mismatched_config(plan):
    with pytest.raises(PlanError, match="config"):
        GSpecPal.from_plan(plan, config=GSpecPalConfig(n_threads=64))


def test_fingerprint_ignores_name_but_not_behaviour(scanner_dfa):
    renamed = scanner_dfa.renamed("alias") if hasattr(scanner_dfa, "renamed") else None
    if renamed is not None:
        assert renamed.fingerprint() == scanner_dfa.fingerprint()
    flipped = scanner_dfa.__class__(
        table=scanner_dfa.table,
        start=(scanner_dfa.start + 1) % scanner_dfa.n_states,
        accepting=scanner_dfa.accepting,
        name=scanner_dfa.name,
    )
    assert flipped.fingerprint() != scanner_dfa.fingerprint()
