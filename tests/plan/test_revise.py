"""Live plan revision: re-selection from drift evidence without re-profiling.

``revise_plan`` re-runs the Fig. 6 selector walk and the cost model over a
feature vector re-anchored by live observations — the expensive profiling
stage is never repeated, the automaton/fingerprint/transformation artifacts
are untouched, and the output is a new immutable artifact one revision up
with the evidence recorded as provenance.
"""

import numpy as np
import pytest

from repro.framework import GSpecPalConfig
from repro.observability import MetricsRegistry
from repro.plan import (
    PLAN_FORMAT_VERSION,
    compile_plan,
    load_plan,
    revise_plan,
    save_plan,
)
from repro.selector.features import FSMFeatures
from repro.speculation import LiveObservations
from repro.workloads import classic


@pytest.fixture(scope="module")
def plan():
    dfa = classic.drifting_phase(128)
    training = classic.drifting_phase_input(4096, drift_at=1.0, seed=7)
    return compile_plan(dfa, training, GSpecPalConfig(n_threads=32))


def _hot_observations():
    """Evidence shaped like the drifted phase: spec-4 accuracy ~0.10."""
    return LiveObservations(
        scheme="pm-spec4",
        spec_k=4,
        segments=2,
        symbols=4096,
        spec_hits=6,
        spec_misses=56,
        recovery_rounds=55,
        recoveries_executed=55,
    )


def test_calm_training_selects_pm(plan):
    assert plan.scheme == "pm"
    assert plan.revision == 0
    assert plan.live_provenance == {}


def test_revise_reselects_from_live_evidence(plan):
    metrics = MetricsRegistry()
    revised = revise_plan(plan, _hot_observations(), metrics=metrics)

    # Live accuracy collapse drives the walk to the speculation floor.
    assert revised.scheme == "sfa"
    assert revised.decision_path == ("speculation_floor",)
    assert revised.revision == plan.revision + 1
    assert revised.version == PLAN_FORMAT_VERSION

    # Identity and transformation artifacts are untouched — that is what
    # makes the hot-swap free of simulator/engine rebuild work.
    assert revised.fingerprint == plan.fingerprint
    assert revised.canonical_fingerprint == plan.canonical_fingerprint
    assert revised.config_hash == plan.config_hash
    assert np.array_equal(revised.frequency_order, plan.frequency_order)

    # The evidence is recorded as provenance.
    assert revised.live_provenance["prior_scheme"] == "pm"
    assert revised.live_provenance["prior_revision"] == 0
    assert revised.live_provenance["boundary_samples"] == 62
    assert revised.live_provenance["spec_accuracy"] == pytest.approx(6 / 62)

    # The feature vector carries the live anchors.
    assert revised.features.live_accuracy == pytest.approx(6 / 62)
    assert revised.features.live_samples == 62
    assert revised.features.spec16_accuracy < 0.15

    # Cost estimates are re-trained and the stage is timed + metered.
    assert "sfa" in revised.cost_estimates
    assert "revise" in revised.stage_timings_ms
    assert metrics.as_dict()["compile.stage.revise_ms.count"] == 1.0


def test_revise_without_evidence_is_identity(plan):
    assert revise_plan(plan, None) is plan
    sample_free = LiveObservations(scheme="sfa", spec_k=1, segments=3, symbols=999)
    assert revise_plan(plan, sample_free) is plan


def test_revised_plan_roundtrips(plan, tmp_path):
    revised = revise_plan(plan, _hot_observations())
    path = save_plan(revised, tmp_path / "revised.npz")
    loaded = load_plan(path)
    assert loaded.revision == revised.revision
    assert loaded.scheme == revised.scheme
    assert loaded.decision_path == revised.decision_path
    assert loaded.live_provenance == revised.live_provenance
    assert loaded.features.live_accuracy == pytest.approx(
        revised.features.live_accuracy
    )
    assert loaded.features.live_samples == revised.features.live_samples


def test_summary_reports_revision(plan):
    assert "[revision" not in plan.summary()
    revised = revise_plan(plan, _hot_observations())
    assert "[revision 1]" in revised.summary()


# ----------------------------------------------------------------------
# FSMFeatures.update_from_observations units
# ----------------------------------------------------------------------
def _features(spec1=0.2, spec4=0.8, spec16=1.0):
    return FSMFeatures(
        name="unit",
        n_states=64,
        spec1_accuracy=spec1,
        spec4_accuracy=spec4,
        spec16_accuracy=spec16,
        sensitivity=0.05,
        convergence_states=4.0,
        profiling_seconds=0.1,
        reachable_width=4.0,
    )


def test_update_scales_the_whole_accuracy_family():
    features = _features()
    obs = LiveObservations(
        scheme="pm-spec4", spec_k=4, segments=1, symbols=512,
        spec_hits=4, spec_misses=6,
    )
    updated = features.update_from_observations(obs)
    ratio = 0.4 / 0.8  # live spec-4 over the spec-4 anchor
    assert updated.spec4_accuracy == pytest.approx(0.4)
    assert updated.spec1_accuracy == pytest.approx(0.2 * ratio)
    assert updated.spec16_accuracy == pytest.approx(1.0 * ratio)
    assert updated.live_accuracy == pytest.approx(0.4)
    assert updated.live_samples == 10
    # Structural features stay profiled.
    assert updated.convergence_states == features.convergence_states
    assert updated.reachable_width == features.reachable_width
    assert updated.sensitivity == features.sensitivity


def test_update_clips_to_valid_accuracy():
    features = _features(spec1=0.5, spec4=0.5, spec16=0.9)
    obs = LiveObservations(
        scheme="pm-spec4", spec_k=4, segments=1, symbols=512,
        spec_hits=10, spec_misses=0,
    )
    updated = features.update_from_observations(obs)
    # Ratio 2.0 would push spec16 to 1.8 — clipped to 1.0.
    assert updated.spec16_accuracy == 1.0
    assert updated.spec4_accuracy == 1.0


def test_update_without_evidence_is_identity():
    features = _features()
    assert features.update_from_observations(None) is features
    empty = LiveObservations(scheme="sfa", spec_k=1, segments=2, symbols=64)
    assert features.update_from_observations(empty) is features


def test_as_dict_round_trips_live_fields():
    features = _features()
    rebuilt = FSMFeatures(**features.as_dict())
    assert rebuilt == features
    assert rebuilt.live_accuracy == -1.0
    assert rebuilt.live_samples == 0
