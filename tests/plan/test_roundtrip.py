"""Golden round-trip: save → load → serve must change *nothing*.

The acceptance bar for the compile-once split: a plan loaded from disk in
what could be another process must (a) never profile — no ``profile`` span
— and (b) produce byte-identical end states, accepts, scheme selection and
(on the cycle-accounting backend) an identical cycle ledger versus the
compile-in-process path, on both execution backends.
"""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import Tracer
from repro.plan import compile_plan, load_plan, save_plan


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=512).astype(np.uint8))


@pytest.fixture()
def data(rng):
    return bytes(rng.integers(97, 123, size=2048).astype(np.uint8))


@pytest.fixture()
def config():
    return GSpecPalConfig(n_threads=16)


@pytest.fixture()
def plan(scanner_dfa, training, config):
    return compile_plan(scanner_dfa, training, config)


def test_roundtrip_preserves_every_field(plan, tmp_path):
    path = save_plan(plan, tmp_path / "p.npz")
    loaded = load_plan(path)
    assert loaded.fingerprint == plan.fingerprint
    assert loaded.config_hash == plan.config_hash
    assert loaded.config == plan.config
    assert loaded.features == plan.features
    assert loaded.scheme == plan.scheme
    assert loaded.decision_path == plan.decision_path
    assert loaded.cost_estimates == plan.cost_estimates
    assert loaded.predictor_stats == plan.predictor_stats
    assert loaded.training_symbols == plan.training_symbols
    assert loaded.hot_state_count == plan.hot_state_count
    assert np.array_equal(loaded.frequency_counts, plan.frequency_counts)
    assert np.array_equal(loaded.frequency_order, plan.frequency_order)
    assert np.array_equal(loaded.permutation, plan.permutation)
    assert loaded.dfa == plan.dfa


def test_save_without_suffix_still_loads(plan, tmp_path):
    written = save_plan(plan, tmp_path / "noext")
    assert written.suffix == ".npz"
    # Loading by the suffixless name the caller used must also work.
    assert load_plan(tmp_path / "noext").fingerprint == plan.fingerprint


@pytest.mark.parametrize("backend", ["sim", "fast"])
def test_served_plan_matches_in_process_path(
    scanner_dfa, training, data, config, tmp_path, backend
):
    from dataclasses import replace

    cfg = replace(config, backend=backend)
    baseline = GSpecPal(scanner_dfa, cfg, training_input=training)
    expected = baseline.run(data)

    plan = compile_plan(scanner_dfa, training, config)
    loaded = load_plan(save_plan(plan, tmp_path / "p.npz"))
    served = GSpecPal.from_plan(loaded, backend=backend).run(data)

    assert served.scheme == expected.scheme
    assert served.end_state == expected.end_state
    assert served.accepts == expected.accepts
    if backend == "sim":
        # Identical cycle ledger, not merely close: the served simulator is
        # rebuilt from the stored permutation, so every phase must tile the
        # same.
        assert served.cycles == expected.cycles
        assert served.stats.phase_cycles == expected.stats.phase_cycles


def test_from_plan_never_profiles(plan, data, tmp_path):
    loaded = load_plan(save_plan(plan, tmp_path / "p.npz"))
    tracer = Tracer()
    pal = GSpecPal.from_plan(loaded, tracer=tracer)
    pal.run(data)
    names = [s.name for s in tracer.iter_spans()]
    assert "profile" not in names
    assert "compile" not in names
    # The selection span still appears, replayed from the artifact.
    select = tracer.find("select")
    assert select.attrs["from_plan"] is True
    assert select.attrs["decision"] == loaded.scheme
    assert [s.name for s in tracer.roots] == ["gspecpal.run"]


def test_from_plan_accepts_matching_config_only(plan, config):
    pal = GSpecPal.from_plan(plan, config=config)
    assert pal.config.n_threads == config.n_threads
    with pytest.raises(PlanError):
        GSpecPal.from_plan(plan, config=GSpecPalConfig(n_threads=32))


def test_from_plan_applies_runtime_knobs(plan):
    pal = GSpecPal.from_plan(plan, backend="fast", selfcheck=True)
    assert pal.config.backend == "fast"
    assert pal.config.selfcheck is True
    # Runtime knobs are not part of the compiled identity.
    plan.verify_config(pal.config)


def test_streaming_from_plan(plan, scanner_dfa, data, tmp_path):
    loaded = load_plan(save_plan(plan, tmp_path / "p.npz"))
    session = GSpecPal.from_plan(loaded).stream()
    third = len(data) // 3
    for piece in (data[:third], data[third : 2 * third], data[2 * third :]):
        session.feed(piece)
    assert session.state == scanner_dfa.run(data)
