"""Tests for first-match reporting and the incremental streaming API."""

import numpy as np
import pytest

from repro.framework import GSpecPal, GSpecPalConfig
from repro.workloads import classic
from repro.automata.regex import compile_regex


@pytest.fixture(scope="module")
def scanner():
    return classic.keyword_scanner(b"needle")


def naive_first_match(dfa, data) -> int:
    accept = dfa.accepting_mask
    path = dfa.run_path(data)
    idx = int(np.argmax(accept[path]))
    return idx if accept[path[idx]] else None


class TestFindFirstMatch:
    def make_pal(self, dfa):
        return GSpecPal(dfa, GSpecPalConfig(n_threads=16))

    def test_no_match_returns_none(self, scanner, rng):
        data = bytes(rng.integers(97, 109, size=800).astype(np.uint8))
        assert b"needle" not in data
        assert self.make_pal(scanner).find_first_match(data) is None

    @pytest.mark.parametrize("pos", [0, 13, 399, 700, 793])
    def test_single_match_offset(self, scanner, rng, pos):
        data = bytearray(rng.integers(97, 109, size=800).astype(np.uint8))
        data[pos : pos + 6] = b"needle"
        data = bytes(data)
        offset = self.make_pal(scanner).find_first_match(data)
        assert offset == naive_first_match(scanner, data) == pos + 6

    def test_first_of_many_matches(self, scanner, rng):
        data = bytearray(rng.integers(97, 109, size=800).astype(np.uint8))
        for pos in (500, 200, 650):
            data[pos : pos + 6] = b"needle"
        data = bytes(data)
        offset = self.make_pal(scanner).find_first_match(data)
        assert offset == naive_first_match(scanner, data) == 206

    def test_with_regex_dfa(self, rng):
        dfa = compile_regex("ab+c", n_symbols=128)
        data = bytearray(rng.integers(100, 123, size=400).astype(np.uint8))
        data[100:104] = b"abbc"
        data = bytes(data)
        pal = GSpecPal(dfa, GSpecPalConfig(n_threads=16))
        assert pal.find_first_match(data) == naive_first_match(dfa, data)

    @pytest.mark.parametrize("scheme", ["pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq"])
    def test_every_scheme_agrees(self, scanner, rng, scheme):
        data = bytearray(rng.integers(97, 109, size=640).astype(np.uint8))
        data[300:306] = b"needle"
        data = bytes(data)
        pal = self.make_pal(scanner)
        assert pal.find_first_match(data, scheme=scheme) == 306


class TestStreaming:
    def test_segments_equal_whole(self, scanner, rng):
        data = bytes(rng.integers(97, 123, size=2400).astype(np.uint8))
        pal = GSpecPal(scanner, GSpecPalConfig(n_threads=16))
        session = pal.stream(scheme="sre")
        for i in range(0, 2400, 800):
            session.feed(data[i : i + 800])
        assert session.state == scanner.run(data)
        assert session.total_symbols == 2400
        from repro.engine import resolve_backend_name

        if resolve_backend_name(None) == "sim":
            assert session.total_cycles > 0
        else:
            assert np.isnan(session.total_cycles)

    def test_match_across_segment_boundary(self, scanner, rng):
        head = bytes(rng.integers(97, 109, size=797).astype(np.uint8)) + b"nee"
        tail = b"dle" + bytes(rng.integers(97, 109, size=797).astype(np.uint8))
        pal = GSpecPal(scanner, GSpecPalConfig(n_threads=16))
        session = pal.stream(scheme="nf")
        session.feed(head)
        assert not session.accepts
        session.feed(tail)
        assert session.accepts

    def test_carried_state_feeds_prediction(self, rng):
        """Chunk 0 of a later segment must start from the carried state,
        not q0 — a wrong anchor would corrupt every verified end."""
        dfa = classic.divisibility(7, base=10)
        digits = bytes(rng.integers(48, 58, size=1600).astype(np.uint8))
        pal = GSpecPal(dfa, GSpecPalConfig(n_threads=16))
        session = pal.stream(scheme="rr")
        session.feed(digits[:800])
        session.feed(digits[800:])
        assert session.state == dfa.run(digits)

    def test_per_segment_results_returned(self, scanner, rng):
        data = bytes(rng.integers(97, 123, size=1600).astype(np.uint8))
        pal = GSpecPal(scanner, GSpecPalConfig(n_threads=16))
        session = pal.stream(scheme="pm")
        r1 = session.feed(data[:800])
        r2 = session.feed(data[800:])
        assert r1.scheme.startswith("pm") and r2.scheme.startswith("pm")
        from repro.engine import resolve_backend_name

        if resolve_backend_name(None) == "sim":
            assert session.total_cycles == pytest.approx(r1.cycles + r2.cycles)
        else:
            assert np.isnan(session.total_cycles)
