"""CLI timeline/report command tests."""


from repro.cli import _render_timeline, main


def test_timeline_rendering():
    out = _render_timeline([1, 5, 10])
    assert "round 0" in out and "round 2" in out
    assert "#" in out


def test_timeline_empty():
    assert "no recovery rounds" in _render_timeline([])


def test_timeline_downsamples():
    out = _render_timeline(list(range(100)), max_rows=8)
    assert len(out.splitlines()) == 8
    assert "round 0" in out and "round 99" in out


def test_run_with_timeline(capsys):
    rc = main(
        ["run", "snort", "8", "--scheme", "rr",
         "--input-length", "8192", "--threads", "64",
         "--training-length", "2048", "--timeline"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "recovery-round activity" in out


def test_report_command(capsys, tmp_path):
    out_file = tmp_path / "report.md"
    assert main(["report", "--output", str(out_file)]) == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert "# Experiment report" in text


def test_report_to_stdout(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 8" in out
