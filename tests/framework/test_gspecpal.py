"""GSpecPal framework tests."""

import numpy as np
import pytest

from repro.framework import GSpecPal, GSpecPalConfig
from repro.workloads import classic
from repro.errors import SchemeError


@pytest.fixture(scope="module")
def easy_dfa():
    return classic.keyword_scanner(b"token")


@pytest.fixture()
def stream(rng):
    return bytes(rng.integers(97, 123, size=2000).astype(np.uint8))


@pytest.fixture()
def training(rng):
    return bytes(rng.integers(97, 123, size=500).astype(np.uint8))


class TestConfig:
    def test_defaults(self):
        cfg = GSpecPalConfig()
        assert cfg.n_threads == 256
        assert cfg.spec_k == 4
        assert cfg.own_registers == cfg.others_registers == 16
        assert cfg.use_transformation

    def test_validation(self):
        with pytest.raises(SchemeError):
            GSpecPalConfig(n_threads=1)
        with pytest.raises(SchemeError):
            GSpecPalConfig(spec_k=0)
        with pytest.raises(SchemeError):
            GSpecPalConfig(training_fraction=0.0)


class TestProfiling:
    def test_profile_with_explicit_training(self, easy_dfa, training):
        pal = GSpecPal(easy_dfa, training_input=training)
        f = pal.profile()
        assert f.name == easy_dfa.name
        assert pal.profile() is f  # cached

    def test_profile_without_training_needs_data(self, easy_dfa):
        pal = GSpecPal(easy_dfa)
        with pytest.raises(SchemeError):
            pal.profile()

    def test_profile_slices_data(self, easy_dfa, stream):
        pal = GSpecPal(easy_dfa, GSpecPalConfig(n_threads=16, min_training_symbols=256))
        f = pal.profile(stream)
        assert f is not None


class TestRun:
    def test_auto_selection_correct(self, easy_dfa, stream, training):
        pal = GSpecPal(easy_dfa, GSpecPalConfig(n_threads=16), training_input=training)
        result = pal.run(stream)
        assert result.end_state == easy_dfa.run(stream)
        assert result.scheme in ("pm-spec4", "sre", "rr", "nf", "sfa")

    def test_forced_scheme(self, easy_dfa, stream, training):
        pal = GSpecPal(easy_dfa, GSpecPalConfig(n_threads=16), training_input=training)
        for name in ("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq"):
            result = pal.run(stream, scheme=name)
            assert result.end_state == easy_dfa.run(stream), name

    def test_unknown_scheme(self, easy_dfa, stream, training):
        pal = GSpecPal(easy_dfa, training_input=training)
        with pytest.raises(SchemeError):
            pal.run(stream, scheme="warp-drive")

    def test_unknown_scheme_fails_before_profiling(self, easy_dfa, stream, monkeypatch):
        # No training input: a typo'd scheme must be rejected up front, not
        # after (or instead of) a profiling pass.
        pal = GSpecPal(easy_dfa)
        monkeypatch.setattr(
            pal, "profile", lambda *a, **k: pytest.fail("profiled before validation")
        )
        with pytest.raises(SchemeError, match="unknown scheme 'nfa'"):
            pal.run(stream, scheme="nfa")
        with pytest.raises(SchemeError, match="known schemes"):
            pal.stream(scheme="bogus")
        with pytest.raises(SchemeError):
            pal.compare_schemes(stream, schemes=("rr", "bogus"))

    def test_spec_k_alias_accepted(self, easy_dfa, stream, training):
        pal = GSpecPal(easy_dfa, GSpecPalConfig(n_threads=16), training_input=training)
        result = pal.run(stream, scheme=f"pm-spec{pal.config.spec_k}")
        assert result.end_state == easy_dfa.run(stream)

    def test_select_scheme_on_easy_fsm(self, easy_dfa, stream, training):
        pal = GSpecPal(easy_dfa, GSpecPalConfig(n_threads=16), training_input=training)
        # Keyword scanner converges fast: the tree must not pick PM.
        assert pal.select_scheme() in ("sre", "rr", "nf")

    def test_compare_schemes(self, easy_dfa, stream, training):
        pal = GSpecPal(easy_dfa, GSpecPalConfig(n_threads=16), training_input=training)
        results = pal.compare_schemes(stream)
        assert set(results) == {"pm", "sre", "rr", "nf", "sfa"}
        truth = easy_dfa.run(stream)
        assert all(r.end_state == truth for r in results.values())

    def test_transformation_ablation(self, easy_dfa, stream, training):
        # Pinned to the sim backend: the ablation compares cycle figures,
        # which only the cycle-accounting backend produces.
        on = GSpecPal(
            easy_dfa,
            GSpecPalConfig(n_threads=16, backend="sim"),
            training_input=training,
        ).run(stream, scheme="rr")
        off = GSpecPal(
            easy_dfa,
            GSpecPalConfig(n_threads=16, use_transformation=False, backend="sim"),
            training_input=training,
        ).run(stream, scheme="rr")
        assert on.end_state == off.end_state
        # The hash-table layout pays per-step overhead: RANK must be faster.
        assert on.cycles < off.cycles

    def test_register_config_respected(self, easy_dfa, stream, training):
        pal = GSpecPal(
            easy_dfa,
            GSpecPalConfig(n_threads=16, others_registers=2),
            training_input=training,
        )
        result = pal.run(stream, scheme="rr")
        assert result.end_state == easy_dfa.run(stream)
