"""Property tests for ``find_first_match`` offset semantics.

The reported offset is cross-checked against a symbol-at-a-time oracle
(``run_path`` + first accepting index) at the places where the parallel
rescan logic can slip: a match landing exactly on a chunk boundary, a
match at symbol 0, the balanced-fallback partition (input barely longer
than the chunk count), and streams that never match — across every
scheme and both execution backends.
"""

import numpy as np
import pytest

from repro.speculation.chunks import partition_input
from repro.framework import GSpecPal, GSpecPalConfig
from repro.workloads import classic

ALL_SCHEMES = ("pm", "sre", "rr", "nf", "sfa", "seq", "spec-seq")
N_THREADS = 8


@pytest.fixture(scope="module")
def scanner():
    return classic.keyword_scanner(b"abc")


def naive_first_match(dfa, data):
    accept = dfa.accepting_mask
    path = dfa.run_path(data)
    idx = int(np.argmax(accept[path]))
    return idx if accept[path[idx]] else None


def make_pal(dfa, backend, n_threads=N_THREADS):
    return GSpecPal(dfa, GSpecPalConfig(n_threads=n_threads, backend=backend))


def plant(rng, size, pos, needle=b"abc"):
    """Random non-matching filler with ``needle`` planted at ``pos``."""
    data = bytearray(rng.integers(100, 120, size=size).astype(np.uint8))
    data[pos : pos + len(needle)] = needle
    return bytes(data)


@pytest.mark.parametrize("backend", ["sim", "fast"])
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestOffsetSemantics:
    def test_match_at_symbol_zero(self, scanner, rng, scheme, backend):
        data = plant(rng, 256, 0)
        pal = make_pal(scanner, backend)
        offset = pal.find_first_match(data, scheme=scheme)
        assert offset == naive_first_match(scanner, data) == 3

    def test_match_on_chunk_boundaries(self, scanner, rng, scheme, backend):
        """Plant the needle so the accepting step is the LAST symbol of a
        chunk, then the FIRST symbol of the next — both rescans must agree
        with the oracle."""
        size = 333  # uneven partition exercises non-uniform offsets
        partition = partition_input(
            np.zeros(size, dtype=np.int64), N_THREADS
        )
        boundary = int(partition.offsets[2] + partition.lengths[2])  # end of chunk 2
        for pos in (boundary - 3, boundary - 2):
            data = plant(rng, size, pos)
            pal = make_pal(scanner, backend)
            offset = pal.find_first_match(data, scheme=scheme)
            assert offset == naive_first_match(scanner, data), pos

    def test_balanced_fallback_partition(self, scanner, rng, scheme, backend):
        """Input barely longer than the thread count forces the balanced
        fallback; offsets must stay exact with 1–2 symbol chunks."""
        for extra in (1, 2, 3):
            size = N_THREADS + extra
            data = plant(rng, size, size - 3)
            pal = make_pal(scanner, backend)
            offset = pal.find_first_match(data, scheme=scheme)
            assert offset == naive_first_match(scanner, data) == size, extra

    def test_never_matching_stream(self, scanner, rng, scheme, backend):
        data = bytes(rng.integers(100, 120, size=300).astype(np.uint8))
        pal = make_pal(scanner, backend)
        assert pal.find_first_match(data, scheme=scheme) is None

    def test_random_positions_agree_with_oracle(self, scanner, rng, scheme, backend):
        pal = make_pal(scanner, backend)
        for _ in range(5):
            size = int(rng.integers(64, 400))
            pos = int(rng.integers(0, size - 3))
            data = plant(rng, size, pos)
            assert pal.find_first_match(data, scheme=scheme) == naive_first_match(
                scanner, data
            )


class TestFirstOfSeveral:
    @pytest.mark.parametrize("backend", ["sim", "fast"])
    def test_earliest_match_wins_across_chunks(self, scanner, rng, backend):
        """With sticky accepts every later chunk also ends accepting; the
        rescan must still pick the earliest chunk's in-chunk offset."""
        data = bytearray(rng.integers(100, 120, size=480).astype(np.uint8))
        for pos in (401, 97, 260):
            data[pos : pos + 3] = b"abc"
        data = bytes(data)
        for scheme in ALL_SCHEMES:
            pal = make_pal(scanner, backend)
            assert (
                pal.find_first_match(data, scheme=scheme)
                == naive_first_match(scanner, data)
                == 100
            )
