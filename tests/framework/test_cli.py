"""CLI smoke tests (on the cached suite members)."""

import pytest

from repro.cli import main


def test_suite_listing(capsys):
    assert main(["suite", "snort"]) == 0
    out = capsys.readouterr().out
    assert "regime" in out and "pm" in out


def test_profile(capsys):
    assert main(["profile", "snort", "1", "--training-length", "4096"]) == 0
    out = capsys.readouterr().out
    assert "spec1_accuracy" in out
    assert "FSM" in out  # the explain() trace


def test_run_forced_scheme(capsys):
    rc = main(
        ["run", "snort", "1", "--scheme", "sre",
         "--input-length", "8192", "--threads", "64",
         "--training-length", "2048"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "scheme   : sre" in out
    assert "kernel" in out


def test_compare(capsys):
    rc = main(
        ["compare", "poweren", "3", "--input-length", "8192",
         "--threads", "64", "--training-length", "2048"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup/pm" in out
    assert "*" in out  # selector's pick marked


def test_run_fast_backend(capsys):
    rc = main(
        ["run", "snort", "1", "--scheme", "sre", "--backend", "fast",
         "--input-length", "8192", "--threads", "64",
         "--training-length", "2048"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "backend  : fast" in out
    assert "answer-only" in out


def test_backend_choices_enforced():
    with pytest.raises(SystemExit):
        main(["run", "snort", "1", "--backend", "cuda"])


def test_unknown_suite_rejected():
    with pytest.raises(SystemExit):
        main(["suite", "nids"])
