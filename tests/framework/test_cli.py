"""CLI smoke tests (on the cached suite members)."""

import pytest

from repro.cli import main


def test_suite_listing(capsys):
    assert main(["suite", "snort"]) == 0
    out = capsys.readouterr().out
    assert "regime" in out and "pm" in out


def test_profile(capsys):
    assert main(["profile", "snort", "1", "--training-length", "4096"]) == 0
    out = capsys.readouterr().out
    assert "spec1_accuracy" in out
    assert "FSM" in out  # the explain() trace


def test_run_forced_scheme(capsys):
    rc = main(
        ["run", "snort", "1", "--scheme", "sre",
         "--input-length", "8192", "--threads", "64",
         "--training-length", "2048"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "scheme   : sre" in out
    assert "kernel" in out


def test_compare(capsys):
    rc = main(
        ["compare", "poweren", "3", "--input-length", "8192",
         "--threads", "64", "--training-length", "2048"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup/pm" in out
    assert "*" in out  # selector's pick marked


def test_run_fast_backend(capsys):
    rc = main(
        ["run", "snort", "1", "--scheme", "sre", "--backend", "fast",
         "--input-length", "8192", "--threads", "64",
         "--training-length", "2048"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "backend  : fast" in out
    assert "answer-only" in out


def test_compile_then_run_from_plan(capsys, tmp_path):
    plan_path = str(tmp_path / "m.npz")
    rc = main(
        ["compile", "snort", "1", "-o", plan_path,
         "--training-length", "2048", "--threads", "64"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fingerprint" in out and "scheme" in out and "wrote" in out

    rc = main(
        ["run", "snort", "1", "--plan", plan_path,
         "--input-length", "8192", "--threads", "64"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "kernel" in out


def test_run_rejects_plan_for_wrong_member(capsys, tmp_path):
    from repro.errors import PlanError

    plan_path = str(tmp_path / "m.npz")
    assert main(
        ["compile", "snort", "1", "-o", plan_path,
         "--training-length", "2048", "--threads", "64"]
    ) == 0
    capsys.readouterr()
    with pytest.raises(PlanError, match="recompile"):
        main(
            ["run", "snort", "2", "--plan", plan_path,
             "--input-length", "8192", "--threads", "64"]
        )


def test_plan_cache_compiles_once_across_invocations(capsys, tmp_path):
    cache_dir = str(tmp_path / "plans")
    argv = ["run", "snort", "1", "--plan-cache", cache_dir,
            "--input-length", "8192", "--threads", "64",
            "--training-length", "2048"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    spills = list((tmp_path / "plans").glob("*.npz"))
    assert len(spills) == 1  # compiled and persisted
    mtime = spills[0].stat().st_mtime_ns
    assert main(argv) == 0  # second invocation serves from the cache
    second = capsys.readouterr().out
    assert spills[0].stat().st_mtime_ns == mtime  # not recompiled
    assert ("scheme   :" in first) and ("scheme   :" in second)


def test_compare_with_plan(capsys, tmp_path):
    plan_path = str(tmp_path / "m.npz")
    assert main(
        ["compile", "poweren", "3", "-o", plan_path,
         "--training-length", "2048", "--threads", "64"]
    ) == 0
    capsys.readouterr()
    rc = main(
        ["compare", "poweren", "3", "--plan", plan_path,
         "--input-length", "8192", "--threads", "64"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup/pm" in out and "*" in out


def test_backend_choices_enforced():
    with pytest.raises(SystemExit):
        main(["run", "snort", "1", "--backend", "cuda"])


def test_unknown_suite_rejected():
    with pytest.raises(SystemExit):
        main(["suite", "nids"])
