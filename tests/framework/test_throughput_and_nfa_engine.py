"""Tests for the two prior-art baselines: the stream-parallel throughput
engine and the state-parallel NFA engine."""

import numpy as np
import pytest

from repro.automata.regex import regex_to_nfa
from repro.framework.throughput import ThroughputEngine
from repro.schemes import SREScheme
from repro.schemes.nfa_engine import NFAEngine
from repro.workloads import classic
from repro.errors import SchemeError


@pytest.fixture(scope="module")
def dfa():
    return classic.keyword_scanner(b"alert")


@pytest.fixture()
def streams(rng):
    return [
        bytes(rng.integers(97, 123, size=int(rng.integers(100, 400))).astype(np.uint8))
        for _ in range(20)
    ]


class TestThroughputEngine:
    def test_batch_matches_scalar_runs(self, dfa, streams):
        engine = ThroughputEngine(dfa)
        result = engine.run_batch(streams)
        for i, s in enumerate(streams):
            assert result.per_stream_ends[i] == dfa.run(s)
            assert result.accepts[i] == dfa.accepts(s)

    def test_empty_batch_rejected(self, dfa):
        with pytest.raises(SchemeError):
            ThroughputEngine(dfa).run_batch([])

    def test_ragged_lengths(self, dfa):
        result = ThroughputEngine(dfa).run_batch([b"xxalertzz", b"no"])
        assert result.accepts[0] and not result.accepts[1]

    def test_throughput_beats_latency_engine_in_aggregate(self, dfa, streams, rng):
        """The classic trade-off: batch scanning moves more total symbols
        per cycle, while GSpecPal's chunk parallelism answers one stream
        sooner."""
        # Cycle comparison: needs the cycle-accounting backend on both sides.
        batch = ThroughputEngine(dfa, backend="sim").run_batch(streams)

        one = streams[0]
        training = bytes(rng.integers(97, 123, size=64).astype(np.uint8))
        latency_scheme = SREScheme.for_dfa(
            dfa, n_threads=16, training_input=training, backend="sim"
        )
        single = latency_scheme.run(one)

        # Aggregate: the batch engine processes all streams in roughly the
        # time of the longest one.
        longest = max(len(s) for s in streams)
        assert batch.total_symbols > longest
        # Single-stream response: the speculative scheme answers faster
        # than the batch takes end-to-end.
        assert single.cycles < batch.latency_cycles

    def test_with_transformation(self, dfa, streams, rng):
        training = bytes(rng.integers(97, 123, size=256).astype(np.uint8))
        engine = ThroughputEngine(dfa, training_input=training)
        result = engine.run_batch(streams)
        for i, s in enumerate(streams):
            assert result.per_stream_ends[i] == dfa.run(s)


class TestNFAEngine:
    @pytest.fixture(scope="class")
    def nfa(self):
        return regex_to_nfa("a(b|c)*d", n_symbols=128)

    def test_accepts_matches_nfa(self, nfa, rng):
        engine = NFAEngine(nfa)
        for _ in range(30):
            s = bytes(rng.integers(97, 103, size=int(rng.integers(0, 15))).astype(np.uint8))
            assert engine.run(s).accepts == nfa.accepts(s), s

    def test_cost_scales_with_stream_length(self, nfa, rng):
        engine = NFAEngine(nfa)
        short = engine.run(bytes(rng.integers(97, 103, size=100).astype(np.uint8)))
        long = engine.run(bytes(rng.integers(97, 103, size=1000).astype(np.uint8)))
        # Sequential per-symbol processing: latency grows ~linearly.
        assert long.cycles > 5 * short.cycles

    def test_small_nfa_masks_fit_shared(self, nfa):
        assert NFAEngine(nfa).masks_in_shared

    def test_memory_footprint_reported(self, nfa):
        assert NFAEngine(nfa).memory_footprint_bytes > 0

    def test_chunk_parallel_dfa_beats_nfa_engine_latency(self, rng):
        """The paper's core motivation measured end to end: on one stream
        the chunk-parallel DFA answers much sooner than the state-parallel
        NFA engine, whose latency is O(stream length)."""
        from repro.automata.regex import compile_regex

        pattern = "alert[0-9]{2}"
        nfa = regex_to_nfa(pattern, n_symbols=128)
        for sym in range(128):
            nfa.add_transition(nfa.start, sym, nfa.start)
        nfa.make_accepting_sticky()
        dfa = compile_regex(pattern, n_symbols=128)

        data = bytes(rng.integers(97, 123, size=4096).astype(np.uint8))
        training = bytes(rng.integers(97, 123, size=256).astype(np.uint8))

        nfa_result = NFAEngine(nfa).run(data)
        dfa_scheme = SREScheme.for_dfa(dfa, n_threads=64, training_input=training)
        dfa_result = dfa_scheme.run(data)
        assert dfa_result.accepts == nfa_result.accepts
        assert dfa_result.cycles < nfa_result.cycles
