"""StreamSession invariants: carried state, accept tracking, accounting.

``test_streaming_and_matching.py`` checks the matcher semantics; this file
pins down the session object itself — that feeding a stream in k segments is
state-equivalent to one shot for *any* k, that ``accepts``/``segments``
track the carried state, that cycles accumulate per segment, and that a
traced session nests one ``stream.feed`` span per segment.
"""

import numpy as np
import pytest

from repro.framework import GSpecPal, GSpecPalConfig
from repro.observability import Tracer


@pytest.fixture()
def pal(scanner_dfa, rng):
    training = bytes(rng.integers(97, 123, size=256).astype(np.uint8))
    return GSpecPal(
        scanner_dfa, GSpecPalConfig(n_threads=8), training_input=training
    )


def segment(data, k):
    """Split ``data`` into k near-equal contiguous pieces (all non-empty)."""
    n = len(data)
    bounds = np.linspace(0, n, k + 1).astype(int)
    return [data[bounds[i] : bounds[i + 1]] for i in range(k)]


@pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
def test_k_segment_state_equals_one_shot(pal, scanner_dfa, rng, k):
    data = bytes(rng.integers(97, 123, size=640).astype(np.uint8))
    session = pal.stream(scheme="rr")
    for piece in segment(data, k):
        session.feed(piece)
    assert session.state == scanner_dfa.run(data)
    assert session.segments == k
    assert session.total_symbols == len(data)


def test_accepts_property_tracks_carried_state(scanner_dfa, rng):
    training = bytes(rng.integers(97, 123, size=256).astype(np.uint8))
    pal = GSpecPal(
        scanner_dfa, GSpecPalConfig(n_threads=4), training_input=training
    )
    session = pal.stream(scheme="sre")
    assert not session.accepts  # fresh session sits at q0
    filler = bytes(rng.integers(101, 119, size=64).astype(np.uint8))
    session.feed(filler)
    assert not session.accepts
    # Sticky accept: once "abc" matches mid-segment, the state stays final.
    session.feed(b"abc" + filler)
    assert session.accepts
    session.feed(filler)
    assert session.accepts


def test_cycles_accumulate_per_segment(pal, rng):
    from repro.engine import resolve_backend_name

    data = bytes(rng.integers(97, 123, size=480).astype(np.uint8))
    session = pal.stream(scheme="nf")
    per_segment = [session.feed(piece).cycles for piece in segment(data, 3)]
    if resolve_backend_name(None) == "sim":
        assert all(c > 0 for c in per_segment)
        assert session.total_cycles == pytest.approx(sum(per_segment))
    else:
        # Answer-only backend: the accumulated figure would be a lie, so
        # the session reports NaN instead.
        assert np.isnan(session.total_cycles)


def test_each_scheme_preserves_segmented_equivalence(scanner_dfa, rng):
    data = bytes(rng.integers(97, 123, size=400).astype(np.uint8))
    training = bytes(rng.integers(97, 123, size=200).astype(np.uint8))
    truth = scanner_dfa.run(data)
    for scheme in GSpecPal.SELECTABLE + ("seq", "spec-seq"):
        pal = GSpecPal(
            scanner_dfa, GSpecPalConfig(n_threads=8), training_input=training
        )
        session = pal.stream(scheme=scheme)
        for piece in segment(data, 4):
            session.feed(piece)
        assert session.state == truth, scheme


def test_session_reuses_one_scheme_instance(pal, rng, monkeypatch):
    """Regression: feeding N same-scheme segments must build the scheme
    exactly once — per-segment re-instantiation was pure constructor waste
    (schemes hold no cross-run state)."""
    calls = []
    original = pal.build_scheme

    def counting(name):
        calls.append(name)
        return original(name)

    monkeypatch.setattr(pal, "build_scheme", counting)
    session = pal.stream(scheme="rr")
    for _ in range(5):
        session.feed(bytes(rng.integers(97, 123, size=128).astype(np.uint8)))
    assert calls == ["rr"]
    assert session.segments == 5


def test_session_rebuilds_on_scheme_change(pal, rng, monkeypatch):
    calls = []
    original = pal.build_scheme

    def counting(name):
        calls.append(name)
        return original(name)

    monkeypatch.setattr(pal, "build_scheme", counting)
    session = pal.stream(scheme="rr")
    data = bytes(rng.integers(97, 123, size=128).astype(np.uint8))
    session.feed(data)
    session._scheme = "nf"  # simulate a per-segment selection flip
    session.feed(data)
    session.feed(data)
    assert calls == ["rr", "nf"]


def test_traced_session_emits_one_feed_span_per_segment(scanner_dfa, rng):
    training = bytes(rng.integers(97, 123, size=256).astype(np.uint8))
    tracer = Tracer()
    pal = GSpecPal(
        scanner_dfa,
        GSpecPalConfig(n_threads=8),
        training_input=training,
        tracer=tracer,
    )
    data = bytes(rng.integers(97, 123, size=320).astype(np.uint8))
    session = pal.stream(scheme="rr")
    for piece in segment(data, 3):
        session.feed(piece)
    feeds = tracer.find_all("stream.feed")
    assert len(feeds) == 3
    assert [s.attrs["segment"] for s in feeds] == [0, 1, 2]
    # Each feed span carries the state handoff and nests the scheme run.
    for i, span in enumerate(feeds):
        assert span.attrs["scheme"] == "rr"
        assert any(c.name.startswith("scheme:") for c in span.children)
        if i:
            assert span.attrs["carried_state"] == feeds[i - 1].attrs["end_state"]


def test_scheme_property_exposes_run_scheme(pal, rng):
    """The public ``scheme`` property: None before an unforced session has
    consulted the selector, the forced name immediately when forced, and
    the actually-run scheme once fed (no private attribute reaching)."""
    unforced = pal.stream()
    assert unforced.scheme is None
    unforced.feed(bytes(rng.integers(97, 123, size=128).astype(np.uint8)))
    assert unforced.scheme is not None

    forced = pal.stream(scheme="rr")
    assert forced.scheme == "rr"  # known before any segment runs
    forced.feed(b"abc" * 16)
    assert forced.scheme == "rr"
