"""Backend selection threaded through the framework layer.

Covers config validation, the environment-variable default,
``StreamSession`` carrying state identically across backends, and the
throughput engine's functional parity.
"""

import numpy as np
import pytest

from repro.automata import compile_regex
from repro.engine import BACKEND_ENV_VAR
from repro.errors import SimulationError
from repro.framework import GSpecPal, GSpecPalConfig
from repro.framework.throughput import ThroughputEngine


@pytest.fixture(scope="module")
def dfa():
    return compile_regex("(ab|ba)+c", n_symbols=128, name="fw-backend")


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(99)
    return rng.integers(97, 123, size=4096).astype(np.uint8)


def test_config_rejects_unknown_backend():
    with pytest.raises(SimulationError):
        GSpecPalConfig(backend="tpu")


def test_config_backend_reaches_the_simulator(dfa, data):
    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=8, backend="fast"))
    pal.run(data, scheme="rr")
    assert pal._simulator().backend_name == "fast"


def test_env_var_sets_the_default(dfa, data, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=8))
    pal.run(data, scheme="nf")
    assert pal._simulator().backend_name == "fast"


def test_stream_session_parity(dfa, data):
    """Segment-by-segment carried state is identical across backends."""
    sessions = {
        backend: GSpecPal(
            dfa, GSpecPalConfig(n_threads=8, backend=backend)
        ).stream(scheme="sre")
        for backend in ("sim", "fast")
    }
    for lo in range(0, data.size, 512):
        segment = data[lo : lo + 512]
        r_sim = sessions["sim"].feed(segment)
        r_fast = sessions["fast"].feed(segment)
        assert r_fast.end_state == r_sim.end_state
        assert sessions["fast"].state == sessions["sim"].state
        assert sessions["fast"].accepts == sessions["sim"].accepts


def test_throughput_engine_parity(dfa):
    rng = np.random.default_rng(3)
    streams = [
        rng.integers(97, 123, size=int(rng.integers(10, 400))).astype(np.uint8)
        for _ in range(12)
    ]
    sim = ThroughputEngine(dfa, backend="sim").run_batch(streams)
    fast = ThroughputEngine(dfa, backend="fast").run_batch(streams)
    np.testing.assert_array_equal(fast.per_stream_ends, sim.per_stream_ends)
    np.testing.assert_array_equal(fast.accepts, sim.accepts)
    assert sim.stats.transitions > 0 and fast.stats.transitions == 0


def test_fast_backend_reports_nan_cycles_not_zero(dfa):
    """Regression: the answer-only backend used to report 0 cycles,
    making it look infinitely fast in any cross-backend comparison.
    Cycle-derived figures are NaN when the engine doesn't account them."""
    rng = np.random.default_rng(7)
    streams = [rng.integers(97, 123, size=200).astype(np.uint8) for _ in range(4)]
    fast = ThroughputEngine(dfa, backend="fast").run_batch(streams)
    assert not fast.accounts_cycles
    assert np.isnan(fast.latency_cycles)
    assert np.isnan(fast.throughput_symbols_per_cycle)
    sim = ThroughputEngine(dfa, backend="sim").run_batch(streams)
    assert sim.accounts_cycles
    assert np.isfinite(sim.latency_cycles) and sim.latency_cycles > 0
    assert sim.throughput_symbols_per_cycle > 0


def test_fast_backend_session_cycles_are_nan_and_sticky(dfa, data):
    session = GSpecPal(
        dfa, GSpecPalConfig(n_threads=8, backend="fast")
    ).stream(scheme="rr")
    session.feed(data[:512])
    assert np.isnan(session.total_cycles)
    session.feed(data[512:1024])
    assert np.isnan(session.total_cycles)  # NaN is sticky, never resets
