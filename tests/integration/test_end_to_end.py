"""End-to-end integration: suite members through the whole GSpecPal stack."""

import numpy as np
import pytest

from repro.analysis.experiments import run_member, verify_against_sequential
from repro.workloads.suites import build_member


@pytest.fixture(scope="module")
def pm_member():
    return build_member("snort", 1)


@pytest.fixture(scope="module")
def rr_member():
    return build_member("snort", 8)


def test_pm_member_end_to_end(pm_member):
    run = run_member(
        pm_member, input_length=8192, training_length=4096, n_threads=64
    )
    data = pm_member.generate_input(8192, seed=0)
    assert verify_against_sequential(run, data)
    assert run.selected in ("pm", "sre", "rr", "nf", "sfa")
    assert set(run.results) >= {"pm", "sre", "rr", "nf"}


def test_rr_member_regime_dynamics(rr_member):
    run = run_member(
        rr_member, input_length=16384, training_length=4096, n_threads=128
    )
    data = rr_member.generate_input(16384, seed=0)
    assert verify_against_sequential(run, data)
    # Aggressive recovery must activate far more threads than SRE here.
    assert (
        run.results["rr"].stats.avg_active_threads
        > run.results["sre"].stats.avg_active_threads
    )
    # And lift the runtime speculation accuracy (Table III shape).
    assert (
        run.results["rr"].stats.runtime_speculation_accuracy
        > run.results["sre"].stats.runtime_speculation_accuracy
    )


def test_speedups_are_finite(pm_member):
    run = run_member(pm_member, input_length=8192, training_length=4096, n_threads=64)
    for scheme, speedup in run.speedup_over("pm").items():
        assert np.isfinite(speedup) and speedup > 0, scheme


def test_best_scheme_exists(pm_member):
    run = run_member(pm_member, input_length=8192, training_length=4096, n_threads=64)
    assert run.best_scheme in run.results
