"""Examples must at least be importable/compilable; the quickstart's core
path is executed end-to-end at a reduced size."""

import py_compile
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "intrusion_detection.py", "virus_scanning.py",
            "scheme_explorer.py"} <= names


def test_quickstart_core_path():
    """The quickstart's flow at 1/8 scale."""
    from repro import GSpecPal, GSpecPalConfig
    from repro.workloads import classic

    rng = np.random.default_rng(42)
    dfa = classic.div7()
    stream = rng.integers(ord("0"), ord("1") + 1, size=8_192).astype(np.uint8)
    pal = GSpecPal(dfa, GSpecPalConfig(n_threads=64))
    result = pal.run(stream)
    assert result.end_state == dfa.run(stream)
    comparison = pal.compare_schemes(stream)
    assert len(comparison) == 5  # pm, sre, rr, nf, sfa
