"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.automata import compile_disjunction
from repro.gpu.device import DeviceSpec
from repro.workloads import classic


@pytest.fixture(scope="session")
def small_device() -> DeviceSpec:
    """A small simulated GPU so hot/cold splits are exercised in tests."""
    return DeviceSpec(
        name="test-gpu",
        n_sms=4,
        cores_per_sm=32,
        warp_size=8,
        shared_memory_bytes_per_sm=16 * 1024,
        max_resident_warps_per_sm=8,
    )


@pytest.fixture(scope="session")
def div7():
    return classic.div7()


@pytest.fixture(scope="session")
def scanner_dfa():
    """A small realistic scanner with sticky accepts."""
    return compile_disjunction(
        ["abc", "a(b|c){2,4}d", "xy+z"], n_symbols=128, name="test-scanner"
    )


@pytest.fixture(scope="session")
def rotator():
    """The adversarial non-converging FSM."""
    return classic.cyclic_rotator(12, n_symbols=64)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def random_stream(rng, length: int, lo: int = 97, hi: int = 123) -> bytes:
    """Random byte stream in [lo, hi)."""
    return bytes(rng.integers(lo, hi, size=length).astype(np.uint8))
