"""Pluggable-predictor tests."""

import numpy as np
import pytest

from repro.schemes import NFScheme, SREScheme
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import true_start_states
from repro.speculation.predictors import (
    PREDICTOR_REGISTRY,
    AdaptiveLookbackPredictor,
    LookbackPredictor,
    OraclePredictor,
    UniformPredictor,
)
from repro.workloads.components import counter_component
from repro.automata.dfa import DFA
from repro.errors import SchemeError


@pytest.fixture(scope="module")
def dfa():
    comp = counter_component(9, n_symbols=64, sync_symbols=(5,), seed=7)
    return DFA(table=comp.table, start=0, accepting=frozenset({0}))


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(20)
    data = rng.integers(0, 64, size=1024).astype(np.uint8)
    syncs = rng.random(1024) < 0.05
    data[syncs] = 5
    return data


def accuracy(pred, dfa, partition, k=1):
    truth = true_start_states(dfa, partition)
    return pred.accuracy_against(truth, k=k)


class TestLookback:
    def test_window_validation(self):
        with pytest.raises(SchemeError):
            LookbackPredictor(0)

    def test_matches_default_at_window_2(self, dfa, stream):
        from repro.speculation.predictor import predict_start_states

        p = partition_input(stream, 16)
        a = LookbackPredictor(2).predict(dfa, p, dfa.start)
        b = predict_start_states(dfa, p)
        for qa, qb in zip(a.queues, b.queues):
            assert np.array_equal(qa.states, qb.states)

    def test_longer_window_no_worse(self, dfa, stream):
        p = partition_input(stream, 16)
        short = accuracy(LookbackPredictor(1).predict(dfa, p, dfa.start), dfa, p)
        long = accuracy(LookbackPredictor(8).predict(dfa, p, dfa.start), dfa, p)
        assert long >= short

    def test_truth_always_contained(self, dfa, stream):
        p = partition_input(stream, 16)
        pred = LookbackPredictor(4).predict(dfa, p, dfa.start)
        truth = true_start_states(dfa, p)
        for i in range(1, 16):
            assert pred.queues[i].rank_of(int(truth[i])) is not None


class TestAdaptive:
    def test_validation(self):
        with pytest.raises(SchemeError):
            AdaptiveLookbackPredictor(target_candidates=0)

    def test_truth_contained_and_queues_small_near_syncs(self, dfa, stream):
        p = partition_input(stream, 16)
        pred = AdaptiveLookbackPredictor(target_candidates=3, max_window=32).predict(
            dfa, p, dfa.start
        )
        truth = true_start_states(dfa, p)
        for i in range(1, 16):
            assert pred.queues[i].rank_of(int(truth[i])) is not None

    def test_at_least_as_accurate_as_fixed_2(self, dfa, stream):
        p = partition_input(stream, 16)
        fixed = accuracy(LookbackPredictor(2).predict(dfa, p, dfa.start), dfa, p, k=2)
        adaptive = accuracy(
            AdaptiveLookbackPredictor(target_candidates=2, max_window=32).predict(
                dfa, p, dfa.start
            ),
            dfa,
            p,
            k=2,
        )
        assert adaptive >= fixed - 1e-12


class TestBounds:
    def test_oracle_is_perfect(self, dfa, stream):
        p = partition_input(stream, 16)
        pred = OraclePredictor().predict(dfa, p, dfa.start)
        assert accuracy(pred, dfa, p, k=1) == 1.0

    def test_uniform_contains_everything(self, dfa, stream):
        p = partition_input(stream, 16)
        pred = UniformPredictor().predict(dfa, p, dfa.start)
        assert accuracy(pred, dfa, p, k=dfa.n_states) == 1.0
        assert pred.queues[1].states.size == dfa.n_states


class TestSchemesUnderPredictors:
    @pytest.mark.parametrize("key", sorted(PREDICTOR_REGISTRY))
    def test_correctness_under_every_predictor(self, key, dfa, stream):
        predictor = PREDICTOR_REGISTRY[key]()
        truth = dfa.run(stream)
        for cls in (SREScheme, NFScheme):
            scheme = cls.for_dfa(
                dfa,
                n_threads=8,
                training_input=bytes(stream[:128]),
                predictor=predictor,
            )
            assert scheme.run(stream).end_state == truth, (key, cls.__name__)

    def test_oracle_never_recovers(self, dfa, stream):
        scheme = SREScheme.for_dfa(
            dfa,
            n_threads=8,
            training_input=bytes(stream[:128]),
            predictor=OraclePredictor(),
        )
        result = scheme.run(stream)
        assert result.stats.recoveries_executed == 0

    def test_uniform_needs_more_recoveries_than_lookback(self, dfa, stream):
        """Under Algorithm 2 (sequential recovery), prediction quality maps
        directly to recovery count: the informed predictor must trigger no
        more recoveries than the uninformed one."""
        from repro.schemes import SpecSequentialScheme

        base = dict(n_threads=16, training_input=bytes(stream[:128]))
        look = SpecSequentialScheme.for_dfa(
            dfa, predictor=LookbackPredictor(2), **base
        ).run(stream)
        uni = SpecSequentialScheme.for_dfa(
            dfa, predictor=UniformPredictor(), **base
        ).run(stream)
        assert look.stats.recoveries_executed <= uni.stats.recoveries_executed
