"""Input-partitioning tests."""

import numpy as np
import pytest

from repro.speculation.chunks import partition_input
from repro.errors import SchemeError


def test_even_split():
    p = partition_input(np.arange(100, dtype=np.uint8), 4)
    assert p.n_chunks == 4
    assert p.chunk_len == 25
    assert p.lengths.tolist() == [25, 25, 25, 25]
    assert p.total_length == 100


def test_ragged_tail():
    p = partition_input(np.arange(10, dtype=np.uint8), 3)
    assert p.lengths.sum() == 10
    assert p.lengths[-1] <= p.chunk_len


def test_chunks_reassemble_stream():
    data = np.arange(97, dtype=np.uint8)
    p = partition_input(data, 7)
    rebuilt = np.concatenate([p.chunk(i) for i in range(7)])
    assert np.array_equal(rebuilt, data)


def test_offsets_consistent():
    data = np.arange(50, dtype=np.uint8)
    p = partition_input(data, 4)
    for i in range(4):
        off = int(p.offsets[i])
        assert np.array_equal(p.chunk(i), data[off : off + int(p.lengths[i])])


def test_single_chunk():
    p = partition_input(b"abcdef", 1)
    assert p.n_chunks == 1
    assert bytes(p.chunk(0)) == b"abcdef"


def test_n_equals_len():
    p = partition_input(np.arange(5, dtype=np.uint8), 5)
    assert (p.lengths >= 1).all()
    assert p.lengths.sum() == 5


def test_just_above_n_chunks_balanced():
    # 7 symbols / 5 chunks: equal split would starve trailing chunks.
    p = partition_input(np.arange(7, dtype=np.uint8), 5)
    assert (p.lengths >= 1).all()
    assert p.lengths.sum() == 7
    rebuilt = np.concatenate([p.chunk(i) for i in range(5)])
    assert np.array_equal(rebuilt, np.arange(7, dtype=np.uint8))


def test_last_symbols_of():
    data = np.arange(40, dtype=np.uint8)
    p = partition_input(data, 4)
    assert p.last_symbols_of(0, 2).tolist() == [8, 9]
    assert p.last_symbols_of(3, 2).tolist() == [38, 39]


def test_last_symbols_capped_by_chunk_length():
    p = partition_input(np.arange(4, dtype=np.uint8), 4)
    assert p.last_symbols_of(0, 2).tolist() == [0]


def test_too_many_chunks_rejected():
    with pytest.raises(SchemeError):
        partition_input(b"ab", 3)


def test_zero_chunks_rejected():
    with pytest.raises(SchemeError):
        partition_input(b"ab", 0)


def test_bytes_input():
    p = partition_input(b"hello world!", 3)
    assert p.total_length == 12
    assert bytes(p.symbols) == b"hello world!"
