"""Hypothesis property tests for speculation queues and VR stores."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.speculation.predictor import SpeculationQueue
from repro.speculation.records import VRStore
from repro.errors import SchemeError


@st.composite
def queue(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    states = rng.permutation(100)[:n]
    weights = np.sort(rng.integers(1, 50, size=n))[::-1]
    return SpeculationQueue(states=states, weights=weights)


@settings(max_examples=50, deadline=None)
@given(queue())
def test_dequeue_drains_in_order(q):
    expected = q.states.tolist()
    drained = [q.dequeue() for _ in range(q.size)]
    assert drained == expected
    assert q.size == 0
    with pytest.raises(SchemeError):
        q.front()


@settings(max_examples=50, deadline=None)
@given(queue(), st.integers(min_value=0, max_value=40))
def test_top_k_prefix_property(q, k):
    top = q.top_k(k)
    assert top.size == min(k, q.states.size)
    assert np.array_equal(top, q.states[: top.size])


@settings(max_examples=50, deadline=None)
@given(queue())
def test_rank_of_consistency(q):
    for rank, state in enumerate(q.states.tolist()):
        assert q.rank_of(int(state)) == rank
    assert q.rank_of(101) is None  # outside the state universe used


@st.composite
def vr_ops(draw):
    n_chunks = draw(st.integers(min_value=1, max_value=6))
    own_cap = draw(st.integers(min_value=1, max_value=5))
    others_cap = draw(st.integers(min_value=0, max_value=5))
    n_ops = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    ops = [
        (
            int(rng.integers(0, n_chunks)),
            int(rng.integers(0, 20)),
            int(rng.integers(0, 20)),
            bool(rng.integers(0, 2)),
        )
        for _ in range(n_ops)
    ]
    return n_chunks, own_cap, others_cap, ops


@settings(max_examples=60, deadline=None)
@given(vr_ops())
def test_vrstore_invariants(case):
    n_chunks, own_cap, others_cap, ops = case
    vr = VRStore(n_chunks=n_chunks, own_capacity=own_cap, others_capacity=others_cap)
    model = [dict() for _ in range(n_chunks)]  # chunk -> start -> end
    for chunk, start, end, own in ops:
        stored = vr.add(chunk, start, end, own=own)
        if stored and start not in model[chunk]:
            model[chunk][start] = end
        # Capacity invariants hold at every point.
        records = vr.records(chunk)
        assert sum(1 for r in records if r.own) <= own_cap
        assert sum(1 for r in records if not r.own) <= others_cap
    # Lookup agrees with the reference model (first-write-wins).
    for chunk in range(n_chunks):
        for start, end in model[chunk].items():
            assert vr.lookup(chunk, start) == end
        assert vr.count(chunk) == len(model[chunk])


@settings(max_examples=40, deadline=None)
@given(vr_ops())
def test_vrstore_shared_traffic_counts_foreign_only(case):
    n_chunks, own_cap, others_cap, ops = case
    vr = VRStore(n_chunks=n_chunks, own_capacity=own_cap, others_capacity=others_cap)
    foreign_stored = 0
    seen = set()
    for chunk, start, end, own in ops:
        stored = vr.add(chunk, start, end, own=own)
        if stored and not own and (chunk, start) not in seen:
            foreign_stored += 1
        if stored:
            seen.add((chunk, start))
    assert vr.stores_to_shared == foreign_stored
    assert vr.loads_from_shared == foreign_stored
