"""LiveObservations: the per-run evidence record behind drift detection.

Every scheme run returns one (attached by the scheme layer's audit wrap):
speculative schemes carry their verified chunk-boundary hits/misses at the
depth they actually speculate, misprediction-free schemes carry volume and
a symbol sketch only.  ``absorb`` must merge records from heterogeneous
runs without losing counts — that is what the pool-side aggregate and the
breach window are built from.
"""

import math

import numpy as np
import pytest

from repro.schemes import PMScheme, SFAScheme
from repro.speculation import LiveObservations
from repro.workloads import classic


@pytest.fixture(scope="module")
def case():
    dfa = classic.keyword_scanner(b"obs")
    rng = np.random.default_rng(11)
    training = bytes(rng.integers(97, 123, size=512).astype(np.uint8))
    data = bytes(rng.integers(97, 123, size=1600).astype(np.uint8))
    return dfa, training, data


def test_pm_run_attaches_boundary_evidence(case):
    dfa, training, data = case
    scheme = PMScheme.for_dfa(dfa, n_threads=16, training_input=training, k=4)
    result = scheme.run(data)
    obs = result.observations
    assert obs is not None
    assert obs.scheme == scheme.name
    assert obs.spec_k == 4
    assert obs.segments == 1
    assert obs.symbols == len(data)
    # One verified boundary per chunk seam: n_chunks - 1.
    assert obs.boundary_samples == 15
    assert 0.0 <= obs.spec_accuracy <= 1.0
    assert obs.symbol_sketch is not None
    assert int(obs.symbol_sketch.sum()) == len(data)


def test_sfa_run_is_sample_free(case):
    dfa, training, data = case
    scheme = SFAScheme.for_dfa(dfa, n_threads=16, training_input=training)
    result = scheme.run(data)
    obs = result.observations
    assert obs is not None
    assert obs.boundary_samples == 0
    assert math.isnan(obs.spec_accuracy)
    # The volume/sketch side still reports, so drift aggregates keep
    # seeing the traffic distribution even under sample-free schemes.
    assert obs.symbols == len(data)
    assert int(obs.symbol_sketch.sum()) == len(data)
    assert obs.summary()["spec_accuracy"] == -1.0


def test_absorb_merges_counts_and_sketches():
    a = LiveObservations(
        scheme="pm-spec4", spec_k=4, segments=1, symbols=10,
        spec_hits=3, spec_misses=1,
        symbol_sketch=np.array([5, 5], dtype=np.int64),
    )
    b = LiveObservations(
        scheme="sre", spec_k=1, segments=2, symbols=6,
        spec_hits=2, spec_misses=0,
        symbol_sketch=np.array([3, 3], dtype=np.int64),
    )
    a.absorb(b)
    assert a.scheme == "merged"
    assert a.spec_k == 4  # first record with boundary evidence wins
    assert a.segments == 3
    assert a.symbols == 16
    assert a.boundary_samples == 6
    assert a.spec_accuracy == pytest.approx(5 / 6)
    assert a.symbol_sketch.tolist() == [8, 8]


def test_absorb_into_empty_adopts_the_donor():
    empty = LiveObservations()
    donor = LiveObservations(
        scheme="pm-spec2", spec_k=2, segments=1, symbols=8,
        spec_hits=1, spec_misses=1,
    )
    empty.absorb(donor)
    assert empty.scheme == "pm-spec2"
    assert empty.spec_k == 2
    assert empty.boundary_samples == 2


def test_copy_is_independent():
    original = LiveObservations(
        scheme="pm-spec4", spec_k=4, segments=1, symbols=4,
        spec_hits=1, spec_misses=0,
        symbol_sketch=np.array([4], dtype=np.int64),
    )
    clone = original.copy()
    clone.absorb(original)
    assert original.segments == 1
    assert original.symbol_sketch.tolist() == [4]
    assert clone.segments == 2


def test_summary_is_json_scalar_only():
    obs = LiveObservations(
        scheme="pm-spec4", spec_k=4, segments=2, symbols=64,
        spec_hits=5, spec_misses=5,
        symbol_sketch=np.arange(4, dtype=np.int64),
    )
    summary = obs.summary()
    assert summary["boundary_samples"] == 10
    assert summary["spec_accuracy"] == pytest.approx(0.5)
    for value in summary.values():
        assert isinstance(value, (int, float, str))
