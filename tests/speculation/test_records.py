"""VRStore (verification-record hierarchy) tests."""

import pytest

from repro.gpu.device import RTX3090
from repro.gpu.stats import KernelStats
from repro.speculation.records import VRStore
from repro.errors import SchemeError


@pytest.fixture()
def vr():
    return VRStore(n_chunks=4, own_capacity=2, others_capacity=2)


def test_add_and_lookup(vr):
    assert vr.add(0, start=3, end=5, own=True)
    assert vr.lookup(0, 3) == 5
    assert vr.lookup(0, 4) is None
    assert vr.lookup(1, 3) is None


def test_duplicate_start_is_noop(vr):
    vr.add(0, 3, 5, own=True)
    assert vr.add(0, 3, 5, own=False)  # reported stored, nothing added
    assert vr.count(0) == 1


def test_own_capacity_enforced(vr):
    assert vr.add(0, 1, 1, own=True)
    assert vr.add(0, 2, 2, own=True)
    assert not vr.add(0, 3, 3, own=True)
    assert vr.dropped_records == 1
    assert vr.lookup(0, 3) is None


def test_others_capacity_independent(vr):
    vr.add(0, 1, 1, own=True)
    vr.add(0, 2, 2, own=True)
    assert vr.add(0, 3, 3, own=False)  # own full, others has room
    assert vr.add(0, 4, 4, own=False)
    assert not vr.add(0, 5, 5, own=False)


def test_others_full(vr):
    assert not vr.others_full(0)
    vr.add(0, 1, 1, own=False)
    vr.add(0, 2, 2, own=False)
    assert vr.others_full(0)
    assert not vr.others_full(1)


def test_foreign_records_stage_through_shared(vr):
    vr.add(0, 1, 1, own=False)
    assert vr.stores_to_shared == 1
    assert vr.loads_from_shared == 1
    vr.add(0, 2, 2, own=True)
    assert vr.stores_to_shared == 1  # own records stay in registers


def test_charge_shared_traffic_resets(vr):
    vr.add(0, 1, 1, own=False)
    stats = KernelStats(device=RTX3090, n_threads=4)
    vr.charge_shared_traffic(stats, "p")
    assert stats.cycles == 2 * RTX3090.shared_cycles
    assert stats.shared_accesses == 2
    vr.charge_shared_traffic(stats, "p")
    assert stats.cycles == 2 * RTX3090.shared_cycles  # nothing new


def test_charge_check(vr):
    vr.add(1, 1, 1, own=True)
    vr.add(1, 2, 2, own=True)
    stats = KernelStats(device=RTX3090, n_threads=4)
    vr.charge_check(stats, 1, "p")
    assert stats.verify_ops == 2
    assert stats.cycles == 2 * RTX3090.verify_cycles


def test_records_view_immutable_tuple(vr):
    vr.add(0, 1, 2, own=True)
    records = vr.records(0)
    assert isinstance(records, tuple)
    assert records[0].start == 1 and records[0].end == 2 and records[0].own


def test_starts_tried(vr):
    vr.add(2, 5, 6, own=True)
    vr.add(2, 7, 8, own=False)
    assert sorted(vr.starts_tried(2).tolist()) == [5, 7]


def test_invalid_configs():
    with pytest.raises(SchemeError):
        VRStore(n_chunks=0)
    with pytest.raises(SchemeError):
        VRStore(n_chunks=1, own_capacity=0)
    with pytest.raises(SchemeError):
        VRStore(n_chunks=1, others_capacity=-1)


def test_zero_others_capacity_drops_everything():
    vr = VRStore(n_chunks=2, others_capacity=0)
    assert not vr.add(0, 1, 1, own=False)
    assert vr.dropped_records == 1
