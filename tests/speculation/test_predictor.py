"""All-state lookback-2 predictor tests."""

import numpy as np
import pytest

from repro.gpu.device import RTX3090
from repro.gpu.stats import KernelStats
from repro.speculation.chunks import partition_input
from repro.speculation.predictor import (
    SpeculationQueue,
    predict_start_states,
    true_start_states,
)
from repro.workloads import classic
from repro.errors import SchemeError


class TestSpeculationQueue:
    def test_front_and_dequeue(self):
        q = SpeculationQueue(states=np.array([3, 1, 2]), weights=np.array([5, 2, 1]))
        assert q.front() == 3
        assert q.dequeue() == 3
        assert q.front() == 1
        assert q.size == 2

    def test_exhaustion_raises(self):
        q = SpeculationQueue(states=np.array([1]), weights=np.array([1]))
        q.dequeue()
        with pytest.raises(SchemeError):
            q.front()

    def test_top_k_ignores_cursor(self):
        q = SpeculationQueue(states=np.array([3, 1, 2]), weights=np.array([5, 2, 1]))
        q.dequeue()
        assert q.top_k(2).tolist() == [3, 1]

    def test_top_k_truncates(self):
        q = SpeculationQueue(states=np.array([3]), weights=np.array([5]))
        assert q.top_k(10).tolist() == [3]

    def test_rank_of(self):
        q = SpeculationQueue(states=np.array([3, 1, 2]), weights=np.array([5, 2, 1]))
        assert q.rank_of(1) == 1
        assert q.rank_of(9) is None

    def test_reset(self):
        q = SpeculationQueue(states=np.array([3, 1]), weights=np.array([5, 2]))
        q.dequeue()
        q.reset()
        assert q.front() == 3

    def test_shape_mismatch(self):
        with pytest.raises(SchemeError):
            SpeculationQueue(states=np.array([1, 2]), weights=np.array([1]))


class TestPrediction:
    def test_chunk0_queue_is_true_start(self, div7, rng):
        data = rng.integers(48, 50, size=200).astype(np.uint8)
        p = partition_input(data, 8)
        pred = predict_start_states(div7, p)
        assert pred.queues[0].front() == div7.start

    def test_truth_always_in_queue(self, div7, rng):
        """The convergence property guarantees the true start is in the
        produced end-state set."""
        data = rng.integers(48, 50, size=400).astype(np.uint8)
        p = partition_input(data, 16)
        pred = predict_start_states(div7, p)
        truth = true_start_states(div7, p)
        for i in range(1, 16):
            assert pred.queues[i].rank_of(int(truth[i])) is not None

    def test_queue_ranked_by_weight(self, scanner_dfa, rng):
        data = rng.integers(97, 123, size=600).astype(np.uint8)
        p = partition_input(data, 8)
        pred = predict_start_states(scanner_dfa, p)
        for q in pred.queues[1:]:
            assert (np.diff(q.weights) <= 0).all()

    def test_weights_sum_to_state_count(self, div7, rng):
        data = rng.integers(48, 50, size=200).astype(np.uint8)
        p = partition_input(data, 4)
        pred = predict_start_states(div7, p)
        for q in pred.queues[1:]:
            assert q.weights.sum() == div7.n_states

    def test_rotator_queue_is_single_state(self, rng):
        """A pure rotation maps all states 1:1: lookback-2 from all states
        yields all states — but each with weight 1, so the queue is wide."""
        rot = classic.cyclic_rotator(5, n_symbols=8)
        data = rng.integers(0, 8, size=50).astype(np.uint8)
        p = partition_input(data, 5)
        pred = predict_start_states(rot, p)
        for q in pred.queues[1:]:
            assert q.states.size == 5  # no convergence: everything possible

    def test_accuracy_against_perfect(self, div7, rng):
        data = rng.integers(48, 50, size=300).astype(np.uint8)
        p = partition_input(data, 8)
        pred = predict_start_states(div7, p)
        truth = true_start_states(div7, p)
        acc_all = pred.accuracy_against(truth, k=div7.n_states)
        assert acc_all == 1.0  # truth always somewhere in the queue

    def test_accuracy_monotone_in_k(self, scanner_dfa, rng):
        data = rng.integers(97, 123, size=800).astype(np.uint8)
        p = partition_input(data, 16)
        pred = predict_start_states(scanner_dfa, p)
        truth = true_start_states(scanner_dfa, p)
        accs = [pred.accuracy_against(truth, k=k) for k in (1, 2, 4, 16)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))

    def test_prediction_cost_charged(self, div7, rng):
        data = rng.integers(48, 50, size=200).astype(np.uint8)
        p = partition_input(data, 8)
        stats = KernelStats(device=RTX3090, n_threads=8)
        predict_start_states(div7, p, stats=stats)
        assert stats.phase_cycles.get("predict", 0) > 0

    def test_front_states_vector(self, div7, rng):
        data = rng.integers(48, 50, size=200).astype(np.uint8)
        p = partition_input(data, 4)
        pred = predict_start_states(div7, p)
        fronts = pred.front_states()
        assert fronts.shape == (4,)
        assert fronts[0] == div7.start


class TestTrueStarts:
    def test_chain_matches_full_run(self, div7, rng):
        data = rng.integers(48, 50, size=333).astype(np.uint8)
        p = partition_input(data, 8)
        truth = true_start_states(div7, p)
        assert truth[0] == div7.start
        # End of last chunk == full sequential run.
        end = div7.run(p.chunk(7), start=int(truth[7]))
        assert end == div7.run(data)

    def test_each_start_is_predecessor_end(self, div7, rng):
        data = rng.integers(48, 50, size=200).astype(np.uint8)
        p = partition_input(data, 5)
        truth = true_start_states(div7, p)
        for i in range(1, 5):
            assert truth[i] == div7.run(p.chunk(i - 1), start=int(truth[i - 1]))
