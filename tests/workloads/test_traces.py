"""Trace-generator tests."""

import numpy as np
import pytest

from repro.workloads.traces import (
    TracePhase,
    TraceSpec,
    ascii_text_weights,
    binary_weights,
    network_weights,
)
from repro.errors import ReproError


def test_deterministic_given_seed():
    spec = TraceSpec(weights=np.ones(256))
    a = spec.generate(1000, seed=5)
    b = spec.generate(1000, seed=5)
    assert np.array_equal(a, b)
    c = spec.generate(1000, seed=6)
    assert not np.array_equal(a, c)


def test_length_and_dtype():
    spec = TraceSpec(weights=np.ones(256))
    out = spec.generate(123)
    assert out.shape == (123,)
    assert out.dtype == np.uint8


def test_zero_length_rejected():
    spec = TraceSpec(weights=np.ones(256))
    with pytest.raises(ReproError):
        spec.generate(0)


def test_sync_density_controls_occurrences():
    spec_dense = TraceSpec(
        weights=np.ones(256), sync_symbols=(10,), sync_density=0.5
    )
    spec_none = TraceSpec(
        weights=np.ones(256), sync_symbols=(10,), sync_density=0.0
    )
    dense = (spec_dense.generate(5000, seed=1) == 10).mean()
    none = (spec_none.generate(5000, seed=1) == 10).mean()
    assert dense > 0.4
    assert none < 0.02  # background hits only


def test_phases_apply_locally():
    spec = TraceSpec(
        weights=np.ones(256),
        sync_symbols=(7,),
        phases=(
            TracePhase(fraction=0.5, sync_density=0.8),
            TracePhase(fraction=0.5, sync_density=0.0),
        ),
    )
    out = spec.generate(10000, seed=2)
    first = (out[:5000] == 7).mean()
    second = (out[5000:] == 7).mean()
    assert first > 0.6
    assert second < 0.02


def test_keyword_injection():
    spec = TraceSpec(
        weights=np.ones(256), keywords=(b"NEEDLE",), keyword_density=0.01
    )
    out = bytes(spec.generate(20000, seed=3))
    assert b"NEEDLE" in out


def test_no_keywords_when_density_zero():
    spec = TraceSpec(
        weights=np.zeros(256) + np.eye(256)[0] * 0 + 1,  # uniform
        keywords=(b"\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",),
        keyword_density=0.0,
    )
    out = bytes(spec.generate(5000, seed=4))
    assert b"\x00" * 10 not in out or True  # density 0: no injection pass ran


def test_generate_many_distinct():
    spec = TraceSpec(weights=np.ones(256))
    outs = spec.generate_many(500, count=3, seed=7)
    assert len(outs) == 3
    assert not np.array_equal(outs[0], outs[1])


def test_weight_helpers_shapes():
    for w in (ascii_text_weights(), network_weights(), binary_weights()):
        assert w.shape == (256,)
        assert (w >= 0).all() and w.sum() > 0


def test_bad_weights_rejected():
    spec = TraceSpec(weights=np.zeros(256))
    with pytest.raises(ReproError):
        spec.generate(10)
