"""Product-construction component tests."""

import numpy as np
import pytest

from repro.automata.dfa import DFA
from repro.workloads.components import (
    Component,
    counter_component,
    funnel_component,
    product_dfa,
    scanner_component,
    window_component,
)
from repro.workloads import classic
from repro.errors import AutomatonError


class TestCounter:
    def test_permutation_per_symbol(self):
        c = counter_component(7, n_symbols=16, seed=1)
        for a in range(16):
            col = c.table[:, a]
            assert sorted(col.tolist()) == list(range(7))  # bijection

    def test_sync_collapses(self):
        c = counter_component(7, n_symbols=16, sync_symbols=(3,), seed=1)
        col = c.table[:, 3]
        assert np.unique(col).size == 1

    def test_weights_respected(self):
        w = np.zeros(8, dtype=np.int64)
        w[2] = 3
        c = counter_component(5, n_symbols=8, weights=w)
        assert c.table[0, 2] == 3
        assert c.table[0, 0] == 0

    def test_bad_modulus(self):
        with pytest.raises(AutomatonError):
            counter_component(0, n_symbols=4)


class TestFunnel:
    def test_converges_in_one_step(self):
        f = funnel_component(6, n_symbols=16, seed=2)
        for a in range(16):
            assert np.unique(f.table[:, a]).size == 1


class TestWindow:
    def test_state_count(self):
        w = window_component(3, window=2, n_symbols=16, seed=3)
        assert w.n_states == 9

    def test_converges_in_window_steps(self):
        w = window_component(3, window=2, n_symbols=16, seed=3)
        dfa = DFA(table=w.table, start=0)
        data = np.array([5, 11], dtype=np.uint8)
        assert np.unique(dfa.run_all_states(data)).size == 1

    def test_does_not_converge_earlier(self):
        w = window_component(4, window=3, n_symbols=16, seed=4)
        dfa = DFA(table=w.table, start=0)
        ends = dfa.run_all_states(np.array([5, 11], dtype=np.uint8))
        assert np.unique(ends).size == 4  # one class of history left

    def test_bad_params(self):
        with pytest.raises(AutomatonError):
            window_component(1, window=2)


class TestProduct:
    def make_product(self):
        c = counter_component(3, n_symbols=64, seed=5)
        f = funnel_component(2, n_symbols=64, seed=6)
        scanner = classic.keyword_scanner(b"ab", n_symbols=64)
        s = scanner_component(scanner)

        def accepting(factors):
            x, _y, si = factors
            mask = scanner.accepting_mask
            return mask[si] & (x == 0)

        return c, f, scanner, product_dfa([c, f, s], accepting_fn=accepting)

    def test_size(self):
        c, f, scanner, prod = self.make_product()
        assert prod.n_states == 3 * 2 * scanner.n_states

    def test_factor_semantics_preserved(self, rng):
        """Each factor evolves independently inside the product."""
        c, f, scanner, prod = self.make_product()
        data = rng.integers(0, 64, size=200).astype(np.uint8)
        end = prod.run(data)
        s_size = scanner.n_states
        s_end = end % s_size
        y_end = (end // s_size) % 2
        x_end = end // (s_size * 2)
        assert s_end == scanner.run(data)
        assert x_end == DFA(table=c.table, start=0).run(data)
        assert y_end == DFA(table=f.table, start=0).run(data)

    def test_acceptance_combines_factors(self, rng):
        c, f, scanner, prod = self.make_product()
        data = rng.integers(0, 64, size=100).astype(np.uint8)
        end = prod.run(data)
        s_size = scanner.n_states
        expected = (end % s_size in scanner.accepting) and (end // (s_size * 2) == 0)
        assert (end in prod.accepting) == expected

    def test_alphabet_mismatch(self):
        a = counter_component(2, n_symbols=4)
        b = counter_component(2, n_symbols=8)
        with pytest.raises(AutomatonError):
            product_dfa([a, b], accepting_fn=lambda f: np.zeros(4, dtype=bool))

    def test_empty_product(self):
        with pytest.raises(AutomatonError):
            product_dfa([], accepting_fn=lambda f: np.zeros(0, dtype=bool))

    def test_size_guard(self):
        a = counter_component(2000, n_symbols=4)
        b = counter_component(2000, n_symbols=4)
        with pytest.raises(AutomatonError):
            product_dfa([a, b], accepting_fn=lambda f: np.zeros(4_000_000, dtype=bool))

    def test_bad_accepting_shape(self):
        a = counter_component(3, n_symbols=4)
        with pytest.raises(AutomatonError):
            product_dfa([a], accepting_fn=lambda f: np.zeros(7, dtype=bool))


def test_component_validation():
    with pytest.raises(AutomatonError):
        Component(table=np.zeros((2, 2), dtype=np.int32), start=5)
    with pytest.raises(AutomatonError):
        Component(table=np.zeros(4, dtype=np.int32), start=0)
