"""The two-regime online-adaptation workload: calm collapse, hot scatter."""

import numpy as np
import pytest

from repro.errors import AutomatonError
from repro.workloads import classic


def _visited(dfa, data):
    state = dfa.start
    seen = set()
    for b in data:
        state = int(dfa.table[state, b])
        seen.add(state)
    return seen, state


def test_validations():
    with pytest.raises(AutomatonError, match="8 states"):
        classic.drifting_phase(n_states=4)
    with pytest.raises(AutomatonError, match="hot_symbols"):
        classic.drifting_phase(hot_symbols=256)
    with pytest.raises(AutomatonError, match="coprime"):
        classic.drifting_phase(n_states=125, multiplier=5)


def test_calm_traffic_collapses_to_the_orbit():
    dfa = classic.drifting_phase(128)
    calm = classic.drifting_phase_input(
        512, drift_at=1.0, calm_hot_density=0.0, seed=1
    )
    seen, end = _visited(dfa, calm)
    # One calm symbol collapses any state into the 4-state orbit: spec-4
    # speculation covers the truth exactly.
    assert seen <= {0, 1, 2, 3}
    assert end == int(dfa.run(calm))


def test_hot_traffic_scatters_across_the_state_space():
    dfa = classic.drifting_phase(128)
    hot = classic.drifting_phase_input(512, drift_at=0.0, seed=1)
    seen, _ = _visited(dfa, hot)
    # The affine permutation keeps the image wide — top-k speculation at
    # any small k is hopeless here.
    assert len(seen) > 32


def test_hot_step_is_a_permutation():
    dfa = classic.drifting_phase(64, multiplier=5)
    for sym in range(256 - 16, 256):
        column = dfa.table[:, sym]
        assert len(set(int(s) for s in column)) == dfa.n_states


def test_input_densities_and_determinism():
    hot_lo = 256 - 16
    calm = classic.drifting_phase_input(8192, drift_at=1.0, seed=9)
    drifted = classic.drifting_phase_input(8192, drift_at=0.0, seed=9)
    calm_frac = np.mean(np.frombuffer(calm, dtype=np.uint8) >= hot_lo)
    hot_frac = np.mean(np.frombuffer(drifted, dtype=np.uint8) >= hot_lo)
    assert calm_frac == pytest.approx(0.05, abs=0.02)
    assert hot_frac == pytest.approx(0.97, abs=0.02)
    # Deterministic per seed.
    assert calm == classic.drifting_phase_input(8192, drift_at=1.0, seed=9)
    assert calm != classic.drifting_phase_input(8192, drift_at=1.0, seed=10)


def test_split_point_shifts_the_distribution():
    data = np.frombuffer(
        classic.drifting_phase_input(4096, drift_at=0.5, seed=2), dtype=np.uint8
    )
    hot_lo = 256 - 16
    first, second = data[:2048], data[2048:]
    assert np.mean(first >= hot_lo) < 0.15
    assert np.mean(second >= hot_lo) > 0.85
