"""Suite-builder tests.

Building a member compiles a regex disjunction (seconds); the compiled
scanner is cached on disk, so repeated test runs are fast.  Only a couple of
members per regime are exercised here — the full 36-FSM sweep lives in the
benchmark harness.
"""

import numpy as np
import pytest

from repro.workloads.suites import (
    MAX_PRODUCT_STATES,
    REGIME_LAYOUT,
    SUITES,
    build_member,
)
from repro.errors import ReproError


def test_regime_layout_shape():
    for suite in SUITES:
        layout = REGIME_LAYOUT[suite]
        assert len(layout) == 12
        assert set(layout) <= {"pm", "sre", "rr", "nf"}
        # Every suite leads with PM-friendly members (the *1-2 narrative).
        assert layout[0] == "pm" and layout[1] == "pm"


def test_input_sensitive_counts_match_table2():
    # Table II: Snort 3, ClamAV 5, PowerEN 6 input-sensitive FSMs.
    expected = {"snort": 3, "clamav": 5, "poweren": 6}
    for suite, count in expected.items():
        assert REGIME_LAYOUT[suite].count("nf") == count


def test_invalid_member_requests():
    with pytest.raises(ReproError):
        build_member("nids", 1)
    with pytest.raises(ReproError):
        build_member("snort", 0)
    with pytest.raises(ReproError):
        build_member("snort", 13)


@pytest.mark.parametrize("suite,index", [("snort", 1), ("snort", 8), ("poweren", 3)])
def test_member_construction(suite, index):
    m = build_member(suite, index)
    assert m.name == f"{suite}{index}"
    assert m.dfa.n_states <= MAX_PRODUCT_STATES
    assert m.regime == REGIME_LAYOUT[suite][index - 1]
    # Deterministic rebuild.
    again = build_member(suite, index)
    assert again.dfa == m.dfa


def test_member_inputs_deterministic():
    m = build_member("snort", 1)
    a = m.generate_input(1000, seed=3)
    b = m.generate_input(1000, seed=3)
    assert np.array_equal(a, b)
    tr = m.training_input(512)
    assert tr.shape == (512,)


def test_member_runs_on_its_trace():
    m = build_member("snort", 1)
    data = m.generate_input(2000, seed=1)
    end = m.dfa.run(data)
    assert 0 <= end < m.dfa.n_states
