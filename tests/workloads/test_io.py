"""Workload export/import round-trip tests."""

import numpy as np
import pytest

from repro.automata.dfa import DFA
from repro.workloads.components import counter_component
from repro.workloads.io import export_member, import_member, load_trace
from repro.workloads.suites import SuiteMember
from repro.workloads.traces import TracePhase, TraceSpec
from repro.errors import ReproError


@pytest.fixture()
def member():
    comp = counter_component(5, n_symbols=64, seed=9)
    dfa = DFA(table=comp.table, start=0, accepting=frozenset({0}), name="io-test")
    trace = TraceSpec(
        weights=np.concatenate([np.ones(64), np.zeros(192)]),
        sync_symbols=(3,),
        sync_density=0.1,
        keywords=(b"\x01\x02", b"abc"),
        keyword_density=0.01,
        phases=(TracePhase(0.5, 0.2), TracePhase(0.5, 0.0)),
        name="io-trace",
    )
    return SuiteMember(suite="snort", index=4, regime="rr", dfa=dfa, trace=trace)


def test_roundtrip(tmp_path, member):
    export_member(member, tmp_path / "m")
    loaded = import_member(tmp_path / "m")
    assert loaded.suite == member.suite
    assert loaded.index == member.index
    assert loaded.regime == member.regime
    assert loaded.dfa == member.dfa


def test_roundtrip_preserves_trace_generation(tmp_path, member):
    export_member(member, tmp_path / "m")
    loaded = import_member(tmp_path / "m")
    a = member.generate_input(512, seed=5)
    b = loaded.generate_input(512, seed=5)
    assert np.array_equal(a, b)


def test_pregenerated_traces(tmp_path, member):
    export_member(member, tmp_path / "m", trace_lengths=[256, 512], trace_seed=3)
    t0 = load_trace(tmp_path / "m", 0)
    t1 = load_trace(tmp_path / "m", 1)
    assert t0.shape == (256,) and t1.shape == (512,)
    assert np.array_equal(t0, member.generate_input(256, seed=3))


def test_missing_manifest(tmp_path):
    with pytest.raises(ReproError):
        import_member(tmp_path)


def test_missing_trace_file(tmp_path, member):
    export_member(member, tmp_path / "m")
    with pytest.raises(ReproError):
        load_trace(tmp_path / "m", 0)
